//! Per-rule fixtures for the determinism lint: every rule gets a
//! positive case (fires), a negative case (stays quiet), and an
//! allow-suppression case. Fixtures live in string literals — the
//! lexer never tokenizes string contents, so this file is itself
//! clean under the workspace self-scan.

use sensei_lint::{scan_source, INVALID_ALLOW};

/// Path inside every rule's scope (merge-law module).
const MERGE_PATH: &str = "crates/sensei-fleet/src/report.rs";
/// Library path outside the cast/float scopes but inside the
/// collection/clock/env scopes.
const LIB_PATH: &str = "crates/sensei-abr/src/offline.rs";

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    scan_source(path, src)
        .findings
        .iter()
        .map(|f| f.rule.clone())
        .collect()
}

// ---- no-unordered-iteration -------------------------------------------

#[test]
fn unordered_collection_fires_in_library_code() {
    let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }\n";
    let fired = rules_fired(LIB_PATH, src);
    assert!(fired.iter().any(|r| r == "no-unordered-iteration"));
    assert!(rules_fired(
        LIB_PATH,
        "fn f() { let s: HashSet<u8> = HashSet::new(); let _ = s; }"
    )
    .iter()
    .any(|r| r == "no-unordered-iteration"));
}

#[test]
fn btree_collections_are_clean() {
    let src = "use std::collections::BTreeMap;\nfn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
    assert!(rules_fired(LIB_PATH, src).is_empty());
}

#[test]
fn unordered_rule_is_scoped_to_library_sources() {
    // Test code asserting over a small local set is not a merge path.
    let src = "fn t() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }";
    assert!(rules_fired("crates/sensei-abr/tests/offline.rs", src).is_empty());
}

#[test]
fn trailing_allow_suppresses_its_own_line() {
    let src = "type Memo = HashMap<u64, f64>; // sensei-lint: allow(no-unordered-iteration) — keyed lookups only, never iterated\n";
    let scan = scan_source(LIB_PATH, src);
    assert!(scan.findings.is_empty(), "findings: {:?}", scan.findings);
    assert_eq!(scan.allows.len(), 1);
    assert!(scan.allows[0].used);
    assert_eq!(scan.allows[0].rule, "no-unordered-iteration");
}

#[test]
fn standalone_allow_suppresses_the_next_code_line() {
    let src = "// sensei-lint: allow(no-unordered-iteration) — keyed lookups only\nuse std::collections::HashMap;\nfn f() {}\n";
    let scan = scan_source(LIB_PATH, src);
    assert!(scan.findings.is_empty(), "findings: {:?}", scan.findings);
    assert!(scan.allows[0].used);
}

#[test]
fn allow_does_not_leak_past_its_target_line() {
    // The allow covers line 2 only; the second HashMap on line 3 must
    // still be reported.
    let src = "// sensei-lint: allow(no-unordered-iteration) — first use is keyed-only\nuse std::collections::HashMap;\ntype Other = HashMap<u8, u8>;\n";
    let scan = scan_source(LIB_PATH, src);
    assert_eq!(scan.findings.len(), 1);
    assert_eq!(scan.findings[0].line, 3);
}

// ---- no-wall-clock ----------------------------------------------------

#[test]
fn wall_clock_fires_outside_timing_crates() {
    let fired = rules_fired(LIB_PATH, "fn f() { let t = Instant::now(); let _ = t; }");
    assert!(fired.iter().any(|r| r == "no-wall-clock"));
    let fired = rules_fired(
        LIB_PATH,
        "fn f() { let t = SystemTime::UNIX_EPOCH; let _ = t; }",
    );
    assert!(fired.iter().any(|r| r == "no-wall-clock"));
}

#[test]
fn timing_crates_own_the_clock() {
    let src = "fn f() { let t = Instant::now(); let _ = t; }";
    assert!(rules_fired("crates/sensei-telemetry/src/lib.rs", src).is_empty());
    assert!(rules_fired("crates/sensei-bench/src/lib.rs", src).is_empty());
    assert!(rules_fired("shims/criterion/src/lib.rs", src).is_empty());
}

// ---- no-env-outside-config --------------------------------------------

#[test]
fn env_read_fires_in_library_code() {
    let src = "fn f() -> bool { std::env::var(\"SENSEI_X\").is_ok() }";
    let fired = rules_fired(LIB_PATH, src);
    assert!(fired.iter().any(|r| r == "no-env-outside-config"));
}

#[test]
fn benches_and_examples_are_config_entry_points() {
    let src = "fn f() -> bool { std::env::var(\"SENSEI_X\").is_ok() }";
    assert!(rules_fired("crates/sensei-bench/benches/fig.rs", src).is_empty());
    assert!(rules_fired("examples/fleet_families.rs", src).is_empty());
}

// ---- no-lossy-cast ----------------------------------------------------

#[test]
fn integer_as_cast_fires_in_fixed_point_paths() {
    let src = "fn f(x: f64) -> i64 { x as i64 }";
    let fired = rules_fired(MERGE_PATH, src);
    assert!(fired.iter().any(|r| r == "no-lossy-cast"));
}

#[test]
fn cast_rule_is_scoped_to_the_merge_law_files() {
    let src = "fn f(x: f64) -> i64 { x as i64 }";
    assert!(rules_fired(LIB_PATH, src).is_empty());
}

#[test]
fn try_from_is_the_sanctioned_conversion() {
    let src = "fn f(i: usize) -> u64 { u64::try_from(i).expect(\"fits\") }";
    assert!(rules_fired(MERGE_PATH, src).is_empty());
}

// ---- no-float-accumulation --------------------------------------------

#[test]
fn float_compound_add_fires_in_merge_modules() {
    // Explicitly float-typed accumulator.
    let src = "struct S { total: f64 }\nimpl S { fn add(&mut self, total: f64, dt: f64) { let mut total = total; total += dt; } }\n";
    let fired = rules_fired(MERGE_PATH, src);
    assert!(fired.iter().any(|r| r == "no-float-accumulation"));
    // Float-literal RHS, no type context needed.
    let fired = rules_fired(MERGE_PATH, "fn f(mut x: f64) { x += 0.5; }");
    assert!(fired.iter().any(|r| r == "no-float-accumulation"));
}

#[test]
fn float_fold_and_turbofish_sum_fire() {
    let fired = rules_fired(
        MERGE_PATH,
        "fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }",
    );
    assert!(fired.iter().any(|r| r == "no-float-accumulation"));
    let fired = rules_fired(
        MERGE_PATH,
        "fn f(v: &[f64]) -> f64 { v.iter().copied().sum::<f64>() }",
    );
    assert!(fired.iter().any(|r| r == "no-float-accumulation"));
}

#[test]
fn integer_accumulation_is_the_sanctioned_domain() {
    let src =
        "struct S { total: i128 }\nimpl S { fn add(&mut self, q: i128) { self.total += q; } }\n";
    assert!(rules_fired(MERGE_PATH, src).is_empty());
}

#[test]
fn float_accumulation_rule_is_scoped_to_merge_modules() {
    // QoE model math legitimately sums floats; only the mergeable
    // aggregates are constrained.
    let src = "fn f(mut x: f64) { x += 0.5; }";
    assert!(rules_fired("crates/sensei-qoe/src/lib.rs", src).is_empty());
}

// ---- no-unsafe --------------------------------------------------------

#[test]
fn unsafe_fires_everywhere() {
    let src = "fn f() { let p = core::ptr::null::<u8>(); unsafe { let _ = *p; } }";
    for path in [
        MERGE_PATH,
        LIB_PATH,
        "crates/sensei-bench/benches/fig.rs",
        "shims/rand/src/lib.rs",
    ] {
        let fired = rules_fired(path, src);
        assert!(fired.iter().any(|r| r == "no-unsafe"), "path {path}");
    }
}

// ---- allow-annotation contract ----------------------------------------

#[test]
fn allow_without_reason_is_itself_a_violation() {
    let src = "use std::collections::HashMap; // sensei-lint: allow(no-unordered-iteration)\n";
    let scan = scan_source(LIB_PATH, src);
    // The malformed allow is reported AND fails to suppress.
    assert!(scan.findings.iter().any(|f| f.rule == INVALID_ALLOW));
    assert!(scan
        .findings
        .iter()
        .any(|f| f.rule == "no-unordered-iteration"));
}

#[test]
fn allow_naming_an_unknown_rule_is_a_violation() {
    let src = "fn f() {} // sensei-lint: allow(no-such-rule) — because\n";
    let scan = scan_source(LIB_PATH, src);
    assert!(scan.findings.iter().any(|f| f.rule == INVALID_ALLOW));
}

#[test]
fn allow_accepts_every_dash_separator() {
    for sep in ["—", "–", "--", "-", ":"] {
        let src = format!(
            "use std::collections::HashMap; // sensei-lint: allow(no-unordered-iteration) {sep} keyed lookups only\n"
        );
        let scan = scan_source(LIB_PATH, &src);
        assert!(
            scan.findings.is_empty(),
            "separator {sep:?}: {:?}",
            scan.findings
        );
        assert_eq!(scan.allows[0].reason, "keyed lookups only");
    }
}

#[test]
fn comma_separated_allow_covers_several_rules() {
    let src = "fn f(x: f64) -> i64 { let t = Instant::now(); let _ = t; x as i64 } // sensei-lint: allow(no-wall-clock, no-lossy-cast) — fixture exercising both rules\n";
    let scan = scan_source(MERGE_PATH, src);
    assert!(scan.findings.is_empty(), "findings: {:?}", scan.findings);
    assert_eq!(scan.allows.len(), 2);
    assert!(scan.allows.iter().all(|a| a.used));
}

#[test]
fn unused_allows_are_recorded_as_unused() {
    let src =
        "// sensei-lint: allow(no-wall-clock) — nothing here actually reads the clock\nfn f() {}\n";
    let scan = scan_source(LIB_PATH, src);
    assert!(scan.findings.is_empty());
    assert_eq!(scan.allows.len(), 1);
    assert!(!scan.allows[0].used);
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = "use std::collections::HashMap; // sensei-lint: allow(no-wall-clock) — wrong rule on purpose\n";
    let scan = scan_source(LIB_PATH, src);
    assert!(scan
        .findings
        .iter()
        .any(|f| f.rule == "no-unordered-iteration"));
}

// ---- lexer-level properties the rules depend on -----------------------

#[test]
fn string_literal_contents_are_never_scanned() {
    // This is what lets the linter scan its own fixtures: hazards named
    // inside strings (or raw strings) are data, not code.
    let src = "fn f() -> &'static str { \"HashMap unsafe Instant::now SystemTime\" }";
    assert!(rules_fired(LIB_PATH, src).is_empty());
}

#[test]
fn commented_out_hazards_are_not_findings() {
    let src = "// let m: HashMap<u8, u8> = HashMap::new();\nfn f() {}\n";
    assert!(rules_fired(LIB_PATH, src).is_empty());
}

#[test]
fn range_and_method_calls_on_ints_are_not_float_literals() {
    // `1..4` and `1.max(2)` must not register as floats and so must not
    // trip the float-literal compound-add pattern.
    let src = "fn f(mut x: i64) { for _ in 1..4 { x += 1; } let _ = 1.max(2); }";
    assert!(rules_fired(MERGE_PATH, src).is_empty());
}
