//! The committed workspace must satisfy its own determinism lint: zero
//! findings, and every sanctioned exception carries a reviewable reason.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/sensei-lint → workspace root.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn committed_workspace_is_lint_clean() {
    let report = sensei_lint::scan_workspace(workspace_root()).expect("workspace scan");
    assert!(
        report.files_scanned > 0,
        "self-check scanned nothing; workspace layout changed?"
    );
    assert!(
        report.is_clean(),
        "determinism lint violations in the committed tree:\n{}",
        report.human()
    );
}

#[test]
fn every_committed_allow_is_justified_and_used() {
    let report = sensei_lint::scan_workspace(workspace_root()).expect("workspace scan");
    for a in &report.allows {
        assert!(
            !a.reason.is_empty(),
            "{}:{}: allow({}) carries no reason",
            a.path,
            a.line,
            a.rule
        );
        assert!(
            a.used,
            "{}:{}: allow({}) suppresses nothing — stale annotation, remove it",
            a.path, a.line, a.rule
        );
    }
    // The committed tree is expected to carry sanctioned exceptions
    // (phase timing, env opt-ins, the quantization casts); an empty
    // inventory means the scan went wrong, not that the tree got purer.
    assert!(
        !report.allows.is_empty(),
        "allow inventory is empty; the workspace scan likely missed the sources"
    );
}

#[test]
fn json_report_is_well_formed() {
    let report = sensei_lint::scan_workspace(workspace_root()).expect("workspace scan");
    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"files_scanned\":"));
    assert!(json.contains("\"rules\":["));
    assert!(json.contains("\"no-unordered-iteration\""));
    // Balanced quotes are a cheap structural sanity check on the
    // hand-rolled serializer (escaped quotes excluded).
    let unescaped_quotes = json
        .as_bytes()
        .iter()
        .enumerate()
        .filter(|&(i, &b)| b == b'"' && (i == 0 || json.as_bytes()[i - 1] != b'\\'))
        .count();
    assert_eq!(unescaped_quotes % 2, 0, "unbalanced quotes in JSON report");
}

#[test]
fn human_report_prints_the_allow_inventory() {
    let report = sensei_lint::scan_workspace(workspace_root()).expect("workspace scan");
    let human = report.human();
    assert!(human.contains("allow inventory"));
    assert!(human.contains("files scanned"));
}
