//! CLI: `cargo run -p sensei-lint -- check [--json] [--root <path>]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/I-O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: sensei-lint check [--json] [--root <path>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    // Default to the workspace this binary was built from, so
    // `cargo run -p sensei-lint -- check` works from any cwd.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return usage();
    };
    if cmd != "check" {
        return usage();
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => {
                let Some(p) = it.next() else {
                    return usage();
                };
                root = PathBuf::from(p);
            }
            _ => return usage(),
        }
    }

    let report = match sensei_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sensei-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
