//! # sensei-lint — determinism static analysis for the SENSEI workspace
//!
//! PR 8 defined the fleet's deterministic contract as a total,
//! associative, commutative reduction over quantized-integer
//! `TileStats` partials. Tests can only catch a violation of that
//! contract *after* it bites; this crate enforces it at the source
//! level, before a stray `HashMap` iteration, float `+=`, or
//! `SystemTime` read ever reaches a merge path.
//!
//! The tool is std-only (the workspace builds offline): a hand-rolled
//! lexer ([`lexer`]) feeds a token-pattern rule engine ([`rules`])
//! whose rule catalog and path scoping are documented on [`rules::RuleId`].
//!
//! ## Allow annotations
//!
//! A violation is suppressible **only** via an inline annotation that
//! names the rule and carries a reason:
//!
//! ```text
//! // sensei-lint: allow(no-wall-clock) — progress display only; never feeds aggregates
//! ```
//!
//! The annotation suppresses findings of that rule on its own line
//! (trailing comment) or on the next code line (standalone comment).
//! Several rules may be listed comma-separated. An allow without a
//! reason, or naming an unknown rule, is itself a violation
//! (`invalid-allow`). Every allow in the tree is recorded and printed
//! in the report's allow inventory, so the full set of sanctioned
//! exceptions stays reviewable in one place.
//!
//! ## Running
//!
//! ```text
//! cargo run -p sensei-lint -- check            # human output, exit 1 on findings
//! cargo run -p sensei-lint -- check --json     # machine-readable report
//! ```

pub mod lexer;
pub mod rules;

use rules::{RawFinding, RuleId};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule name used for findings about malformed allow annotations.
/// Not a catalog rule: it cannot itself be allowed.
pub const INVALID_ALLOW: &str = "invalid-allow";

/// The marker every allow annotation starts with (after `//`).
const ALLOW_MARKER: &str = "sensei-lint:";

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-root-relative path, '/'-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (kebab-case) or [`INVALID_ALLOW`].
    pub rule: String,
    pub message: String,
}

/// One recorded allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub path: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Line whose findings it suppresses (next code line for
    /// standalone comments; its own line for trailing ones). `None`
    /// when no code follows.
    pub effective_line: Option<u32>,
    pub rule: String,
    pub reason: String,
    /// Whether the allow actually suppressed a finding.
    pub used: bool,
}

/// Scan result for one file.
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    pub allows: Vec<Allow>,
}

/// Scan result for a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub allows: Vec<Allow>,
}

/// A parsed-but-unresolved allow annotation.
struct PendingAllow {
    rule: RuleId,
    line: u32,
    effective_line: Option<u32>,
    reason: String,
    used: bool,
}

/// Parses the allow annotations (and annotation errors) out of one
/// file's comments. `first_code_line_after(line)` maps a standalone
/// comment to the line it annotates.
fn parse_allows(
    path: &str,
    lexed: &lexer::Lexed,
    findings: &mut Vec<Finding>,
) -> Vec<PendingAllow> {
    // Token lines, for standalone-comment targeting.
    let code_lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let next_code_line =
        |after: u32| -> Option<u32> { code_lines.iter().copied().filter(|&l| l > after).min() };

    let mut allows = Vec::new();
    for c in &lexed.comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix(ALLOW_MARKER) else {
            continue;
        };
        let rest = rest.trim();
        let mut invalid = |msg: String| {
            findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: INVALID_ALLOW.to_string(),
                message: msg,
            });
        };
        let Some(inner) = rest.strip_prefix("allow(") else {
            invalid(format!(
                "malformed sensei-lint annotation (expected `allow(<rule>) — <reason>`): `{body}`"
            ));
            continue;
        };
        let Some(close) = inner.find(')') else {
            invalid("unclosed `allow(` annotation".to_string());
            continue;
        };
        let (rule_list, after) = inner.split_at(close);
        let after = &after[1..]; // past ')'

        // The reason must follow a dash separator: `— why` (em dash,
        // en dash, or ASCII hyphen(s)).
        let sep = after.trim_start();
        let reason = ["—", "–", "--", "-", ":"]
            .iter()
            .find_map(|d| sep.strip_prefix(d))
            .map(str::trim)
            .unwrap_or("");

        let mut rule_ok = false;
        for name in rule_list.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            let Some(rule) = RuleId::from_name(name) else {
                invalid(format!(
                    "allow names unknown rule `{name}` (known: {})",
                    RuleId::ALL.map(RuleId::name).join(", ")
                ));
                continue;
            };
            if reason.is_empty() {
                invalid(format!(
                    "allow({name}) carries no reason; write `allow({name}) — <why this \
                     site is sound>`"
                ));
                continue;
            }
            rule_ok = true;
            allows.push(PendingAllow {
                rule,
                line: c.line,
                effective_line: if c.trailing {
                    Some(c.line)
                } else {
                    next_code_line(c.line)
                },
                reason: reason.to_string(),
                used: false,
            });
        }
        if !rule_ok && rule_list.split(',').all(|s| s.trim().is_empty()) {
            invalid("allow() lists no rule".to_string());
        }
    }
    allows
}

/// Lexes and scans one source file (the path decides rule scoping; it
/// must be workspace-root-relative and '/'-separated).
#[must_use]
pub fn scan_source(path: &str, src: &str) -> FileScan {
    let lexed = lexer::lex(src);
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows = parse_allows(path, &lexed, &mut findings);

    let raw: Vec<RawFinding> = rules::run_rules(path, &lexed);
    for f in raw {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.rule == f.rule && a.effective_line == Some(f.line));
        if let Some(a) = suppressed {
            a.used = true;
        } else {
            findings.push(Finding {
                path: path.to_string(),
                line: f.line,
                rule: f.rule.name().to_string(),
                message: f.message,
            });
        }
    }

    FileScan {
        findings,
        allows: allows
            .into_iter()
            .map(|a| Allow {
                path: path.to_string(),
                line: a.line,
                effective_line: a.effective_line,
                rule: a.rule.name().to_string(),
                reason: a.reason,
                used: a.used,
            })
            .collect(),
    }
}

/// Workspace directories scanned for `.rs` sources.
const SCAN_ROOTS: &[&str] = &["crates", "shims", "src", "tests", "examples"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for e in entries {
        let p = e.path();
        let name = e.file_name();
        if p.is_dir() {
            // `target` dirs hold generated artifacts, not sources.
            if name != "target" {
                walk(&p, out)?;
            }
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scans every workspace source file under `root` and merges the
/// per-file results into one [`Report`]. File order (and therefore
/// report order) is deterministic: paths are walked sorted.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let p = root.join(top);
        if p.is_dir() {
            walk(&p, &mut files)?;
        }
    }

    let mut report = Report::default();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&file)?;
        let scan = scan_source(&rel, &src);
        report.files_scanned += 1;
        report.findings.extend(scan.findings);
        report.allows.extend(scan.allows);
    }
    Ok(report)
}

impl Report {
    /// True when the tree carries no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report: findings, then the allow inventory, then
    /// a one-line summary.
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        if !self.allows.is_empty() {
            let _ = writeln!(out, "allow inventory ({} entries):", self.allows.len());
            for a in &self.allows {
                let _ = writeln!(
                    out,
                    "  {}:{}: allow({}) — {}{}",
                    a.path,
                    a.line,
                    a.rule,
                    a.reason,
                    if a.used { "" } else { "  [UNUSED]" }
                );
            }
        }
        let _ = writeln!(
            out,
            "sensei-lint: {} files scanned, {} finding{}, {} allow{}",
            self.files_scanned,
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.allows.len(),
            if self.allows.len() == 1 { "" } else { "s" },
        );
        out
    }

    /// Machine-readable JSON report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"files_scanned\":{}", self.files_scanned);
        out.push_str(",\"rules\":[");
        for (i, r) in RuleId::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"summary\":{}}}",
                json_str(r.name()),
                json_str(r.summary())
            );
        }
        out.push_str("],\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                json_str(&f.path),
                f.line,
                json_str(&f.rule),
                json_str(&f.message)
            );
        }
        out.push_str("],\"allows\":[");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":{},\"line\":{},\"rule\":{},\"reason\":{},\"used\":{}}}",
                json_str(&a.path),
                a.line,
                json_str(&a.rule),
                json_str(&a.reason),
                a.used
            );
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quote, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
