//! The determinism rule catalog.
//!
//! Each rule is a token-stream pattern plus a **path scope**: the fleet
//! merge-law contract (PR 8) only constrains code that feeds the
//! deterministic aggregates, so e.g. wall-clock reads are fine inside
//! `sensei-telemetry` (whose whole job is timing) but hazards anywhere
//! a merge path could pick them up.
//!
//! Rules are heuristics over tokens, not a type system: they are tuned
//! to catch the hazard classes that have actually threatened the merge
//! law (unordered map iteration, float accumulation, truncating casts
//! in the fixed-point/seed paths, ambient clock/env reads) with zero
//! false negatives on those shapes, at the cost of requiring an
//! explicit, reasoned `sensei-lint: allow(...)` on the rare legitimate
//! site.

use crate::lexer::{Lexed, TokKind};

/// Identifier tokens that name an unordered std collection.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Integer type names a lossy `as` cast can target.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Float type names, for accumulator-type tracking.
const FLOAT_TYPES: &[&str] = &["f32", "f64"];

/// The rule catalog. Every rule has a stable kebab-case name used in
/// reports and in `sensei-lint: allow(<name>)` annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleId {
    /// Float `+=`/`-=` on an explicitly float-typed accumulator, a
    /// float-literal compound add, `fold(<float literal>, …)`, or
    /// `.sum::<f64>()` inside the merge-law modules. Merged aggregates
    /// must accumulate in the quantized-integer domain (`Moments`):
    /// float addition is non-associative, so a float accumulator makes
    /// the merge result depend on reduction order.
    NoFloatAccumulation,
    /// `HashMap`/`HashSet` in library code. Their iteration order is
    /// unspecified, so anything folded, serialized, or seeded from one
    /// breaks bit-reproducibility. Use `BTreeMap`/`BTreeSet`, or sort
    /// first and annotate a keyed-lookup-only use with an allow.
    NoUnorderedIteration,
    /// `Instant::now` / `SystemTime` outside the timing-owning crates
    /// (`sensei-telemetry`, `sensei-bench`, the criterion shim). Clock
    /// reads in a deterministic path are ambient inputs.
    NoWallClock,
    /// `env::var` outside the designated config entry points (benches
    /// and `examples/`). Environment reads buried in library code are
    /// ambient configuration the merge law can't see.
    NoEnvOutsideConfig,
    /// `as <integer type>` in the fixed-point (`Moments`), report
    /// serialization, and seed-derivation paths. Truncating or
    /// sign-changing casts silently corrupt the quantized domain; use
    /// `try_from`, a lossless `From`, or a reasoned allow for
    /// deliberate saturation.
    NoLossyCast,
    /// `unsafe` anywhere in the workspace (also enforced at compile
    /// time by `unsafe_code = "forbid"` in `[workspace.lints.rust]`;
    /// the lint additionally covers not-compiled cfg branches).
    NoUnsafe,
}

impl RuleId {
    /// Every rule, in reporting order.
    pub const ALL: [RuleId; 6] = [
        RuleId::NoFloatAccumulation,
        RuleId::NoUnorderedIteration,
        RuleId::NoWallClock,
        RuleId::NoEnvOutsideConfig,
        RuleId::NoLossyCast,
        RuleId::NoUnsafe,
    ];

    /// Stable kebab-case name (report output + allow annotations).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoFloatAccumulation => "no-float-accumulation",
            RuleId::NoUnorderedIteration => "no-unordered-iteration",
            RuleId::NoWallClock => "no-wall-clock",
            RuleId::NoEnvOutsideConfig => "no-env-outside-config",
            RuleId::NoLossyCast => "no-lossy-cast",
            RuleId::NoUnsafe => "no-unsafe",
        }
    }

    /// Inverse of [`RuleId::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line description for reports.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::NoFloatAccumulation => {
                "merged aggregates must accumulate in the quantized-integer domain, \
                 not via non-associative float addition"
            }
            RuleId::NoUnorderedIteration => {
                "HashMap/HashSet iteration order is unspecified; use BTreeMap/BTreeSet \
                 or sort and annotate"
            }
            RuleId::NoWallClock => {
                "Instant::now/SystemTime are ambient inputs; clock reads belong to \
                 telemetry/bench code"
            }
            RuleId::NoEnvOutsideConfig => {
                "env::var is ambient configuration; read it only at designated config \
                 entry points"
            }
            RuleId::NoLossyCast => {
                "truncating `as` casts corrupt the fixed-point/seed domain; use \
                 try_from or a reasoned allow"
            }
            RuleId::NoUnsafe => "no unsafe code anywhere in the workspace",
        }
    }

    /// Whether `path` (workspace-root-relative, '/'-separated) is in
    /// this rule's scope. The scoping encodes *who owns which ambient
    /// effect*; everything else must annotate.
    #[must_use]
    pub fn in_scope(self, path: &str) -> bool {
        match self {
            RuleId::NoUnsafe => true,
            RuleId::NoWallClock => {
                // Telemetry and the bench harnesses own timing; the
                // criterion shim *is* a timer.
                !(path.starts_with("crates/sensei-telemetry/")
                    || path.starts_with("crates/sensei-bench/")
                    || path.starts_with("shims/criterion/"))
            }
            RuleId::NoEnvOutsideConfig => {
                // Benches and examples are process entry points: env
                // knobs there are the documented configuration surface.
                !(path.starts_with("crates/sensei-bench/") || path.starts_with("examples/"))
            }
            // Library code only: tests/benches asserting over small
            // local sets are not merge paths.
            RuleId::NoUnorderedIteration => path.starts_with("src/") || path.contains("/src/"),
            // The merge-law modules: FleetStats and the telemetry
            // shards are the two mergeable-accumulator families.
            RuleId::NoFloatAccumulation => {
                path == "crates/sensei-fleet/src/report.rs"
                    || path.starts_with("crates/sensei-telemetry/src/")
            }
            // Fixed-point stats + serialization + seed derivation.
            RuleId::NoLossyCast => matches!(
                path,
                "crates/sensei-fleet/src/report.rs"
                    | "crates/sensei-fleet/src/scenario.rs"
                    | "crates/sensei-fleet/src/json.rs"
            ),
        }
    }
}

/// One rule hit, before allow-suppression.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: RuleId,
    pub line: u32,
    pub message: String,
}

/// Runs every in-scope rule over one lexed file.
#[must_use]
pub fn run_rules(path: &str, lexed: &Lexed) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();

    let ident = |i: usize| -> Option<&str> {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };
    let punct = |i: usize| -> Option<&str> {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
    };

    // ---- no-float-accumulation: collect explicitly float-typed
    // identifiers (struct fields, lets, params: `name : f64`), then
    // flag compound adds on them, float-literal compound adds,
    // float-seeded folds, and f64/f32 turbofish sums.
    let float_scope = RuleId::NoFloatAccumulation.in_scope(path);
    if float_scope {
        let mut float_idents: Vec<&str> = Vec::new();
        for i in 0..toks.len() {
            if punct(i) == Some(":") && ident(i + 1).is_some_and(|t| FLOAT_TYPES.contains(&t)) {
                if let Some(name) = (i > 0).then(|| ident(i - 1)).flatten() {
                    float_idents.push(name);
                }
            }
        }
        for i in 0..toks.len() {
            if matches!(punct(i), Some("+=" | "-=")) {
                let lhs_float = (i > 0)
                    .then(|| ident(i - 1))
                    .flatten()
                    .is_some_and(|name| float_idents.contains(&name));
                let rhs_float_literal = toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Float);
                if lhs_float || rhs_float_literal {
                    out.push(RawFinding {
                        rule: RuleId::NoFloatAccumulation,
                        line: toks[i].line,
                        message: format!(
                            "float compound assignment `{}` in a merge-law module; \
                             accumulate in the quantized-integer domain instead",
                            toks[i].text
                        ),
                    });
                }
            }
            if ident(i) == Some("fold")
                && punct(i + 1) == Some("(")
                && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Float)
            {
                out.push(RawFinding {
                    rule: RuleId::NoFloatAccumulation,
                    line: toks[i].line,
                    message: "float-seeded `fold` in a merge-law module".to_string(),
                });
            }
            if ident(i) == Some("sum")
                && punct(i + 1) == Some("::")
                && punct(i + 2) == Some("<")
                && ident(i + 3).is_some_and(|t| FLOAT_TYPES.contains(&t))
            {
                out.push(RawFinding {
                    rule: RuleId::NoFloatAccumulation,
                    line: toks[i].line,
                    message: "float turbofish `sum` in a merge-law module".to_string(),
                });
            }
        }
    }

    // ---- Single-pass token-pattern rules.
    let unordered_scope = RuleId::NoUnorderedIteration.in_scope(path);
    let clock_scope = RuleId::NoWallClock.in_scope(path);
    let env_scope = RuleId::NoEnvOutsideConfig.in_scope(path);
    let cast_scope = RuleId::NoLossyCast.in_scope(path);
    let unsafe_scope = RuleId::NoUnsafe.in_scope(path);

    for (i, tok) in toks.iter().enumerate() {
        let Some(word) = ident(i) else { continue };
        let line = tok.line;

        if unordered_scope && UNORDERED_TYPES.contains(&word) {
            out.push(RawFinding {
                rule: RuleId::NoUnorderedIteration,
                line,
                message: format!(
                    "`{word}` has unspecified iteration order; use the BTree \
                     equivalent or sort and annotate why order is never observed"
                ),
            });
        }

        if clock_scope {
            if word == "Instant" && punct(i + 1) == Some("::") && ident(i + 2) == Some("now") {
                out.push(RawFinding {
                    rule: RuleId::NoWallClock,
                    line,
                    message: "`Instant::now()` outside the timing-owning crates".to_string(),
                });
            }
            if word == "SystemTime" {
                out.push(RawFinding {
                    rule: RuleId::NoWallClock,
                    line,
                    message: "`SystemTime` outside the timing-owning crates".to_string(),
                });
            }
        }

        if env_scope
            && word == "env"
            && punct(i + 1) == Some("::")
            && matches!(ident(i + 2), Some("var" | "var_os" | "vars" | "vars_os"))
        {
            out.push(RawFinding {
                rule: RuleId::NoEnvOutsideConfig,
                line,
                message: format!(
                    "`env::{}` outside a designated config entry point",
                    ident(i + 2).unwrap_or("var")
                ),
            });
        }

        if cast_scope && word == "as" && ident(i + 1).is_some_and(|t| INT_TYPES.contains(&t)) {
            out.push(RawFinding {
                rule: RuleId::NoLossyCast,
                line,
                message: format!(
                    "`as {}` in a fixed-point/seed path; use try_from (or annotate a \
                     deliberate saturation)",
                    ident(i + 1).unwrap_or("")
                ),
            });
        }

        if unsafe_scope && word == "unsafe" {
            out.push(RawFinding {
                rule: RuleId::NoUnsafe,
                line,
                message: "`unsafe` is forbidden workspace-wide".to_string(),
            });
        }
    }

    out.sort_by_key(|f| (f.line, f.rule.name()));
    out
}
