//! A minimal hand-rolled Rust lexer — just enough token structure for
//! sensei-lint's determinism rules.
//!
//! The lexer deliberately does **not** parse Rust: it produces a flat
//! token stream (identifiers, punctuation, literals) plus a comment
//! side-channel. String and char literal *contents* are consumed but
//! never tokenized, so rule patterns (`HashMap`, `Instant :: now`,
//! `as u64`, …) can never fire on text inside a literal — which is what
//! lets the linter scan its own sources and its own fixture files
//! without tripping over them.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `as`, `HashMap`, …).
    Ident,
    /// Operator / punctuation. Multi-char operators the rules care
    /// about (`::`, `+=`, `-=`, `*=`, `/=`, `->`, `=>`, `==`) are
    /// emitted as single tokens; everything else is one char each.
    Punct,
    /// Integer literal (including its suffix, e.g. `40u64`).
    Int,
    /// Float literal (has a fractional part, exponent, or `f32`/`f64`
    /// suffix, e.g. `0.0`, `1e-9`, `1f64`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    /// Contents are not preserved.
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    CharLit,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line or block), captured for allow-annotation parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when code tokens precede the comment on its own line
    /// (a trailing comment annotates *its* line; a standalone comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// Lex output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when the chars at `i` begin a raw string (`r"`, `r#"`, …):
/// after the `r`, zero or more `#` followed by a quote.
fn raw_string_ahead(chars: &[char], mut i: usize) -> bool {
    while chars.get(i) == Some(&'#') {
        i += 1;
    }
    chars.get(i) == Some(&'"')
}

/// Lexes `src` into tokens and comments. Invalid input never panics:
/// unknown bytes are emitted as single-char `Punct` tokens and
/// unterminated literals simply run to end of file.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Line of the most recently emitted token, for trailing-comment
    // detection.
    let mut last_tok_line: u32 = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
                trailing: last_tok_line == line,
            });
            continue;
        }

        // Block comment (nested, as in Rust).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1u32;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: chars[start..i.min(chars.len())].iter().collect(),
                line: start_line,
                trailing: last_tok_line == start_line,
            });
            continue;
        }

        // String literals: "…", r"…", r#"…"#, b"…", br#"…"#.
        let (is_str, body_at) = match c {
            '"' => (true, i),
            'r' if raw_string_ahead(&chars, i + 1) => (true, i + 1),
            'b' if chars.get(i + 1) == Some(&'"') => (true, i + 1),
            'b' if chars.get(i + 1) == Some(&'r') && raw_string_ahead(&chars, i + 2) => {
                (true, i + 2)
            }
            _ => (false, i),
        };
        if is_str {
            let start_line = line;
            let mut j = body_at;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // r-prefixed strings take no escapes; plain and byte
            // strings do.
            let takes_escapes = !(chars.get(i) == Some(&'r')
                || (chars.get(i) == Some(&'b') && chars.get(i + 1) == Some(&'r')));
            debug_assert_eq!(chars.get(j), Some(&'"'));
            j += 1; // past opening quote
            loop {
                match chars.get(j) {
                    None => break,
                    Some('\n') => {
                        line += 1;
                        j += 1;
                    }
                    Some('\\') if takes_escapes => {
                        j += 2;
                    }
                    Some('"') => {
                        // Need `hashes` closing #s for raw strings.
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && chars.get(k) == Some(&'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                        j += 1;
                    }
                    Some(_) => {
                        j += 1;
                    }
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            last_tok_line = start_line;
            i = j;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' || (c == 'b' && chars.get(i + 1) == Some(&'\'')) {
            let q = if c == 'b' { i + 1 } else { i };
            let after = chars.get(q + 1);
            let is_char = match after {
                Some('\\') => true,
                Some(ch) if is_ident_continue(*ch) => {
                    // 'a' is a char lit only if a quote follows the
                    // single char; otherwise it's a lifetime.
                    chars.get(q + 2) == Some(&'\'')
                }
                Some(_) => true, // e.g. '(' — a char literal
                None => false,
            };
            if is_char {
                let mut j = q + 1;
                if chars.get(j) == Some(&'\\') {
                    j += 2; // skip escape head; scan to closing quote below
                }
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: String::new(),
                    line,
                });
                last_tok_line = line;
                i = j + 1;
                continue;
            }
            // Lifetime: consume ' + ident.
            let mut j = q + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: chars[i..j].iter().collect(),
                line,
            });
            last_tok_line = line;
            i = j;
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            i += 1;
            if c == '0' && matches!(chars.get(i), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fraction: a '.' followed by a digit (so `1..4` and
                // `1.max(2)` stay integers).
                if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                } else if chars.get(i) == Some(&'.')
                    && !chars
                        .get(i + 1)
                        .is_some_and(|c| is_ident_start(*c) || *c == '.')
                {
                    // Trailing-dot float like `1.`.
                    is_float = true;
                    i += 1;
                }
                // Exponent.
                if matches!(chars.get(i), Some('e' | 'E'))
                    && (chars.get(i + 1).is_some_and(char::is_ascii_digit)
                        || (matches!(chars.get(i + 1), Some('+' | '-'))
                            && chars.get(i + 2).is_some_and(char::is_ascii_digit)))
                {
                    is_float = true;
                    i += 1;
                    if matches!(chars.get(i), Some('+' | '-')) {
                        i += 1;
                    }
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Suffix (u64, f32, …).
                let suffix_start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let suffix: String = chars[suffix_start..i].iter().collect();
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
            }
            out.toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: chars[start..i].iter().collect(),
                line,
            });
            last_tok_line = line;
            continue;
        }

        // Identifiers / keywords (including raw idents `r#loop`).
        if is_ident_start(c) {
            let start = i;
            if c == 'r' && chars.get(i + 1) == Some(&'#') {
                i += 2;
            }
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            last_tok_line = line;
            continue;
        }

        // Punctuation: a few multi-char operators the rules match on,
        // single chars otherwise.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        let multi = matches!(
            two.as_str(),
            "::" | "+=" | "-=" | "*=" | "/=" | "->" | "=>" | "=="
        );
        let text = if multi {
            i += 2;
            two
        } else {
            i += 1;
            c.to_string()
        };
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text,
            line,
        });
        last_tok_line = line;
    }

    out
}
