//! Cumulative-capacity index over a trace for fast repeated integration.
//!
//! MPC-style ABR controllers evaluate thousands of candidate bitrate plans
//! per decision, each needing "how long does `bits` take starting at `t`?".
//! [`CumulativeTrace`] answers that in `O(log n)` against the same
//! piecewise-constant semantics as [`ThroughputTrace::download_time`].

use crate::ThroughputTrace;

/// Precomputed cumulative capacity of a trace.
#[derive(Debug, Clone)]
pub struct CumulativeTrace {
    /// `cum[i]` = bits transferable over `[0, i·Δ)`; length `n + 1`.
    cum_bits: Vec<f64>,
    kbps: Vec<f64>,
    interval_s: f64,
}

impl CumulativeTrace {
    /// Builds the index from a trace.
    pub fn new(trace: &ThroughputTrace) -> Self {
        let mut index = Self {
            cum_bits: Vec::with_capacity(trace.samples().len() + 1),
            kbps: Vec::with_capacity(trace.samples().len()),
            interval_s: trace.interval_s(),
        };
        index.rebind(trace);
        index
    }

    /// Rebuilds the index over a different trace, reusing the existing
    /// buffers — the rebind path long-lived MPC controllers use when one
    /// policy instance serves thousands of sessions on changing networks.
    pub fn rebind(&mut self, trace: &ThroughputTrace) {
        self.interval_s = trace.interval_s();
        self.kbps.clear();
        self.kbps.extend_from_slice(trace.samples());
        self.cum_bits.clear();
        self.cum_bits.push(0.0);
        let mut acc = 0.0;
        for &kbps in trace.samples() {
            acc += kbps * 1000.0 * self.interval_s;
            self.cum_bits.push(acc);
        }
    }

    /// Duration of one pass over the trace.
    pub fn duration_s(&self) -> f64 {
        self.kbps.len() as f64 * self.interval_s
    }

    /// Bits transferable per full pass over the trace.
    pub fn bits_per_loop(&self) -> f64 {
        *self.cum_bits.last().expect("cum has n+1 entries")
    }

    /// Bits transferable over `[0, t)` within a single loop (`t` clamped to
    /// the loop duration).
    fn bits_before(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, self.duration_s());
        let idx = ((t / self.interval_s) as usize).min(self.kbps.len() - 1);
        let within = t - idx as f64 * self.interval_s;
        self.cum_bits[idx] + self.kbps[idx] * 1000.0 * within
    }

    /// Time (seconds) to transfer `bits` starting at absolute time
    /// `start_s`, wrapping at the trace end. Matches
    /// [`ThroughputTrace::download_time`] to floating-point accuracy.
    pub fn download_time(&self, start_s: f64, bits: f64) -> f64 {
        assert!(
            bits.is_finite() && bits >= 0.0,
            "bits must be finite and non-negative, got {bits}"
        );
        if bits == 0.0 {
            return 0.0;
        }
        let duration = self.duration_s();
        let per_loop = self.bits_per_loop();
        let start = start_s.max(0.0) % duration;
        let head = per_loop - self.bits_before(start);
        if bits <= head {
            return self.invert_from(start, bits);
        }
        let after_head = bits - head;
        let full_loops = (after_head / per_loop).floor();
        let tail_bits = after_head - full_loops * per_loop;
        (duration - start) + full_loops * duration + self.invert_from(0.0, tail_bits)
    }

    /// Time from `start` (within one loop, with `bits <= capacity to loop
    /// end`) until `bits` have been transferred.
    fn invert_from(&self, start: f64, bits: f64) -> f64 {
        if bits <= 0.0 {
            return 0.0;
        }
        let target = self.bits_before(start) + bits;
        // Binary search the first bucket whose cumulative end reaches the
        // target.
        let mut lo = (start / self.interval_s) as usize;
        let mut hi = self.kbps.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cum_bits[mid + 1] >= target - 1e-9 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let idx = lo.min(self.kbps.len() - 1);
        let rate = self.kbps[idx] * 1000.0;
        let within = if rate > 0.0 {
            (target - self.cum_bits[idx]) / rate
        } else {
            self.interval_s
        };
        idx as f64 * self.interval_s + within - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn matches_naive_download_time_on_synthetic_traces() {
        for seed in 0..4 {
            let trace = generate::hsdpa_like(1200.0, 120, seed);
            let cum = CumulativeTrace::new(&trace);
            for start in [0.0, 0.3, 7.9, 55.5, 119.0, 200.0] {
                for bits in [1e3, 1e5, 4e6, 5e7, 4e8] {
                    let naive = trace.download_time(start, bits);
                    let fast = cum.download_time(start, bits);
                    assert!(
                        (naive - fast).abs() < 1e-6 * naive.max(1.0),
                        "seed {seed} start {start} bits {bits}: naive {naive} vs fast {fast}"
                    );
                }
            }
        }
    }

    #[test]
    fn handles_outage_buckets() {
        let trace = crate::ThroughputTrace::new("o", 1.0, vec![0.0, 1000.0, 0.0, 500.0]).unwrap();
        let cum = CumulativeTrace::new(&trace);
        for start in [0.0, 0.5, 1.5, 2.0, 3.9] {
            for bits in [1e3, 1e6, 3e6] {
                let naive = trace.download_time(start, bits);
                let fast = cum.download_time(start, bits);
                assert!(
                    (naive - fast).abs() < 1e-6 * naive.max(1.0),
                    "start {start} bits {bits}: naive {naive} vs fast {fast}"
                );
            }
        }
    }

    #[test]
    fn zero_bits_is_free() {
        let trace = crate::ThroughputTrace::constant("c", 1000.0, 10.0).unwrap();
        let cum = CumulativeTrace::new(&trace);
        assert_eq!(cum.download_time(3.0, 0.0), 0.0);
    }

    #[test]
    fn multi_loop_wrap() {
        let trace = crate::ThroughputTrace::constant("c", 1000.0, 10.0).unwrap();
        let cum = CumulativeTrace::new(&trace);
        // 100 Mb at 1 Mbps = 100 s = 10 loops.
        let dt = cum.download_time(4.0, 100_000_000.0);
        assert!((dt - 100.0).abs() < 1e-6, "dt = {dt}");
    }
}
