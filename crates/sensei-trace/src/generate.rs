//! Seeded synthetic throughput-trace generators.
//!
//! The paper samples its traces from the FCC fixed-broadband dataset and the
//! 3G/HSDPA commute dataset and keeps only traces with mean throughput in
//! 0.2–6 Mbps "so that the ABR algorithms will make non-trivial bitrate
//! selection decisions". We reproduce the two families with first-order
//! autoregressive (AR(1)) processes plus dataset-specific event structure:
//!
//! * **FCC-like** (fixed broadband): high temporal correlation, modest
//!   relative variance, occasional short congestion dips.
//! * **HSDPA-like** (3G commute): lower mean, heavier variance, deep fades
//!   and complete outages as the vehicle passes through coverage holes.

use crate::{gaussian, ThroughputTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of an AR(1) throughput process with superimposed events.
///
/// The process is `x_{t+1} = μ + ρ·(x_t − μ) + σ·ε`, clamped to
/// `[floor_kbps, cap_kbps]`, with events (dips/outages) overriding the
/// process for their duration.
#[derive(Debug, Clone)]
pub struct Ar1Params {
    /// Long-run mean in kbps.
    pub mean_kbps: f64,
    /// Autocorrelation coefficient in `[0, 1)`.
    pub rho: f64,
    /// Innovation standard deviation in kbps.
    pub sigma_kbps: f64,
    /// Lower clamp in kbps (0 allows outages).
    pub floor_kbps: f64,
    /// Upper clamp in kbps.
    pub cap_kbps: f64,
    /// Per-second probability that a dip/outage event starts.
    pub event_prob: f64,
    /// Event duration range in seconds (inclusive).
    pub event_len_s: (usize, usize),
    /// Throughput multiplier during an event (0 = full outage).
    pub event_factor: f64,
}

impl Ar1Params {
    /// Parameters resembling FCC fixed-broadband traces.
    pub fn fcc_like(mean_kbps: f64) -> Self {
        Self {
            mean_kbps,
            rho: 0.97,
            sigma_kbps: 0.08 * mean_kbps,
            floor_kbps: 0.15 * mean_kbps,
            cap_kbps: 2.5 * mean_kbps,
            event_prob: 0.01,
            event_len_s: (2, 6),
            event_factor: 0.35,
        }
    }

    /// Parameters resembling 3G/HSDPA commute traces.
    pub fn hsdpa_like(mean_kbps: f64) -> Self {
        Self {
            mean_kbps,
            rho: 0.90,
            sigma_kbps: 0.25 * mean_kbps,
            floor_kbps: 0.0,
            cap_kbps: 3.0 * mean_kbps,
            event_prob: 0.02,
            event_len_s: (1, 5),
            event_factor: 0.05,
        }
    }
}

/// Generates one AR(1) trace of `duration_s` seconds at 1-second sampling.
///
/// # Panics
///
/// Panics if `params` are internally inconsistent (non-finite mean, `rho`
/// outside `[0, 1)`, or an inverted event-length range); these are programmer
/// errors in experiment setup, not runtime conditions.
pub fn ar1_trace(
    name: impl Into<std::sync::Arc<str>>,
    params: &Ar1Params,
    duration_s: usize,
    seed: u64,
) -> ThroughputTrace {
    assert!(
        params.mean_kbps.is_finite() && params.mean_kbps > 0.0,
        "mean must be positive, got {}",
        params.mean_kbps
    );
    assert!(
        (0.0..1.0).contains(&params.rho),
        "rho must be in [0, 1), got {}",
        params.rho
    );
    assert!(
        params.event_len_s.0 <= params.event_len_s.1,
        "event length range is inverted"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = params.mean_kbps;
    let mut samples = Vec::with_capacity(duration_s.max(1));
    let mut event_left = 0usize;
    for _ in 0..duration_s.max(1) {
        x = params.mean_kbps
            + params.rho * (x - params.mean_kbps)
            + params.sigma_kbps * gaussian(&mut rng);
        x = x.clamp(params.floor_kbps, params.cap_kbps);
        if event_left == 0 && rng.gen_bool(params.event_prob) {
            event_left = rng.gen_range(params.event_len_s.0..=params.event_len_s.1);
        }
        let v = if event_left > 0 {
            event_left -= 1;
            x * params.event_factor
        } else {
            x
        };
        samples.push(v);
    }
    ThroughputTrace::new(name, 1.0, samples)
        .expect("AR(1) generator cannot produce an invalid trace")
}

/// Convenience constructor for an FCC-like trace.
pub fn fcc_like(mean_kbps: f64, duration_s: usize, seed: u64) -> ThroughputTrace {
    ar1_trace(
        format!("fcc-{mean_kbps:.0}k-s{seed}"),
        &Ar1Params::fcc_like(mean_kbps),
        duration_s,
        seed,
    )
}

/// Convenience constructor for an HSDPA/3G-like trace.
pub fn hsdpa_like(mean_kbps: f64, duration_s: usize, seed: u64) -> ThroughputTrace {
    ar1_trace(
        format!("hsdpa-{mean_kbps:.0}k-s{seed}"),
        &Ar1Params::hsdpa_like(mean_kbps),
        duration_s,
        seed,
    )
}

/// The 10-trace evaluation set used by the end-to-end experiments
/// (§7.1: "We randomly select 10 throughput traces from two public datasets,
/// FCC and 3G/HSDPA ... average throughput between 0.2 Mbps and 6 Mbps").
///
/// Returned sorted by increasing mean throughput, matching the x-axis
/// ordering of Fig. 14. Five traces come from each family; target means are
/// spread across the paper's 0.2–6 Mbps envelope.
pub fn evaluation_set(seed: u64) -> Vec<ThroughputTrace> {
    let duration = 1200; // 20 minutes: longer than any test video.
    let hsdpa_means = [400.0, 700.0, 1100.0, 1600.0, 2300.0];
    let fcc_means = [900.0, 1400.0, 2100.0, 3200.0, 4800.0];
    let mut traces = Vec::with_capacity(10);
    for (i, &m) in hsdpa_means.iter().enumerate() {
        traces.push(hsdpa_like(m, duration, seed ^ (0x3_0000 + i as u64)));
    }
    for (i, &m) in fcc_means.iter().enumerate() {
        traces.push(fcc_like(m, duration, seed ^ (0xF_0000 + i as u64)));
    }
    traces.sort_by(|a, b| {
        a.mean_kbps()
            .partial_cmp(&b.mean_kbps())
            .expect("trace means are finite")
    });
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_like_stays_near_mean() {
        let t = fcc_like(3000.0, 600, 42);
        assert!(
            (t.mean_kbps() - 3000.0).abs() < 900.0,
            "mean {}",
            t.mean_kbps()
        );
        assert!(t.max_kbps() <= 2.5 * 3000.0);
        // Fixed broadband: no full outages.
        assert!(t.min_kbps() > 0.0);
    }

    #[test]
    fn hsdpa_like_is_burstier_than_fcc() {
        let f = fcc_like(2000.0, 900, 1);
        let h = hsdpa_like(2000.0, 900, 1);
        let f_cv = f.std_kbps() / f.mean_kbps();
        let h_cv = h.std_kbps() / h.mean_kbps();
        assert!(h_cv > f_cv, "hsdpa cv {h_cv} vs fcc cv {f_cv}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = fcc_like(1500.0, 120, 9);
        let b = fcc_like(1500.0, 120, 9);
        assert_eq!(a.samples(), b.samples());
        let c = fcc_like(1500.0, 120, 10);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn evaluation_set_matches_paper_envelope() {
        let set = evaluation_set(2021);
        assert_eq!(set.len(), 10);
        for t in &set {
            let m = t.mean_kbps();
            assert!(
                (200.0..=6000.0).contains(&m),
                "trace {} mean {m} outside the paper's 0.2-6 Mbps envelope",
                t.name()
            );
            assert!(t.duration_s() >= 600.0);
        }
        // Sorted by mean (Fig. 14 ordering).
        for w in set.windows(2) {
            assert!(w[0].mean_kbps() <= w[1].mean_kbps());
        }
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn ar1_rejects_bad_rho() {
        let mut p = Ar1Params::fcc_like(1000.0);
        p.rho = 1.5;
        let _ = ar1_trace("bad", &p, 10, 0);
    }

    #[test]
    fn zero_duration_yields_single_sample() {
        let t = fcc_like(1000.0, 0, 3);
        assert_eq!(t.samples().len(), 1);
    }
}
