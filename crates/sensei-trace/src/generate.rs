//! Seeded synthetic throughput-trace generators.
//!
//! The paper samples its traces from the FCC fixed-broadband dataset and the
//! 3G/HSDPA commute dataset and keeps only traces with mean throughput in
//! 0.2–6 Mbps "so that the ABR algorithms will make non-trivial bitrate
//! selection decisions". We reproduce the two families with first-order
//! autoregressive (AR(1)) processes plus dataset-specific event structure:
//!
//! * **FCC-like** (fixed broadband): high temporal correlation, modest
//!   relative variance, occasional short congestion dips.
//! * **HSDPA-like** (3G commute): lower mean, heavier variance, deep fades
//!   and complete outages as the vehicle passes through coverage holes.
//!
//! On top of the two AR(1) datasets, three richer *procedural families*
//! feed fleet-scale evaluation (the ROADMAP's scenario-diversity axis):
//!
//! * [`diurnal_trace`] — the AR(1) capacity modulated by a compressed
//!   time-of-day load envelope (evening-peak congestion).
//! * [`burst_train_trace`] — cross-traffic burst trains: clustered
//!   capacity drops as a competing flow turns on and off.
//! * [`shared_cell_traces`] — N users fair-sharing one AR(1) cell
//!   capacity, so all users' traces dip together (correlated scenarios).
//!
//! [`generate_family`] wraps all five behind a single seeded API and
//! admission-filters every produced trace into the paper's 0.2–6 Mbps
//! band, so the fleet can expand a family name into hundreds of distinct,
//! deterministic network scenarios.

use crate::{gaussian, ThroughputTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Lower edge of the paper's trace-admission band (§7.1), in kbps.
pub const ADMISSION_MIN_KBPS: f64 = 200.0;
/// Upper edge of the paper's trace-admission band (§7.1), in kbps.
pub const ADMISSION_MAX_KBPS: f64 = 6000.0;

/// Whether a mean throughput lies in the paper's 0.2–6 Mbps admission band.
#[must_use]
pub fn in_admission_band(mean_kbps: f64) -> bool {
    (ADMISSION_MIN_KBPS..=ADMISSION_MAX_KBPS).contains(&mean_kbps)
}

/// Bounded resampling budget for generators whose stochastic output can
/// land outside its validity envelope (all-zero short traces, family
/// means outside the admission band). 32 attempts make exhaustion
/// astronomically unlikely for any parameterization that admits non-zero
/// traces at all, while still failing fast on impossible ones.
const MAX_ATTEMPTS: u64 = 32;

/// Derives the RNG seed of resampling `attempt` from the caller's seed.
/// Attempt 0 *is* the caller's seed, so the common no-retry path is
/// byte-identical to the historical single-shot generators.
fn attempt_seed(seed: u64, attempt: u64) -> u64 {
    if attempt == 0 {
        return seed;
    }
    // SplitMix64 finalizer over (seed, attempt): statistically unrelated
    // streams per attempt without a dependency on sensei-fleet.
    let mut z = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parameters of an AR(1) throughput process with superimposed events.
///
/// The process is `x_{t+1} = μ + ρ·(x_t − μ) + σ·ε`, clamped to
/// `[floor_kbps, cap_kbps]`, with events (dips/outages) overriding the
/// process for their duration.
#[derive(Debug, Clone)]
pub struct Ar1Params {
    /// Long-run mean in kbps.
    pub mean_kbps: f64,
    /// Autocorrelation coefficient in `[0, 1)`.
    pub rho: f64,
    /// Innovation standard deviation in kbps.
    pub sigma_kbps: f64,
    /// Lower clamp in kbps (0 allows outages).
    pub floor_kbps: f64,
    /// Upper clamp in kbps.
    pub cap_kbps: f64,
    /// Per-second probability that a dip/outage event starts.
    pub event_prob: f64,
    /// Event duration range in seconds (inclusive).
    pub event_len_s: (usize, usize),
    /// Throughput multiplier during an event (0 = full outage).
    pub event_factor: f64,
}

impl Ar1Params {
    /// Parameters resembling FCC fixed-broadband traces.
    pub fn fcc_like(mean_kbps: f64) -> Self {
        Self {
            mean_kbps,
            rho: 0.97,
            sigma_kbps: 0.08 * mean_kbps,
            floor_kbps: 0.15 * mean_kbps,
            cap_kbps: 2.5 * mean_kbps,
            event_prob: 0.01,
            event_len_s: (2, 6),
            event_factor: 0.35,
        }
    }

    /// Parameters resembling 3G/HSDPA commute traces.
    pub fn hsdpa_like(mean_kbps: f64) -> Self {
        Self {
            mean_kbps,
            rho: 0.90,
            sigma_kbps: 0.25 * mean_kbps,
            floor_kbps: 0.0,
            cap_kbps: 3.0 * mean_kbps,
            event_prob: 0.02,
            event_len_s: (1, 5),
            event_factor: 0.05,
        }
    }

    fn validate(&self) {
        assert!(
            self.mean_kbps.is_finite() && self.mean_kbps > 0.0,
            "mean must be positive, got {}",
            self.mean_kbps
        );
        assert!(
            (0.0..1.0).contains(&self.rho),
            "rho must be in [0, 1), got {}",
            self.rho
        );
        assert!(
            self.event_len_s.0 <= self.event_len_s.1,
            "event length range is inverted"
        );
    }
}

/// One pass of the AR(1) sampler — the shared core of every generator in
/// this module. Draw order is load-bearing: it must stay byte-identical
/// so seeded traces from previous releases reproduce exactly.
fn ar1_samples<R: Rng>(params: &Ar1Params, duration_s: usize, rng: &mut R) -> Vec<f64> {
    let mut x = params.mean_kbps;
    let mut samples = Vec::with_capacity(duration_s.max(1));
    let mut event_left = 0usize;
    for _ in 0..duration_s.max(1) {
        x = params.mean_kbps
            + params.rho * (x - params.mean_kbps)
            + params.sigma_kbps * gaussian(rng);
        x = x.clamp(params.floor_kbps, params.cap_kbps);
        if event_left == 0 && rng.gen_bool(params.event_prob) {
            event_left = rng.gen_range(params.event_len_s.0..=params.event_len_s.1);
        }
        let v = if event_left > 0 {
            event_left -= 1;
            x * params.event_factor
        } else {
            x
        };
        samples.push(v);
    }
    samples
}

/// Runs a raw-sample generator with bounded seed-derived resampling until
/// it produces a usable (not all-zero) trace. Attempt 0 uses the caller's
/// seed verbatim, so historical outputs are unchanged; attempts only
/// continue where the previous draw was all-zero — a case that used to
/// abort the whole fleet run with a panic.
///
/// # Panics
///
/// Panics when every attempt is all-zero, which requires parameters that
/// *only* admit zero traces (e.g. a zero cap, or a full-outage event with
/// probability 1) — a programmer error in experiment setup, consistent
/// with this module's other parameter asserts.
fn sample_with_retries(
    name: impl Into<Arc<str>>,
    seed: u64,
    mut generate: impl FnMut(&mut StdRng) -> Vec<f64>,
) -> ThroughputTrace {
    for attempt in 0..MAX_ATTEMPTS {
        let mut rng = StdRng::seed_from_u64(attempt_seed(seed, attempt));
        let samples = generate(&mut rng);
        if samples.iter().any(|&v| v > 0.0) {
            return ThroughputTrace::new(name, 1.0, samples)
                .expect("generator samples are finite and non-negative");
        }
    }
    panic!("trace generator produced all-zero samples for {MAX_ATTEMPTS} derived seeds; the parameters admit only zero traces");
}

/// Generates one AR(1) trace of `duration_s` seconds at 1-second sampling.
///
/// Short traces of deep-outage parameterizations (e.g. an hsdpa-like floor
/// of 0 with outage events) can draw an all-zero sample vector; instead of
/// panicking — which used to abort entire fleet runs — the generator
/// resamples with a derived seed, bounded at a handful of attempts.
///
/// # Panics
///
/// Panics if `params` are internally inconsistent (non-finite mean, `rho`
/// outside `[0, 1)`, or an inverted event-length range), or if the
/// parameters admit *only* all-zero traces; these are programmer errors in
/// experiment setup, not runtime conditions.
pub fn ar1_trace(
    name: impl Into<Arc<str>>,
    params: &Ar1Params,
    duration_s: usize,
    seed: u64,
) -> ThroughputTrace {
    params.validate();
    sample_with_retries(name, seed, |rng| ar1_samples(params, duration_s, rng))
}

/// Convenience constructor for an FCC-like trace.
pub fn fcc_like(mean_kbps: f64, duration_s: usize, seed: u64) -> ThroughputTrace {
    ar1_trace(
        format!("fcc-{mean_kbps:.0}k-s{seed}"),
        &Ar1Params::fcc_like(mean_kbps),
        duration_s,
        seed,
    )
}

/// Convenience constructor for an HSDPA/3G-like trace.
pub fn hsdpa_like(mean_kbps: f64, duration_s: usize, seed: u64) -> ThroughputTrace {
    ar1_trace(
        format!("hsdpa-{mean_kbps:.0}k-s{seed}"),
        &Ar1Params::hsdpa_like(mean_kbps),
        duration_s,
        seed,
    )
}

/// Parameters of the diurnal-load family: an AR(1) capacity process
/// modulated by a compressed time-of-day load envelope. At peak load the
/// cell serves `1 − depth` of its off-peak capacity — the evening-peak
/// congestion pattern access ISPs exhibit, compressed so one "day" fits
/// inside a trace.
#[derive(Debug, Clone)]
pub struct DiurnalParams {
    /// The underlying capacity process.
    pub base: Ar1Params,
    /// Length of one compressed "day" in seconds.
    pub period_s: f64,
    /// Peak-hour capacity reduction in `[0, 1)`.
    pub depth: f64,
    /// Phase offset as a fraction of the period in `[0, 1)` (0 starts the
    /// trace at minimum load).
    pub phase: f64,
}

impl DiurnalParams {
    /// An evening-peak profile over an FCC-like access link.
    pub fn evening_peak(mean_kbps: f64) -> Self {
        Self {
            base: Ar1Params::fcc_like(mean_kbps),
            period_s: 600.0,
            depth: 0.45,
            phase: 0.0,
        }
    }
}

/// Generates one diurnal-envelope trace: AR(1) capacity times
/// `1 − depth·load(t)` with `load(t) = (1 − cos(2π(t/period + phase)))/2`
/// (0 at phase 0, 1 at mid-period).
///
/// # Panics
///
/// Panics on inconsistent parameters (see [`ar1_trace`], plus a
/// non-positive period or a depth outside `[0, 1)`).
pub fn diurnal_trace(
    name: impl Into<Arc<str>>,
    params: &DiurnalParams,
    duration_s: usize,
    seed: u64,
) -> ThroughputTrace {
    params.base.validate();
    assert!(
        params.period_s.is_finite() && params.period_s > 0.0,
        "diurnal period must be positive, got {}",
        params.period_s
    );
    assert!(
        (0.0..1.0).contains(&params.depth),
        "diurnal depth must be in [0, 1), got {}",
        params.depth
    );
    sample_with_retries(name, seed, |rng| {
        let mut samples = ar1_samples(&params.base, duration_s, rng);
        for (t, v) in samples.iter_mut().enumerate() {
            let frac = t as f64 / params.period_s + params.phase;
            let load = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * frac).cos());
            *v *= 1.0 - params.depth * load;
        }
        samples
    })
}

/// Parameters of the cross-traffic burst-train family: an AR(1) capacity
/// process from which a competing flow periodically steals bandwidth in
/// *trains* of short bursts — the clustered (not memoryless) congestion
/// shape of backbone cross-traffic.
#[derive(Debug, Clone)]
pub struct BurstTrainParams {
    /// The underlying capacity process.
    pub base: Ar1Params,
    /// Per-second probability a burst train starts when none is active.
    pub train_prob: f64,
    /// Bursts per train (inclusive range).
    pub bursts_per_train: (usize, usize),
    /// Individual burst length in seconds (inclusive range).
    pub burst_len_s: (usize, usize),
    /// Gap between bursts inside a train, in seconds (inclusive range).
    pub gap_s: (usize, usize),
    /// Fraction of capacity the cross-traffic consumes during a burst,
    /// in `[0, 1)`.
    pub intensity: f64,
}

impl BurstTrainParams {
    /// A bursty-backbone profile over an FCC-like access link.
    pub fn backbone(mean_kbps: f64) -> Self {
        Self {
            base: Ar1Params::fcc_like(mean_kbps),
            train_prob: 0.015,
            bursts_per_train: (2, 5),
            burst_len_s: (2, 5),
            gap_s: (1, 4),
            intensity: 0.65,
        }
    }
}

/// Generates one cross-traffic burst-train trace.
///
/// # Panics
///
/// Panics on inconsistent parameters (see [`ar1_trace`], plus inverted
/// burst/gap/count ranges or an intensity outside `[0, 1)`).
pub fn burst_train_trace(
    name: impl Into<Arc<str>>,
    params: &BurstTrainParams,
    duration_s: usize,
    seed: u64,
) -> ThroughputTrace {
    params.base.validate();
    assert!(
        (0.0..1.0).contains(&params.intensity),
        "burst intensity must be in [0, 1), got {}",
        params.intensity
    );
    for (label, (lo, hi)) in [
        ("bursts_per_train", params.bursts_per_train),
        ("burst_len_s", params.burst_len_s),
        ("gap_s", params.gap_s),
    ] {
        assert!(lo <= hi, "{label} range is inverted");
    }
    sample_with_retries(name, seed, |rng| {
        let mut samples = ar1_samples(&params.base, duration_s, rng);
        // Second pass over the same RNG: a 3-state train machine (idle →
        // burst → gap → …) that multiplies capacity by 1 − intensity
        // while a burst is on.
        let mut bursts_left = 0usize;
        let mut burst_left = 0usize;
        let mut gap_left = 0usize;
        for v in &mut samples {
            if burst_left == 0 && gap_left == 0 {
                if bursts_left > 0 {
                    // Between bursts of an active train.
                    bursts_left -= 1;
                    burst_left = rng.gen_range(params.burst_len_s.0..=params.burst_len_s.1);
                } else if rng.gen_bool(params.train_prob) {
                    // A drawn count of 0 (possible when the range starts
                    // at 0) means this train carries no bursts at all.
                    let count =
                        rng.gen_range(params.bursts_per_train.0..=params.bursts_per_train.1);
                    if count > 0 {
                        bursts_left = count - 1;
                        burst_left = rng.gen_range(params.burst_len_s.0..=params.burst_len_s.1);
                    }
                }
            }
            if burst_left > 0 {
                burst_left -= 1;
                *v *= 1.0 - params.intensity;
                if burst_left == 0 && bursts_left > 0 {
                    gap_left = rng.gen_range(params.gap_s.0..=params.gap_s.1);
                }
            } else {
                gap_left = gap_left.saturating_sub(1);
            }
        }
        samples
    })
}

/// Parameters of the correlated shared-cell family: `users` subscribers
/// fair-sharing one AR(1) cell capacity. Each user carries a slowly
/// drifting AR(1) demand weight; user `i` receives
/// `capacity · wᵢ / Σw` each second, so every user's trace dips when the
/// *cell* fades — the correlation structure single-user families cannot
/// express.
#[derive(Debug, Clone)]
pub struct SharedCellParams {
    /// The cell's aggregate capacity process. Its mean is the *total*
    /// capacity; each user sees roughly `mean_kbps / users`.
    pub cell: Ar1Params,
    /// Number of users sharing the cell (≥ 1).
    pub users: usize,
    /// Autocorrelation of each user's demand weight, in `[0, 1)`.
    pub demand_rho: f64,
    /// Innovation standard deviation of the demand weights.
    pub demand_sigma: f64,
}

impl SharedCellParams {
    /// A `users`-subscriber HSDPA-like cell with total capacity sized so
    /// each user averages about `per_user_mean_kbps`.
    pub fn hsdpa_cell(per_user_mean_kbps: f64, users: usize) -> Self {
        Self {
            cell: Ar1Params::hsdpa_like(per_user_mean_kbps * users.max(1) as f64),
            users,
            demand_rho: 0.95,
            demand_sigma: 0.08,
        }
    }
}

/// Generates the correlated per-user traces of one shared cell. Returns
/// `users` traces named `{prefix}-u{i}`, all derived from a single cell
/// capacity draw — deterministic in `seed`.
///
/// # Panics
///
/// Panics on inconsistent parameters (see [`ar1_trace`], plus zero users
/// or a demand rho outside `[0, 1)`).
pub fn shared_cell_traces(
    prefix: &str,
    params: &SharedCellParams,
    duration_s: usize,
    seed: u64,
) -> Vec<ThroughputTrace> {
    params.cell.validate();
    assert!(params.users >= 1, "a shared cell needs at least one user");
    assert!(
        (0.0..1.0).contains(&params.demand_rho),
        "demand rho must be in [0, 1), got {}",
        params.demand_rho
    );
    // Bounded derived-seed retries on the *cell* capacity draw: an
    // all-zero cell divides into all-zero user traces, and weights are
    // clamped strictly positive, so a somewhere-positive cell guarantees
    // every user trace is somewhere-positive too.
    let (capacity, mut rng) = (0..MAX_ATTEMPTS)
        .find_map(|attempt| {
            let mut rng = StdRng::seed_from_u64(attempt_seed(seed, attempt));
            let c = ar1_samples(&params.cell, duration_s, &mut rng);
            c.iter().any(|&v| v > 0.0).then_some((c, rng))
        })
        .expect("cell capacity was all-zero for every derived seed; the parameters admit only zero traces");
    // Per-user AR(1) demand weights around 1, clamped positive so the
    // fair share is always defined. Time-major: `weights[t][u]`.
    let mut w = vec![1.0f64; params.users];
    let weights: Vec<Vec<f64>> = capacity
        .iter()
        .map(|_| {
            for wu in w.iter_mut() {
                *wu = 1.0
                    + params.demand_rho * (*wu - 1.0)
                    + params.demand_sigma * gaussian(&mut rng);
                *wu = wu.clamp(0.05, 4.0);
            }
            w.clone()
        })
        .collect();
    // Per-second weight totals computed once, not once per user — keeps
    // generation O(users · duration) instead of O(users² · duration).
    let totals: Vec<f64> = weights.iter().map(|wt| wt.iter().sum()).collect();
    (0..params.users)
        .map(|u| {
            let samples: Vec<f64> = capacity
                .iter()
                .zip(&weights)
                .zip(&totals)
                .map(|((&cap, wt), &total)| cap * wt[u] / total)
                .collect();
            ThroughputTrace::new(format!("{prefix}-u{u}"), 1.0, samples)
                .expect("a somewhere-positive cell yields somewhere-positive user shares")
        })
        .collect()
}

/// A procedural trace-family identifier for fleet-scale generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFamily {
    /// FCC-like fixed broadband (AR(1)).
    Fcc,
    /// HSDPA/3G-like commute (AR(1) with outages).
    Hsdpa,
    /// Diurnal load envelope over an FCC-like link.
    Diurnal,
    /// Cross-traffic burst trains over an FCC-like link.
    CrossTrafficBursts,
    /// `users` subscribers fair-sharing one HSDPA-like cell.
    SharedCell {
        /// Subscribers per cell (≥ 1).
        users: usize,
    },
}

impl TraceFamily {
    /// Short label used in generated trace names.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TraceFamily::Fcc => "fcc",
            TraceFamily::Hsdpa => "hsdpa",
            TraceFamily::Diurnal => "diurnal",
            TraceFamily::CrossTrafficBursts => "burst",
            TraceFamily::SharedCell { .. } => "cell",
        }
    }

    /// Every family, with a 4-user shared cell as the correlated
    /// representative — handy for sweeps and tests.
    #[must_use]
    pub fn all() -> Vec<TraceFamily> {
        vec![
            TraceFamily::Fcc,
            TraceFamily::Hsdpa,
            TraceFamily::Diurnal,
            TraceFamily::CrossTrafficBursts,
            TraceFamily::SharedCell { users: 4 },
        ]
    }
}

/// Generates `count` admission-filtered traces of one family,
/// deterministic in `seed`. Target means are spread across the 0.2–6 Mbps
/// band (log-uniformly, so the low-bandwidth regime the paper cares about
/// is not under-sampled); every produced trace is re-drawn with a derived
/// seed — and, as a last resort, linearly rescaled — until its mean lands
/// inside the band, so downstream fleet matrices can rely on
/// [`in_admission_band`] holding for every entry.
pub fn generate_family(
    family: &TraceFamily,
    count: usize,
    duration_s: usize,
    seed: u64,
) -> Vec<ThroughputTrace> {
    let mut out = Vec::with_capacity(count);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_111);
    // Shared cells produce `users` correlated traces per draw; the other
    // families produce one.
    let mut cell_index = 0u64;
    while out.len() < count {
        // Log-uniform target mean over a band comfortably inside the
        // admission envelope (the generators wander around their mean, so
        // leave headroom at both edges).
        let lo: f64 = 320.0;
        let hi: f64 = 4800.0;
        let target = lo * (hi / lo).powf(rng.gen_range(0.0..1.0));
        let draw_seed = attempt_seed(seed, 0x1000 + cell_index);
        cell_index += 1;
        let idx = out.len();
        match family {
            TraceFamily::SharedCell { users } => {
                let params = SharedCellParams::hsdpa_cell(target, (*users).max(1));
                let prefix = format!("cell{}-{idx:03}-{target:.0}k", params.users);
                for trace in shared_cell_traces(&prefix, &params, duration_s, draw_seed) {
                    if out.len() < count {
                        out.push(admit(trace));
                    }
                }
            }
            single => {
                let name = format!("{}-{idx:03}-{target:.0}k", single.label());
                let trace = admitted_single(single, &name, target, duration_s, draw_seed);
                out.push(trace);
            }
        }
    }
    out
}

/// Draws one single-user family trace, resampling with derived seeds
/// until the mean lands in the admission band (rescale fallback after the
/// attempt budget).
fn admitted_single(
    family: &TraceFamily,
    name: &str,
    target_mean_kbps: f64,
    duration_s: usize,
    seed: u64,
) -> ThroughputTrace {
    for attempt in 0..MAX_ATTEMPTS {
        let s = attempt_seed(seed, attempt);
        let trace = match family {
            TraceFamily::Fcc => {
                ar1_trace(name, &Ar1Params::fcc_like(target_mean_kbps), duration_s, s)
            }
            TraceFamily::Hsdpa => ar1_trace(
                name,
                &Ar1Params::hsdpa_like(target_mean_kbps),
                duration_s,
                s,
            ),
            TraceFamily::Diurnal => diurnal_trace(
                name,
                &DiurnalParams::evening_peak(target_mean_kbps),
                duration_s,
                s,
            ),
            TraceFamily::CrossTrafficBursts => burst_train_trace(
                name,
                &BurstTrainParams::backbone(target_mean_kbps),
                duration_s,
                s,
            ),
            TraceFamily::SharedCell { .. } => unreachable!("shared cells take the multi-user path"),
        };
        if in_admission_band(trace.mean_kbps()) {
            return trace;
        }
        if attempt == MAX_ATTEMPTS - 1 {
            return admit(trace);
        }
    }
    unreachable!("the final attempt always admits")
}

/// Admission fallback: linearly rescales a trace's samples so its mean
/// sits inside the band (keeping the name — this is a family-internal
/// normalization, not a user-facing `scaled` perturbation). A no-op for
/// traces already in band.
fn admit(trace: ThroughputTrace) -> ThroughputTrace {
    let mean = trace.mean_kbps();
    if in_admission_band(mean) {
        return trace;
    }
    // Pull the mean to the nearest band edge with 5% headroom so the
    // admitted trace does not sit exactly on the boundary.
    let target = if mean < ADMISSION_MIN_KBPS {
        ADMISSION_MIN_KBPS * 1.05
    } else {
        ADMISSION_MAX_KBPS * 0.95
    };
    let factor = target / mean;
    let name = trace.name_handle();
    let interval = trace.interval_s();
    let mut samples = trace.into_samples();
    for v in &mut samples {
        *v *= factor;
    }
    ThroughputTrace::new(name, interval, samples).expect("rescaled admission keeps samples valid")
}

/// The 10-trace evaluation set used by the end-to-end experiments
/// (§7.1: "We randomly select 10 throughput traces from two public datasets,
/// FCC and 3G/HSDPA ... average throughput between 0.2 Mbps and 6 Mbps").
///
/// Returned sorted by increasing mean throughput, matching the x-axis
/// ordering of Fig. 14. Five traces come from each family; target means are
/// spread across the paper's 0.2–6 Mbps envelope.
pub fn evaluation_set(seed: u64) -> Vec<ThroughputTrace> {
    let duration = 1200; // 20 minutes: longer than any test video.
    let hsdpa_means = [400.0, 700.0, 1100.0, 1600.0, 2300.0];
    let fcc_means = [900.0, 1400.0, 2100.0, 3200.0, 4800.0];
    let mut traces = Vec::with_capacity(10);
    for (i, &m) in hsdpa_means.iter().enumerate() {
        traces.push(hsdpa_like(m, duration, seed ^ (0x3_0000 + i as u64)));
    }
    for (i, &m) in fcc_means.iter().enumerate() {
        traces.push(fcc_like(m, duration, seed ^ (0xF_0000 + i as u64)));
    }
    traces.sort_by(|a, b| {
        a.mean_kbps()
            .partial_cmp(&b.mean_kbps())
            .expect("trace means are finite")
    });
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_like_stays_near_mean() {
        let t = fcc_like(3000.0, 600, 42);
        assert!(
            (t.mean_kbps() - 3000.0).abs() < 900.0,
            "mean {}",
            t.mean_kbps()
        );
        assert!(t.max_kbps() <= 2.5 * 3000.0);
        // Fixed broadband: no full outages.
        assert!(t.min_kbps() > 0.0);
    }

    #[test]
    fn hsdpa_like_is_burstier_than_fcc() {
        let f = fcc_like(2000.0, 900, 1);
        let h = hsdpa_like(2000.0, 900, 1);
        let f_cv = f.std_kbps() / f.mean_kbps();
        let h_cv = h.std_kbps() / h.mean_kbps();
        assert!(h_cv > f_cv, "hsdpa cv {h_cv} vs fcc cv {f_cv}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = fcc_like(1500.0, 120, 9);
        let b = fcc_like(1500.0, 120, 9);
        assert_eq!(a.samples(), b.samples());
        let c = fcc_like(1500.0, 120, 10);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn evaluation_set_matches_paper_envelope() {
        let set = evaluation_set(2021);
        assert_eq!(set.len(), 10);
        for t in &set {
            let m = t.mean_kbps();
            assert!(
                (200.0..=6000.0).contains(&m),
                "trace {} mean {m} outside the paper's 0.2-6 Mbps envelope",
                t.name()
            );
            assert!(t.duration_s() >= 600.0);
        }
        // Sorted by mean (Fig. 14 ordering).
        for w in set.windows(2) {
            assert!(w[0].mean_kbps() <= w[1].mean_kbps());
        }
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn ar1_rejects_bad_rho() {
        let mut p = Ar1Params::fcc_like(1000.0);
        p.rho = 1.5;
        let _ = ar1_trace("bad", &p, 10, 0);
    }

    #[test]
    fn zero_duration_yields_single_sample() {
        let t = fcc_like(1000.0, 0, 3);
        assert_eq!(t.samples().len(), 1);
    }

    /// Deep-outage parameters that frequently draw an all-zero first
    /// attempt on short durations: full-outage events that start with
    /// probability 0.5 every second.
    fn outage_heavy() -> Ar1Params {
        Ar1Params {
            event_prob: 0.5,
            event_factor: 0.0,
            ..Ar1Params::hsdpa_like(400.0)
        }
    }

    #[test]
    fn short_deep_outage_traces_resample_instead_of_panicking() {
        // Regression: an all-zero draw used to hit the `expect` in
        // `ar1_trace` and abort the whole run. With P(outage start) = 0.5
        // and 2 samples, a large fraction of seeds draw all-zero on the
        // first attempt, so this sweep exercises the derived-seed retry
        // path many times while staying far from the attempt budget.
        for seed in 0..300 {
            let t = ar1_trace(format!("outage-s{seed}"), &outage_heavy(), 2, seed);
            assert!(t.samples().iter().any(|&v| v > 0.0), "seed {seed}");
        }
    }

    #[test]
    fn resampled_traces_stay_deterministic() {
        let a = ar1_trace("o", &outage_heavy(), 2, 11);
        let b = ar1_trace("o", &outage_heavy(), 2, 11);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    #[should_panic(expected = "admit only zero traces")]
    fn impossible_parameters_still_fail_loudly() {
        // event_prob 1 + factor 0 means *every* sample is an outage:
        // retries cannot help, and silent acceptance would hide the
        // setup bug.
        let p = Ar1Params {
            event_prob: 1.0,
            event_factor: 0.0,
            event_len_s: (1000, 1000),
            ..Ar1Params::hsdpa_like(400.0)
        };
        let _ = ar1_trace("impossible", &p, 10, 0);
    }

    #[test]
    fn diurnal_envelope_modulates_capacity() {
        let p = DiurnalParams::evening_peak(3000.0);
        let t = diurnal_trace("d", &p, 1200, 5);
        // The diurnal generator shares `ar1_samples` (and the seed's RNG
        // stream) with the plain AR(1) generator, so dividing the two
        // recovers the envelope exactly: 1 − depth·(1 − cos(2πt/T))/2.
        let base = ar1_trace("b", &p.base, 1200, 5);
        for (i, (&v, &b)) in t.samples().iter().zip(base.samples()).enumerate() {
            if b == 0.0 {
                continue;
            }
            let frac = i as f64 / p.period_s;
            let load = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * frac).cos());
            let expected = 1.0 - p.depth * load;
            assert!(
                (v / b - expected).abs() < 1e-12,
                "sample {i}: ratio {} vs envelope {expected}",
                v / b
            );
        }
        // Mid-period load is peak load: capacity cut by the full depth.
        let mid = (p.period_s / 2.0) as usize;
        assert!((t.samples()[mid] / base.samples()[mid] - (1.0 - p.depth)).abs() < 1e-9);
        // Deterministic.
        assert_eq!(t.samples(), diurnal_trace("d", &p, 1200, 5).samples());
    }

    #[test]
    fn burst_trains_cluster_capacity_drops() {
        let base = fcc_like(3000.0, 1200, 3);
        let t = burst_train_trace("b", &BurstTrainParams::backbone(3000.0), 1200, 3);
        // Bursts strictly remove capacity, never add.
        assert!(t.mean_kbps() < base.mean_kbps());
        // And the removal is bursty: more relative variance than the base.
        let cv = t.std_kbps() / t.mean_kbps();
        let base_cv = base.std_kbps() / base.mean_kbps();
        assert!(cv > base_cv, "burst cv {cv} vs base cv {base_cv}");
        assert_eq!(
            t.samples(),
            burst_train_trace("b", &BurstTrainParams::backbone(3000.0), 1200, 3).samples()
        );
    }

    #[test]
    fn zero_burst_trains_leave_capacity_untouched() {
        // `bursts_per_train: (0, 0)` means every train start draws zero
        // bursts: the trace must equal the plain AR(1) base (the second
        // pass consumes RNG draws but modifies nothing).
        let params = BurstTrainParams {
            bursts_per_train: (0, 0),
            train_prob: 0.5,
            ..BurstTrainParams::backbone(2000.0)
        };
        let t = burst_train_trace("b0", &params, 600, 4);
        let base = ar1_trace("b", &params.base, 600, 4);
        assert_eq!(t.samples(), base.samples());
    }

    #[test]
    fn shared_cell_users_are_correlated_and_sum_to_capacity() {
        let params = SharedCellParams::hsdpa_cell(800.0, 4);
        let users = shared_cell_traces("cell", &params, 900, 9);
        assert_eq!(users.len(), 4);
        let n = users[0].samples().len();
        // Fair sharing: per-second user shares sum to the cell capacity,
        // so the summed mean is the cell mean (within fp error).
        let total_mean: f64 = users.iter().map(ThroughputTrace::mean_kbps).sum();
        let cell_mean = params.cell.mean_kbps;
        assert!(
            (total_mean - cell_mean).abs() / cell_mean < 0.6,
            "total {total_mean} vs cell {cell_mean}"
        );
        // Correlation: users share the cell fade structure. Pearson
        // correlation between two users must be clearly positive.
        let a = users[0].samples();
        let b = users[1].samples();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let (ma, mb) = (mean(a), mean(b));
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for t in 0..n {
            cov += (a[t] - ma) * (b[t] - mb);
            va += (a[t] - ma).powi(2);
            vb += (b[t] - mb).powi(2);
        }
        let r = cov / (va.sqrt() * vb.sqrt());
        assert!(r > 0.3, "user correlation {r}");
        // Determinism.
        let again = shared_cell_traces("cell", &params, 900, 9);
        for (x, y) in users.iter().zip(&again) {
            assert_eq!(x.samples(), y.samples());
            assert_eq!(x.name(), y.name());
        }
    }

    #[test]
    fn families_generate_admitted_deterministic_sets() {
        for family in TraceFamily::all() {
            let set = generate_family(&family, 8, 600, 77);
            assert_eq!(set.len(), 8, "{family:?}");
            for t in &set {
                assert!(
                    in_admission_band(t.mean_kbps()),
                    "{} mean {} outside the admission band",
                    t.name(),
                    t.mean_kbps()
                );
                assert!(t.samples().iter().any(|&v| v > 0.0));
            }
            let again = generate_family(&family, 8, 600, 77);
            for (a, b) in set.iter().zip(&again) {
                assert_eq!(a, b, "{family:?} must be deterministic in its seed");
            }
            let other = generate_family(&family, 8, 600, 78);
            assert!(
                set.iter()
                    .zip(&other)
                    .any(|(a, b)| a.samples() != b.samples()),
                "{family:?} must vary with the seed"
            );
        }
    }
}
