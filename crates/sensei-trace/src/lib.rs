//! Network throughput-trace substrate for the SENSEI reproduction.
//!
//! The SENSEI paper evaluates adaptive-bitrate (ABR) streaming over
//! throughput traces drawn from two public datasets: FCC fixed-broadband
//! measurements and 3G/HSDPA commute traces (Riiser et al.). Neither dataset
//! ships with this repository, so this crate provides seeded synthetic
//! generators calibrated to the same envelope the paper uses (mean throughput
//! between 0.2 and 6 Mbps), plus the trace algebra every experiment needs:
//!
//! * [`ThroughputTrace`] — a fixed-interval throughput series with
//!   piecewise-constant integration ([`ThroughputTrace::download_time`]),
//!   looping semantics, and summary statistics.
//! * [`generate`] — FCC-like and HSDPA/3G-like trace generators and the
//!   10-trace evaluation set used across the end-to-end experiments.
//! * Trace operators — bandwidth scaling ([`ThroughputTrace::scaled`]),
//!   zero-mean Gaussian perturbation for the Fig. 17 variance sweep
//!   ([`ThroughputTrace::with_gaussian_noise`]), and windowing.
//!
//! All randomness is seeded; identical seeds give identical traces.

// Time→sample-index conversion (floor of t/Δt against clamped
// cursors) is the trace substrate; sample counts stay far below
// 2^52, so f64 round-trips are exact.
#![allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]

pub mod cumulative;
pub mod generate;

pub use cumulative::CumulativeTrace;

use std::fmt;
use std::sync::Arc;

/// Errors produced when constructing or manipulating traces.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace has no samples.
    Empty,
    /// The sampling interval is not a positive finite number of seconds.
    NonPositiveInterval(f64),
    /// A throughput sample is negative, NaN, or infinite.
    InvalidSample {
        /// Index of the offending sample.
        index: usize,
        /// The offending value in kbps.
        value: f64,
    },
    /// Every sample is zero, so no data could ever be transferred.
    ZeroMean,
    /// A requested window lies outside the trace.
    WindowOutOfRange {
        /// Requested start sample.
        start: usize,
        /// Requested length in samples.
        len: usize,
        /// Number of samples actually available.
        available: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no samples"),
            TraceError::NonPositiveInterval(v) => {
                write!(f, "sample interval must be positive and finite, got {v}")
            }
            TraceError::InvalidSample { index, value } => {
                write!(f, "sample {index} is invalid: {value} kbps")
            }
            TraceError::ZeroMean => write!(f, "trace mean throughput is zero"),
            TraceError::WindowOutOfRange {
                start,
                len,
                available,
            } => write!(
                f,
                "window [{start}, {start}+{len}) out of range for {available} samples"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A throughput trace sampled at a fixed interval.
///
/// Semantically the trace is an infinitely repeating step function: sample
/// `i` holds on `[i·Δ, (i+1)·Δ)` and the series wraps around after the last
/// sample, matching how the ABR literature replays finite traces under
/// arbitrarily long videos.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputTrace {
    /// Interned so fleet-scale result records can share the name by
    /// reference-count bump instead of allocating a `String` per session.
    name: Arc<str>,
    interval_s: f64,
    kbps: Vec<f64>,
}

impl ThroughputTrace {
    /// Builds a trace from raw samples. The sample buffer is taken by value
    /// and reused as-is, so callers recycling buffers (see
    /// [`Self::into_samples`]) pay no copy.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample list is empty, the interval is not a
    /// positive finite number, any sample is negative or non-finite, or all
    /// samples are zero (such a trace could never transfer data).
    pub fn new(
        name: impl Into<Arc<str>>,
        interval_s: f64,
        kbps: Vec<f64>,
    ) -> Result<Self, TraceError> {
        if kbps.is_empty() {
            return Err(TraceError::Empty);
        }
        if !(interval_s.is_finite() && interval_s > 0.0) {
            return Err(TraceError::NonPositiveInterval(interval_s));
        }
        for (index, &value) in kbps.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSample { index, value });
            }
        }
        if kbps.iter().all(|&v| v == 0.0) {
            return Err(TraceError::ZeroMean);
        }
        Ok(Self {
            name: name.into(),
            interval_s,
            kbps,
        })
    }

    /// Builds a constant-rate trace, handy for tests and examples.
    ///
    /// # Errors
    ///
    /// Returns an error when `kbps` is not a positive finite value.
    pub fn constant(
        name: impl Into<Arc<str>>,
        kbps: f64,
        duration_s: f64,
    ) -> Result<Self, TraceError> {
        let samples = (duration_s.max(1.0)).ceil() as usize;
        Self::new(name, 1.0, vec![kbps; samples])
    }

    /// The trace's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A shared handle to the interned name — cloning the handle bumps a
    /// reference count instead of copying the string, which is what lets
    /// per-session result records carry trace names allocation-free.
    pub fn name_handle(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// Consumes the trace and returns its sample buffer so hot paths can
    /// recycle the allocation (pair with [`Self::new`], which takes the
    /// buffer by value).
    pub fn into_samples(self) -> Vec<f64> {
        self.kbps
    }

    /// Sampling interval in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// The raw samples in kbps.
    pub fn samples(&self) -> &[f64] {
        &self.kbps
    }

    /// Duration of one pass over the trace, in seconds.
    pub fn duration_s(&self) -> f64 {
        self.kbps.len() as f64 * self.interval_s
    }

    /// Mean throughput in kbps.
    pub fn mean_kbps(&self) -> f64 {
        self.kbps.iter().sum::<f64>() / self.kbps.len() as f64
    }

    /// Population standard deviation of throughput in kbps.
    pub fn std_kbps(&self) -> f64 {
        let mean = self.mean_kbps();
        let var = self
            .kbps
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.kbps.len() as f64;
        var.sqrt()
    }

    /// Minimum sample in kbps.
    pub fn min_kbps(&self) -> f64 {
        self.kbps.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample in kbps.
    pub fn max_kbps(&self) -> f64 {
        self.kbps.iter().cloned().fold(0.0, f64::max)
    }

    /// Instantaneous throughput at absolute time `t` (seconds), with the
    /// trace repeating after [`Self::duration_s`]. Negative times are clamped
    /// to zero.
    pub fn throughput_at(&self, t_s: f64) -> f64 {
        let t = t_s.max(0.0) % self.duration_s();
        let idx = (t / self.interval_s) as usize;
        // Floating-point division can land exactly on len at the wrap point.
        self.kbps[idx.min(self.kbps.len() - 1)]
    }

    /// Time (in seconds) needed to download `bits` starting at absolute time
    /// `start_s`, integrating the piecewise-constant throughput and wrapping
    /// around the trace end.
    ///
    /// Zero-throughput intervals (outages) simply consume wall-clock time.
    /// Because construction rejects all-zero traces, each full pass transfers
    /// a positive number of bits, so this always terminates.
    pub fn download_time(&self, start_s: f64, bits: f64) -> f64 {
        assert!(
            bits.is_finite() && bits >= 0.0,
            "download size must be a finite non-negative bit count, got {bits}"
        );
        if bits == 0.0 {
            return 0.0;
        }
        let duration = self.duration_s();
        let mut remaining = bits;
        let mut t = start_s.max(0.0) % duration;
        let mut elapsed = 0.0;
        loop {
            let idx = ((t / self.interval_s) as usize).min(self.kbps.len() - 1);
            let bucket_end = (idx as f64 + 1.0) * self.interval_s;
            let window = bucket_end - t;
            let rate_bps = self.kbps[idx] * 1000.0;
            let capacity = rate_bps * window;
            if capacity >= remaining && rate_bps > 0.0 {
                return elapsed + remaining / rate_bps;
            }
            remaining -= capacity;
            elapsed += window;
            t = bucket_end;
            if t >= duration {
                t = 0.0;
            }
        }
    }

    /// Mean throughput (kbps) observed over `[start_s, start_s + len_s)`,
    /// wrapping around the trace end.
    pub fn mean_over(&self, start_s: f64, len_s: f64) -> f64 {
        assert!(len_s > 0.0, "window length must be positive, got {len_s}");
        let mut total = 0.0;
        let mut covered = 0.0;
        let mut t = start_s.max(0.0);
        while covered + 1e-12 < len_s {
            let within = t % self.interval_s;
            let window = (self.interval_s - within).min(len_s - covered);
            total += self.throughput_at(t) * window;
            covered += window;
            t += window;
        }
        total / covered
    }

    /// Returns a copy with every sample multiplied by `factor`.
    ///
    /// The name goes through [`Self::perturbed_name`], so the identity
    /// scale (`factor == 1.0`) keeps the base name — byte-identical to
    /// what `perturbed_name`/`TraceCache` would intern for the same
    /// perturbation.
    ///
    /// # Errors
    ///
    /// Returns an error when `factor` is not a positive finite value.
    pub fn scaled(&self, factor: f64) -> Result<Self, TraceError> {
        self.perturbed_into(factor, 0.0, 0, self.perturbed_name(factor, 0.0), Vec::new())
    }

    /// Returns a copy rescaled so its mean equals `target_mean_kbps`.
    ///
    /// # Errors
    ///
    /// Returns an error when the target mean is not a positive finite value.
    pub fn rescaled_to_mean(&self, target_mean_kbps: f64) -> Result<Self, TraceError> {
        self.scaled(target_mean_kbps / self.mean_kbps())
    }

    /// Returns a copy perturbed by zero-mean Gaussian noise with standard
    /// deviation `std_kbps`, clamped at zero (throughput cannot be negative).
    ///
    /// This is the Fig. 17 operator: the paper increases a trace's throughput
    /// variance "by adding a Gaussian noise with zero mean".
    ///
    /// The name goes through [`Self::perturbed_name`], so zero-std noise
    /// keeps the base name — byte-identical to what
    /// `perturbed_name`/`TraceCache` would intern for the same
    /// perturbation.
    ///
    /// # Errors
    ///
    /// Returns an error when the resulting trace would be all-zero (only
    /// possible for extreme negative noise on tiny traces).
    pub fn with_gaussian_noise(&self, std_kbps: f64, seed: u64) -> Result<Self, TraceError> {
        self.perturbed_into(
            1.0,
            std_kbps,
            seed,
            self.perturbed_name(1.0, std_kbps),
            Vec::new(),
        )
    }

    /// The name of the scale-then-jitter perturbation of this trace —
    /// `{name}@x{scale:.2}` when scaled, `+n{std:.0}` appended when
    /// jittered, identity components skipped. This is the **single**
    /// naming path: [`Self::scaled`] and [`Self::with_gaussian_noise`]
    /// route through it, so the one-shot operators, `perturbed_into`
    /// callers, and the fleet's interned `TraceCache` names can never
    /// drift — an identity perturbation always keeps the base name
    /// byte-identical. Seed-independent, so caches can intern it once
    /// per (trace, perturbation) pair.
    pub fn perturbed_name(&self, scale: f64, jitter_std_kbps: f64) -> String {
        let mut name = self.name.to_string();
        if scale != 1.0 {
            name = format!("{name}@x{scale:.2}");
        }
        if jitter_std_kbps > 0.0 {
            name = format!("{name}+n{jitter_std_kbps:.0}");
        }
        name
    }

    /// Builds the scale-then-jitter perturbation of this trace, writing
    /// samples into the recycled `buf` (cleared first) and attaching the
    /// pre-interned `name` — the single sample path behind both one-shot
    /// perturbation (fleet's `TracePerturbation::apply`) and the
    /// per-worker trace caches, so the two can never drift. Equivalent to
    /// `scaled(scale)? .with_gaussian_noise(std, seed)?` with the identity
    /// steps skipped (multiplying by a scale of exactly 1.0 is bit-exact
    /// for the non-negative finite samples traces admit).
    ///
    /// # Errors
    ///
    /// The same errors as the chained operators: an invalid scale, or a
    /// perturbed trace that would be all-zero.
    pub fn perturbed_into(
        &self,
        scale: f64,
        jitter_std_kbps: f64,
        seed: u64,
        name: impl Into<Arc<str>>,
        mut buf: Vec<f64>,
    ) -> Result<Self, TraceError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(TraceError::InvalidSample {
                index: 0,
                value: scale,
            });
        }
        buf.clear();
        buf.extend(self.kbps.iter().map(|&v| v * scale));
        if jitter_std_kbps > 0.0 {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // One Box–Muller pair per two samples, both variates applied
            // in stream order (cosine first, sine second) — byte-identical
            // to driving a `GaussianSource` over the buffer one sample at
            // a time (regression-tested below), minus the per-call spare
            // branch that kept this pass from being one straight sweep
            // over the recycled buffer.
            let mut pairs = buf.chunks_exact_mut(2);
            for pair in &mut pairs {
                let (zc, zs) = gaussian_pair(&mut rng);
                pair[0] = (pair[0] + zc * jitter_std_kbps).max(0.0);
                pair[1] = (pair[1] + zs * jitter_std_kbps).max(0.0);
            }
            // Odd tail: draw a pair, apply the cosine variate, drop the
            // sine — exactly what the streaming source's final call does
            // (its cached spare would never be consumed).
            for v in pairs.into_remainder() {
                let (zc, _) = gaussian_pair(&mut rng);
                *v = (*v + zc * jitter_std_kbps).max(0.0);
            }
        }
        Self::new(name, self.interval_s, buf)
    }

    /// Extracts a contiguous window of samples as a new trace.
    ///
    /// # Errors
    ///
    /// Returns an error when the window exceeds the trace bounds or the
    /// extracted window is all-zero.
    pub fn window(&self, start: usize, len: usize) -> Result<Self, TraceError> {
        if len == 0 || start + len > self.kbps.len() {
            return Err(TraceError::WindowOutOfRange {
                start,
                len,
                available: self.kbps.len(),
            });
        }
        Self::new(
            format!("{}[{start}..{}]", self.name, start + len),
            self.interval_s,
            self.kbps[start..start + len].to_vec(),
        )
    }
}

/// Draws one standard-normal variate via Box–Muller. `rand` 0.8 ships no
/// normal distribution without `rand_distr`, and two uniforms per draw are
/// plenty here.
pub fn gaussian<R: rand::Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Both Box–Muller variates of one `(u1, u2)` pair, cosine variate first —
/// the exact per-pair draw a [`GaussianSource`] performs, factored out so
/// whole-buffer jitter passes can consume pairs directly without the
/// per-call spare branch. The pair order defines the stream:
/// `(pair.0, pair.1)` is what two consecutive `next_value` calls return.
pub fn gaussian_pair<R: rand::Rng>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Streaming standard-normal source that uses **both** Box–Muller variates
/// of each `(u1, u2)` pair, halving the transcendental cost per draw —
/// the noise generator for whole-trace perturbations, where the per-sample
/// cost dominates jittered fleet scenarios. The stream is a deterministic
/// function of the RNG seed (but a *different* stream than repeated
/// [`gaussian`] calls, which discard the sine variate).
pub struct GaussianSource<R> {
    rng: R,
    spare: Option<f64>,
}

impl<R: rand::Rng> GaussianSource<R> {
    /// Wraps an RNG.
    pub fn new(rng: R) -> Self {
        Self { rng, spare: None }
    }

    /// The next standard-normal variate.
    pub fn next_value(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let (zc, zs) = gaussian_pair(&mut self.rng);
        self.spare = Some(zs);
        zc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: &[f64]) -> ThroughputTrace {
        ThroughputTrace::new("t", 1.0, samples.to_vec()).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            ThroughputTrace::new("t", 1.0, vec![]).unwrap_err(),
            TraceError::Empty
        );
    }

    #[test]
    fn rejects_bad_interval() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ThroughputTrace::new("t", bad, vec![1.0]).unwrap_err(),
                TraceError::NonPositiveInterval(_)
            ));
        }
    }

    #[test]
    fn rejects_bad_samples() {
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ThroughputTrace::new("t", 1.0, vec![1.0, bad]).unwrap_err(),
                TraceError::InvalidSample { index: 1, .. }
            ));
        }
    }

    #[test]
    fn rejects_all_zero() {
        assert_eq!(
            ThroughputTrace::new("t", 1.0, vec![0.0, 0.0]).unwrap_err(),
            TraceError::ZeroMean
        );
    }

    #[test]
    fn stats_match_hand_computation() {
        let t = trace(&[1000.0, 3000.0]);
        assert_eq!(t.mean_kbps(), 2000.0);
        assert_eq!(t.std_kbps(), 1000.0);
        assert_eq!(t.min_kbps(), 1000.0);
        assert_eq!(t.max_kbps(), 3000.0);
        assert_eq!(t.duration_s(), 2.0);
    }

    #[test]
    fn throughput_at_wraps() {
        let t = trace(&[1000.0, 3000.0]);
        assert_eq!(t.throughput_at(0.5), 1000.0);
        assert_eq!(t.throughput_at(1.5), 3000.0);
        assert_eq!(t.throughput_at(2.5), 1000.0);
        assert_eq!(t.throughput_at(-1.0), 1000.0);
    }

    #[test]
    fn download_time_constant_rate() {
        let t = trace(&[1000.0; 10]); // 1 Mbps
                                      // 4 Mb at 1 Mbps takes 4 s.
        assert!((t.download_time(0.0, 4_000_000.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn download_time_spans_buckets_and_wraps() {
        let t = trace(&[1000.0, 2000.0]);
        // Start at 0.5 s: 0.5 s at 1 Mbps (0.5 Mb), 1 s at 2 Mbps (2 Mb),
        // then wrap: 1 s at 1 Mbps (1 Mb) -> total 3.5 Mb in 2.5 s, remaining
        // 0.5 Mb at 2 Mbps takes 0.25 s.
        let dt = t.download_time(0.5, 4_000_000.0);
        assert!((dt - 2.75).abs() < 1e-9, "dt = {dt}");
    }

    #[test]
    fn download_time_skips_outages() {
        let t = trace(&[0.0, 1000.0]);
        // 1 Mb starting in the outage second: 1 s waiting + 1 s transfer.
        let dt = t.download_time(0.0, 1_000_000.0);
        assert!((dt - 2.0).abs() < 1e-9, "dt = {dt}");
    }

    #[test]
    fn download_time_zero_bits_is_free() {
        let t = trace(&[500.0]);
        assert_eq!(t.download_time(3.0, 0.0), 0.0);
    }

    #[test]
    fn mean_over_window() {
        let t = trace(&[1000.0, 3000.0]);
        assert!((t.mean_over(0.0, 2.0) - 2000.0).abs() < 1e-9);
        assert!((t.mean_over(1.0, 1.0) - 3000.0).abs() < 1e-9);
        // Wrapping window.
        assert!((t.mean_over(1.0, 2.0) - 2000.0).abs() < 1e-9);
        // Fractional start.
        assert!((t.mean_over(0.5, 1.0) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_is_linear() {
        let t = trace(&[1000.0, 3000.0]);
        let s = t.scaled(0.5).unwrap();
        assert_eq!(s.samples(), &[500.0, 1500.0]);
        assert!(t.scaled(0.0).is_err());
        assert!(t.scaled(f64::NAN).is_err());
    }

    #[test]
    fn rescale_to_mean() {
        let t = trace(&[1000.0, 3000.0]);
        let s = t.rescaled_to_mean(1000.0).unwrap();
        assert!((s.mean_kbps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_noise_changes_variance_not_mean_much() {
        let t = ThroughputTrace::constant("c", 2000.0, 600.0).unwrap();
        let n = t.with_gaussian_noise(500.0, 7).unwrap();
        assert!(n.std_kbps() > 400.0, "std = {}", n.std_kbps());
        assert!(
            (n.mean_kbps() - 2000.0).abs() < 100.0,
            "mean = {}",
            n.mean_kbps()
        );
        // Determinism.
        let n2 = t.with_gaussian_noise(500.0, 7).unwrap();
        assert_eq!(n.samples(), n2.samples());
    }

    #[test]
    fn batched_jitter_reproduces_the_streaming_draw_order_bit_for_bit() {
        // The paired one-pass jitter sweep in `perturbed_into` must emit
        // exactly the stream a per-sample `GaussianSource` walk produced
        // before the batching — including the odd-length tail, where the
        // final pair's sine variate is drawn but never consumed.
        use rand::SeedableRng;
        for len in [1usize, 2, 3, 8, 599, 600] {
            let samples: Vec<f64> = (0..len).map(|i| 500.0 + 7.0 * i as f64).collect();
            let t = ThroughputTrace::new("ref", 1.0, samples.clone()).unwrap();
            for (scale, std, seed) in [(1.0, 300.0, 0u64), (0.75, 450.0, 41), (1.5, 120.0, 9)] {
                let fast = t
                    .perturbed_into(scale, std, seed, t.perturbed_name(scale, std), Vec::new())
                    .unwrap();
                let mut gauss = GaussianSource::new(rand::rngs::StdRng::seed_from_u64(seed));
                let slow: Vec<f64> = samples
                    .iter()
                    .map(|&v| (v * scale + gauss.next_value() * std).max(0.0))
                    .collect();
                assert_eq!(fast.samples().len(), slow.len());
                for (i, (&f, &s)) in fast.samples().iter().zip(&slow).enumerate() {
                    assert_eq!(
                        f.to_bits(),
                        s.to_bits(),
                        "sample {i} of {len} (scale {scale}, std {std}, seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn identity_perturbations_keep_the_base_name() {
        // Regression: `scaled(1.0)` / `with_gaussian_noise(0.0, _)` used
        // to emit `{name}@x1.00` / `{name}+n0` while `perturbed_name`
        // identity-skipped those components, so the one-shot operators
        // and the TraceCache-interned names disagreed. All naming now
        // routes through `perturbed_name`.
        let t = trace(&[1000.0, 3000.0]);
        let s = t.scaled(1.0).unwrap();
        assert_eq!(s.name(), t.name());
        assert_eq!(s.name(), t.perturbed_name(1.0, 0.0));
        assert_eq!(s.samples(), t.samples());
        let n = t.with_gaussian_noise(0.0, 123).unwrap();
        assert_eq!(n.name(), t.name());
        assert_eq!(n.name(), t.perturbed_name(1.0, 0.0));
        assert_eq!(n.samples(), t.samples());
    }

    #[test]
    fn one_shot_operator_names_match_perturbed_name() {
        // Non-identity components must agree with the helper too, for
        // every combination of the two operators.
        let t = trace(&[1000.0, 3000.0]);
        assert_eq!(t.scaled(0.5).unwrap().name(), t.perturbed_name(0.5, 0.0));
        assert_eq!(
            t.with_gaussian_noise(250.0, 7).unwrap().name(),
            t.perturbed_name(1.0, 250.0)
        );
        let chained = t
            .scaled(0.5)
            .unwrap()
            .with_gaussian_noise(250.0, 7)
            .unwrap();
        assert_eq!(chained.name(), t.perturbed_name(0.5, 250.0));
    }

    #[test]
    fn window_extracts_and_validates() {
        let t = trace(&[1.0, 2.0, 3.0, 4.0]);
        let w = t.window(1, 2).unwrap();
        assert_eq!(w.samples(), &[2.0, 3.0]);
        assert!(t.window(3, 2).is_err());
        assert!(t.window(0, 0).is_err());
    }

    #[test]
    fn constant_trace_helper() {
        let t = ThroughputTrace::constant("c", 1500.0, 10.0).unwrap();
        assert_eq!(t.samples().len(), 10);
        assert_eq!(t.mean_kbps(), 1500.0);
        assert!(ThroughputTrace::constant("c", 0.0, 10.0).is_err());
    }
}
