//! Fig. 18: (a) SENSEI's gains with either base ABR logic; (b) the
//! breakdown between the reweighted objective and the new actions.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{build_experiment, header, Table};
use sensei_core::experiment::{mean_qoe, qoe_gains_over, PolicyKind};

fn main() {
    header(
        "Fig. 18",
        "Understanding SENSEI's improvements",
        "(a) comparable gains on Fugu and Pensieve; (b) objective > actions",
    );
    let env = build_experiment(2021, true);
    let results = env
        .run_grid(&[
            PolicyKind::Bba,
            PolicyKind::Fugu,
            PolicyKind::Pensieve,
            PolicyKind::SenseiFugu,
            PolicyKind::SenseiFuguNoPause,
            PolicyKind::SenseiPensieve,
        ])
        .expect("grid runs");
    println!("\n(a) Gain over BBA, by base ABR logic:");
    let mut table = Table::new(&["Policy", "mean gain over BBA %"]);
    for policy in ["Fugu", "SENSEI", "Pensieve", "SENSEI-Pensieve"] {
        let gains = qoe_gains_over(&results, policy, "BBA");
        table.add(vec![
            policy.to_string(),
            format!("{:+.1}", sensei_ml::stats::mean(&gains)),
        ]);
    }
    table.print();
    println!("\n(b) SENSEI QoE breakdown (Fugu base):");
    let mut table = Table::new(&["Variant", "mean QoE", "gain over base %"]);
    let base = mean_qoe(&results, "Fugu");
    for (label, policy) in [
        ("base ABR w/ KSQI", "Fugu"),
        ("+ weighted objective", "SENSEI (bitrate only)"),
        ("full SENSEI (+ rebuffer action)", "SENSEI"),
    ] {
        let q = mean_qoe(&results, policy);
        table.add(vec![
            label.to_string(),
            format!("{q:.3}"),
            format!("{:+.1}", (q - base) / base * 100.0),
        ]);
    }
    table.print();
}
