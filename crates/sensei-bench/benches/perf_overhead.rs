//! §7.4 systems overhead: ABR decision latency and simulator throughput.
//! The paper reports SENSEI's runtime overhead at under 1% of player CPU;
//! here we measure decision cost directly: SENSEI-Fugu must stay within
//! the same order of magnitude as Fugu, and both far below the 4-second
//! chunk budget.
use criterion::{criterion_group, criterion_main, Criterion};
use sensei_abr::{Bba, Fugu, SenseiFugu};
use sensei_sim::{simulate, AbrPolicy, PlayerConfig, PlayerState, SessionContext};
use sensei_video::content::{Genre, SceneKind, SceneSpec};
use sensei_video::{BitrateLadder, EncodedVideo, SensitivityWeights, SourceVideo};

fn fixture() -> (SourceVideo, EncodedVideo, Vec<Vec<f64>>, SensitivityWeights) {
    let src = SourceVideo::from_script(
        "perf",
        Genre::Sports,
        &[
            SceneSpec::new(SceneKind::NormalPlay, 30),
            SceneSpec::new(SceneKind::KeyMoment, 10),
            SceneSpec::new(SceneKind::Scenic, 15),
        ],
        1,
    )
    .unwrap();
    let ladder = BitrateLadder::default_paper();
    let enc = EncodedVideo::encode(&src, &ladder, 2);
    let vq: Vec<Vec<f64>> = src
        .chunks()
        .iter()
        .map(|c| {
            ladder
                .levels()
                .iter()
                .map(|&b| sensei_video::visual_quality(b, c.complexity))
                .collect()
        })
        .collect();
    let weights = SensitivityWeights::ground_truth(&src);
    (src, enc, vq, weights)
}

fn state() -> PlayerState<'static> {
    PlayerState {
        next_chunk: 12,
        buffer_s: 12.0,
        last_level: Some(2),
        throughput_history_kbps: &[1800.0, 2100.0, 1500.0, 1900.0, 2500.0],
        download_time_history_s: &[2.0, 1.8, 2.4, 2.1, 1.6],
        elapsed_s: 60.0,
        playing: true,
    }
}

fn bench_decisions(c: &mut Criterion) {
    let (_, enc, vq, weights) = fixture();
    let state = state();
    let mut group = c.benchmark_group("abr_decision");
    group.bench_function("bba", |b| {
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: None,
            chunk_duration_s: 4.0,
        };
        let mut policy = Bba::paper_default();
        b.iter(|| policy.decide(&state, &ctx));
    });
    group.bench_function("fugu_mpc", |b| {
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: None,
            chunk_duration_s: 4.0,
        };
        let mut policy = Fugu::new();
        b.iter(|| policy.decide(&state, &ctx));
    });
    group.bench_function("sensei_fugu", |b| {
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: Some(&weights),
            chunk_duration_s: 4.0,
        };
        let mut policy = SenseiFugu::new();
        b.iter(|| policy.decide(&state, &ctx));
    });
    group.finish();
}

fn bench_session(c: &mut Criterion) {
    let (src, enc, _, weights) = fixture();
    let trace = sensei_trace::generate::fcc_like(2000.0, 600, 3);
    c.bench_function("full_session_sensei_fugu", |b| {
        b.iter(|| {
            let mut policy = SenseiFugu::new();
            simulate(
                &src,
                &enc,
                &trace,
                &mut policy,
                &PlayerConfig::default(),
                Some(&weights),
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_decisions, bench_session);
criterion_main!(benches);
