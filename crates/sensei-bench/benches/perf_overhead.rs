//! §7.4 systems overhead: ABR decision latency and simulator throughput.
//! The paper reports SENSEI's runtime overhead at under 1% of player CPU;
//! here we measure decision cost directly: SENSEI-Fugu must stay within
//! the same order of magnitude as Fugu, and both far below the 4-second
//! chunk budget.
//!
//! The same budget-discipline question applies to our own measurement
//! layer, so this bench also measures the fleet telemetry overhead:
//! a BBA-only scale-shaped fleet run with telemetry on vs. off
//! (interleaved repeats, best-of-N), printing the wall-clock delta
//! against the <2% acceptance target and asserting the aggregates stay
//! bit-identical either way. Timing on shared CI hardware is noisy, so
//! the target only hard-fails under `SENSEI_OVERHEAD_STRICT=1`.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use criterion::{criterion_group, Criterion};
use sensei_abr::{Bba, Fugu, SenseiFugu};
use sensei_sim::{simulate, AbrPolicy, PlayerConfig, PlayerState, SessionContext};
use sensei_video::content::{Genre, SceneKind, SceneSpec};
use sensei_video::{BitrateLadder, EncodedVideo, SensitivityWeights, SourceVideo};

fn fixture() -> (SourceVideo, EncodedVideo, Vec<Vec<f64>>, SensitivityWeights) {
    let src = SourceVideo::from_script(
        "perf",
        Genre::Sports,
        &[
            SceneSpec::new(SceneKind::NormalPlay, 30),
            SceneSpec::new(SceneKind::KeyMoment, 10),
            SceneSpec::new(SceneKind::Scenic, 15),
        ],
        1,
    )
    .unwrap();
    let ladder = BitrateLadder::default_paper();
    let enc = EncodedVideo::encode(&src, &ladder, 2);
    let vq: Vec<Vec<f64>> = src
        .chunks()
        .iter()
        .map(|c| {
            ladder
                .levels()
                .iter()
                .map(|&b| sensei_video::visual_quality(b, c.complexity))
                .collect()
        })
        .collect();
    let weights = SensitivityWeights::ground_truth(&src);
    (src, enc, vq, weights)
}

fn state() -> PlayerState<'static> {
    PlayerState {
        next_chunk: 12,
        buffer_s: 12.0,
        last_level: Some(2),
        throughput_history_kbps: &[1800.0, 2100.0, 1500.0, 1900.0, 2500.0],
        download_time_history_s: &[2.0, 1.8, 2.4, 2.1, 1.6],
        elapsed_s: 60.0,
        playing: true,
    }
}

fn bench_decisions(c: &mut Criterion) {
    let (_, enc, vq, weights) = fixture();
    let state = state();
    let mut group = c.benchmark_group("abr_decision");
    group.bench_function("bba", |b| {
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: None,
            chunk_duration_s: 4.0,
        };
        let mut policy = Bba::paper_default();
        b.iter(|| policy.decide(&state, &ctx));
    });
    group.bench_function("fugu_mpc", |b| {
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: None,
            chunk_duration_s: 4.0,
        };
        let mut policy = Fugu::new();
        b.iter(|| policy.decide(&state, &ctx));
    });
    group.bench_function("sensei_fugu", |b| {
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: Some(&weights),
            chunk_duration_s: 4.0,
        };
        let mut policy = SenseiFugu::new();
        b.iter(|| policy.decide(&state, &ctx));
    });
    group.finish();
}

fn bench_session(c: &mut Criterion) {
    let (src, enc, _, weights) = fixture();
    let trace = sensei_trace::generate::fcc_like(2000.0, 600, 3);
    c.bench_function("full_session_sensei_fugu", |b| {
        b.iter(|| {
            let mut policy = SenseiFugu::new();
            simulate(
                &src,
                &enc,
                &trace,
                &mut policy,
                &PlayerConfig::default(),
                Some(&weights),
            )
            .unwrap()
        })
    });
}

/// Telemetry overhead on the throughput-critical path: the fleet's
/// cheap-policy scale shape, where per-session work is smallest and any
/// fixed recording cost looms largest.
fn fleet_overhead() {
    use sensei_core::{Experiment, ExperimentConfig, PolicyKind};
    use sensei_fleet::{Fleet, FleetConfig, ScenarioMatrix, TracePerturbation};
    use std::time::Instant;

    let env = Experiment::build(&ExperimentConfig::quick(2026)).unwrap();
    let matrix = ScenarioMatrix::builder()
        .policies([PolicyKind::Bba])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation::jittered(200.0),
        ])
        .master_seed(0x0BEE)
        .build()
        .unwrap();
    let time_run = |telemetry: bool| {
        let fleet =
            Fleet::new(&env, &matrix, FleetConfig::new(2).with_telemetry(telemetry)).unwrap();
        let started = Instant::now();
        let report = fleet.run().unwrap();
        (started.elapsed().as_secs_f64(), report)
    };
    // Interleaved best-of-N: alternating on/off runs share whatever
    // thermal and cache state the machine is in, and the minimum is the
    // least-noise estimate of each mode's true cost.
    const REPEATS: usize = 5;
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    let (mut stats_off, mut stats_on) = (None, None);
    for _ in 0..REPEATS {
        let (wall, report) = time_run(false);
        best_off = best_off.min(wall);
        stats_off.get_or_insert(report.stats);
        let (wall, report) = time_run(true);
        best_on = best_on.min(wall);
        stats_on.get_or_insert(report.telemetry.map(|t| (t.summary(), report.stats)));
    }
    // The hard contract first: recording must not move one result bit.
    let (summary, stats_on) = stats_on
        .flatten()
        .expect("telemetry run produced a snapshot");
    assert_eq!(
        stats_off.expect("plain run produced stats"),
        stats_on,
        "telemetry changed the fleet aggregates"
    );
    let delta = (best_on - best_off) / best_off;
    println!("\n== fleet telemetry overhead (BBA scale shape, best of {REPEATS}) ==");
    println!("telemetry off: {:.4} s", best_off);
    println!("telemetry on:  {:.4} s", best_on);
    println!("delta: {:+.2}% (target < 2%)", delta * 100.0);
    print!("{summary}");
    let strict = std::env::var("SENSEI_OVERHEAD_STRICT").is_ok_and(|v| !v.is_empty() && v != "0");
    if delta >= 0.02 {
        let msg = format!(
            "telemetry overhead {:.2}% exceeds the 2% target",
            delta * 100.0
        );
        assert!(!strict, "{msg}");
        println!("WARN: {msg} (non-strict run; set SENSEI_OVERHEAD_STRICT=1 to fail)");
    }
}

criterion_group!(benches, bench_decisions, bench_session);

fn main() {
    benches();
    fleet_overhead();
}
