//! Fig. 3: CDF of the max-min QoE gap when one incident is placed at every
//! position of every video (whole video + 12-second windows).
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{full_mode, header, Table, QUICK_VIDEOS};
use sensei_crowd::series::{max_min_gap_pct, oracle_series_qoe, windowed_gap_pct, IncidentKind};
use sensei_video::{corpus, BitrateLadder};

fn main() {
    header(
        "Fig. 3",
        "Distribution of max-min QoE gaps across video series",
        "21 of 48 series gap > 40.1%; similar trend in 12-s windows",
    );
    let ladder = BitrateLadder::default_paper();
    let mut whole = Vec::new();
    let mut windowed = Vec::new();
    let mut over40 = 0usize;
    let mut total = 0usize;
    for entry in corpus::table1(2021) {
        if !full_mode() && !QUICK_VIDEOS.contains(&entry.video.name()) {
            continue;
        }
        for kind in IncidentKind::ALL {
            let qoe = oracle_series_qoe(&entry.video, &ladder, kind).expect("series evaluates");
            let gap = max_min_gap_pct(&qoe);
            whole.push(gap);
            windowed.push(windowed_gap_pct(&qoe, 3)); // 12 s = 3 chunks
            total += 1;
            if gap > 40.1 {
                over40 += 1;
            }
        }
    }
    let mut table = Table::new(&["Percentile", "Whole-video gap %", "12-s window gap %"]);
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
        table.add(vec![
            format!("p{p:.0}"),
            format!("{:.1}", sensei_ml::stats::percentile(&whole, p).unwrap()),
            format!("{:.1}", sensei_ml::stats::percentile(&windowed, p).unwrap()),
        ]);
    }
    table.print();
    println!("\n  measured: {over40}/{total} series exceed a 40.1% gap (paper: 21/48)");
}
