//! Fig. 12a: CDF of per-(video, trace) QoE gains over BBA for SENSEI,
//! Pensieve, and Fugu.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{build_experiment, header, Table};
use sensei_core::experiment::{qoe_gains_over, PolicyKind};

fn main() {
    header(
        "Fig. 12a",
        "Distribution of QoE gains over BBA",
        "SENSEI median +14.4%; Pensieve/Fugu median ~+5.7%",
    );
    let env = build_experiment(2021, true);
    let results = env
        .run_grid(&[
            PolicyKind::Bba,
            PolicyKind::Fugu,
            PolicyKind::Pensieve,
            PolicyKind::SenseiFugu,
        ])
        .expect("grid runs");
    let mut table = Table::new(&["Percentile", "SENSEI %", "Pensieve %", "Fugu %"]);
    let sensei = qoe_gains_over(&results, "SENSEI", "BBA");
    let pensieve = qoe_gains_over(&results, "Pensieve", "BBA");
    let fugu = qoe_gains_over(&results, "Fugu", "BBA");
    for p in [20.0, 40.0, 50.0, 60.0, 80.0] {
        table.add(vec![
            format!("p{p:.0}"),
            format!("{:+.1}", sensei_ml::stats::percentile(&sensei, p).unwrap()),
            format!(
                "{:+.1}",
                sensei_ml::stats::percentile(&pensieve, p).unwrap()
            ),
            format!("{:+.1}", sensei_ml::stats::percentile(&fugu, p).unwrap()),
        ]);
    }
    table.print();
    println!(
        "\n  measured medians: SENSEI {:+.1}%, Pensieve {:+.1}%, Fugu {:+.1}%",
        sensei_ml::stats::percentile(&sensei, 50.0).unwrap(),
        sensei_ml::stats::percentile(&pensieve, 50.0).unwrap(),
        sensei_ml::stats::percentile(&fugu, 50.0).unwrap()
    );
}
