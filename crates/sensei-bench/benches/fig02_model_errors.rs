//! Fig. 2: relative QoE-prediction error (x) vs discordant ABR pairs (y)
//! for KSQI, P.1203, LSTM-QoE and SENSEI's model.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{build_experiment, header, labeled_render_set, Table};
use sensei_core::experiment::PolicyKind;
use sensei_qoe::eval::{discordant_pair_fraction, RankingCell};
use sensei_qoe::{Ksqi, LstmQoe, P1203Like, QoeModel, SenseiQoe};

fn main() {
    header(
        "Fig. 2",
        "QoE model error vs discordant ABR-ranking pairs",
        "baselines >10.4% error / >10.2% discordant; SENSEI far lower",
    );
    let data = labeled_render_set(11, 24);
    let split = data.len() * 3 / 4;
    let (train, test) = data.split_at(split);
    let train_r: Vec<_> = train.iter().map(|(_, r, _)| r.clone()).collect();
    let train_y: Vec<f64> = train.iter().map(|(_, _, y)| *y).collect();
    let test_r: Vec<_> = test.iter().map(|(_, r, _)| r.clone()).collect();
    let test_y: Vec<f64> = test.iter().map(|(_, _, y)| *y).collect();

    let ksqi = Ksqi::fit(&train_r, &train_y).expect("ksqi fits");
    let p1203 = P1203Like::fit(&train_r, &train_y, 5).expect("p1203 fits");
    let lstm = LstmQoe::fit(&train_r, &train_y, &Default::default(), 5).expect("lstm fits");
    let env = build_experiment(2021, false);
    let sensei_for = |video: &str| -> Option<SenseiQoe> {
        env.assets
            .iter()
            .find(|a| &*a.name == video)
            .map(|a| SenseiQoe::new(ksqi.clone(), a.weights.clone()))
    };

    type Scorer<'a> = Box<dyn Fn(&sensei_video::RenderedVideo) -> f64 + 'a>;
    let models: Vec<(&str, Scorer)> = vec![
        ("KSQI", Box::new(|r| ksqi.predict(r).unwrap())),
        ("P.1203", Box::new(|r| p1203.predict(r).unwrap())),
        ("LSTM-QoE", Box::new(|r| lstm.predict(r).unwrap())),
        (
            "SENSEI",
            Box::new(|r| match sensei_for(r.source_name()) {
                Some(m) => m.predict(r).unwrap(),
                None => ksqi.predict(r).unwrap(),
            }),
        ),
    ];

    let mut table = Table::new(&["Model", "rel. error %", "discordant pairs %"]);
    for (name, predict) in &models {
        let preds: Vec<f64> = test_r.iter().map(predict).collect();
        let rel = sensei_ml::stats::mean_relative_error(&preds, &test_y).unwrap();
        // Rank BBA/Fugu/SENSEI-Fugu per (video, trace): does the model agree
        // with the true-QoE ordering?
        let mut cells: Vec<RankingCell> = Vec::new();
        for asset in &env.assets {
            for trace in &env.traces {
                let mut truth = Vec::new();
                let mut predicted = Vec::new();
                for kind in [PolicyKind::Bba, PolicyKind::Fugu, PolicyKind::SenseiFugu] {
                    let mut policy = env.policy(kind, trace).unwrap();
                    let weights = kind.uses_weights().then_some(&asset.weights);
                    let result = sensei_sim::simulate(
                        &asset.source,
                        &asset.encoded,
                        trace,
                        policy.as_mut(),
                        &env.player,
                        weights,
                    )
                    .unwrap();
                    truth.push(env.oracle.qoe01(&asset.source, &result.render).unwrap());
                    predicted.push(predict(&result.render));
                }
                cells.push(RankingCell { truth, predicted });
            }
        }
        let disc = discordant_pair_fraction(&cells).unwrap_or(0.0);
        table.add(vec![
            name.to_string(),
            format!("{:.1}", rel * 100.0),
            format!("{:.1}", disc * 100.0),
        ]);
    }
    table.print();
}
