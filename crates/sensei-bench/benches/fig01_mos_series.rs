//! Fig. 1: MOS of Soccer1 renderings with a 1-second rebuffering event at
//! different positions. The paper reports QoE 0.76 (normal gameplay) down
//! to 0.42 (shoot & goal) on its 25-second excerpt.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{header, Table};
use sensei_crowd::series::{crowd_series_mos, IncidentKind};
use sensei_video::{corpus, BitrateLadder, SceneKind};

fn main() {
    header(
        "Fig. 1",
        "Dynamic quality sensitivity of Soccer1 (1-s rebuffer at each chunk)",
        "max-vs-min MOS gap > 40%; worst position = shoot & goal",
    );
    let entry = corpus::by_name("Soccer1", 2021).expect("Soccer1 exists");
    let ladder = BitrateLadder::default_paper();
    let mos = crowd_series_mos(&entry.video, &ladder, IncidentKind::Rebuffer1s, 30, 7)
        .expect("campaign completes");
    let mut table = Table::new(&["Chunk", "t (s)", "Scene", "MOS (0-1)", "MOS (1-5)"]);
    for (k, &m) in mos.iter().enumerate() {
        let scene = match entry.video.chunks()[k].scene {
            SceneKind::KeyMoment => "shoot & goal",
            SceneKind::Replay => "celebrate & replay",
            SceneKind::Informational => "scoreboard",
            SceneKind::AdBreak => "ad break",
            SceneKind::Scenic => "scenic",
            SceneKind::NormalPlay => "normal gameplay",
        };
        table.add(vec![
            k.to_string(),
            format!("{:.0}", k as f64 * 4.0),
            scene.to_string(),
            format!("{m:.3}"),
            format!("{:.2}", 1.0 + 4.0 * m),
        ]);
    }
    table.print();
    let max = mos.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = mos.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = mos
        .iter()
        .position(|&m| m == min)
        .expect("series non-empty");
    println!(
        "\n  measured: max-min gap = {:.1}% (paper: >40%)",
        (max - min) / min * 100.0
    );
    println!(
        "  measured: worst position = chunk {worst} ({:?}) — paper: the goal",
        entry.video.chunks()[worst].scene
    );
}
