//! Table 1: the 16-video test set (name, genre, length, source dataset).
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{header, Table};

fn main() {
    header(
        "Table 1",
        "Summary of the test video set",
        "16 videos across Sports/Gaming/Nature/Animation, 1:24-9:56",
    );
    let mut table = Table::new(&[
        "Name",
        "Genre",
        "Length",
        "Source dataset",
        "Chunks",
        "w-spread",
    ]);
    for entry in sensei_video::corpus::table1(2021) {
        let weights = sensei_video::SensitivityWeights::ground_truth(&entry.video);
        table.add(vec![
            entry.video.name().to_string(),
            entry.video.genre().label().to_string(),
            entry.length_label(),
            entry.source_dataset.to_string(),
            entry.video.num_chunks().to_string(),
            format!("{:.2}", weights.spread()),
        ]);
    }
    table.print();
}
