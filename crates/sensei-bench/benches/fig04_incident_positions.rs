//! Fig. 4: QoE vs incident position for 1-s rebuffer, 4-s rebuffer, and a
//! bitrate drop — same variability pattern under all three.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{header, Table};
use sensei_crowd::series::{oracle_series_qoe, IncidentKind};
use sensei_video::{corpus, BitrateLadder};

fn main() {
    header(
        "Fig. 4",
        "QoE variability per incident position (Soccer1)",
        "absolute QoE depends on the incident; the pattern does not",
    );
    let entry = corpus::by_name("Soccer1", 2021).expect("Soccer1 exists");
    let ladder = BitrateLadder::default_paper();
    let series: Vec<(IncidentKind, Vec<f64>)> = IncidentKind::ALL
        .iter()
        .map(|&k| {
            (
                k,
                oracle_series_qoe(&entry.video, &ladder, k).expect("series"),
            )
        })
        .collect();
    let mut table = Table::new(&["Chunk", "1-s rebuf", "4-s rebuf", "bitrate drop"]);
    for k in 0..entry.video.num_chunks() {
        table.add(vec![
            k.to_string(),
            format!("{:.3}", series[0].1[k]),
            format!("{:.3}", series[1].1[k]),
            format!("{:.3}", series[2].1[k]),
        ]);
    }
    table.print();
    for (kind, qoe) in &series {
        let min = qoe.iter().cloned().fold(f64::INFINITY, f64::min);
        let argmin = qoe.iter().position(|&q| q == min).unwrap();
        println!("  {}: worst at chunk {argmin}", kind.label());
    }
}
