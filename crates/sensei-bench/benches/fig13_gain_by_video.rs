//! Fig. 13: QoE gain over BBA per video, grouped by genre.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{build_experiment, header, Table};
use sensei_core::experiment::{qoe_gains_over, PolicyKind};

fn main() {
    header(
        "Fig. 13",
        "QoE gains over BBA per source video (grouped by genre)",
        "gains vary within genres; sensitivity is not genre-determined",
    );
    let env = build_experiment(2021, true);
    let results = env
        .run_grid(&[
            PolicyKind::Bba,
            PolicyKind::Fugu,
            PolicyKind::Pensieve,
            PolicyKind::SenseiFugu,
        ])
        .expect("grid runs");
    let mut table = Table::new(&["Video", "Genre", "SENSEI %", "Pensieve %", "Fugu %"]);
    let mut assets: Vec<_> = env.assets.iter().collect();
    assets.sort_by_key(|a| a.genre);
    for asset in assets {
        let per_video = |policy: &str| {
            let gains: Vec<f64> = qoe_gains_over(
                &results
                    .iter()
                    .filter(|r| r.video == asset.name)
                    .cloned()
                    .collect::<Vec<_>>(),
                policy,
                "BBA",
            );
            sensei_ml::stats::mean(&gains)
        };
        table.add(vec![
            asset.name.to_string(),
            asset.genre.to_string(),
            format!("{:+.1}", per_video("SENSEI")),
            format!("{:+.1}", per_video("Pensieve")),
            format!("{:+.1}", per_video("Fugu")),
        ]);
    }
    table.print();
}
