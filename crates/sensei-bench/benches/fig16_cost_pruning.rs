//! Fig. 16: QoE-model accuracy vs crowdsourcing cost across the four
//! scheduler parameters (B, F, M, alpha).
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{header, Table};
use sensei_crowd::{ProfilerConfig, RaterPool, WeightProfiler};
use sensei_qoe::{Ksqi, QoeModel, SenseiQoe};
use sensei_video::{corpus, BitrateLadder, Incident, RenderedVideo, SensitivityWeights};

/// PLCC of a SENSEI model built from `weights` on a probe test set.
fn accuracy(video: &sensei_video::SourceVideo, weights: &SensitivityWeights) -> f64 {
    let ladder = BitrateLadder::default_paper();
    let oracle = sensei_crowd::TrueQoe::default();
    let model = SenseiQoe::new(Ksqi::canonical(), weights.clone());
    let mut preds = Vec::new();
    let mut truths = Vec::new();
    for chunk in 0..video.num_chunks() {
        for (secs, level) in [(2.0, None), (0.0, Some(0usize))] {
            let incident = match level {
                Some(l) => Incident::BitrateDrop {
                    chunk,
                    len_chunks: 1,
                    level: l,
                },
                None => Incident::Rebuffer {
                    chunk,
                    duration_s: secs,
                },
            };
            let render = RenderedVideo::with_incidents(video, &ladder, &[incident]).unwrap();
            preds.push(model.predict(&render).unwrap());
            truths.push(oracle.qoe01(video, &render).unwrap());
        }
    }
    sensei_ml::stats::pearson(&preds, &truths).unwrap_or(0.0)
}

fn run(video: &sensei_video::SourceVideo, config: ProfilerConfig) -> (f64, f64) {
    let profiler = WeightProfiler::new(RaterPool::masters(5), config);
    let profile = profiler
        .profile(video, &BitrateLadder::default_paper(), 9)
        .expect("profiling completes");
    (
        profile.cost_per_minute_usd(video),
        accuracy(video, &profile.weights),
    )
}

fn main() {
    header(
        "Fig. 16",
        "QoE model accuracy vs crowdsourcing cost (B, F, M, alpha sweeps)",
        "each parameter can be cut to its sweet spot with <3% accuracy loss",
    );
    let video = corpus::by_name("Soccer1", 2021).unwrap().video;
    let mut table = Table::new(&["Sweep", "Value", "$ / min", "PLCC"]);
    for b in [1usize, 2, 4] {
        let cfg = ProfilerConfig {
            bitrate_levels: b,
            ..ProfilerConfig::default()
        };
        let (cost, plcc) = run(&video, cfg);
        table.add(vec![
            "B (bitrate levels)".into(),
            b.to_string(),
            format!("{cost:.1}"),
            format!("{plcc:.3}"),
        ]);
    }
    for f in [1usize, 2, 4] {
        let cfg = ProfilerConfig {
            rebuffer_levels: f,
            ..ProfilerConfig::default()
        };
        let (cost, plcc) = run(&video, cfg);
        table.add(vec![
            "F (rebuffer levels)".into(),
            f.to_string(),
            format!("{cost:.1}"),
            format!("{plcc:.3}"),
        ]);
    }
    for m in [5usize, 10, 20, 30] {
        // Campaigns need at least min_ratings survivors per render.
        let cfg = ProfilerConfig {
            m1: m,
            m2: (m / 2).max(3),
            ..ProfilerConfig::default()
        };
        let (cost, plcc) = run(&video, cfg);
        table.add(vec![
            "M (raters/video)".into(),
            m.to_string(),
            format!("{cost:.1}"),
            format!("{plcc:.3}"),
        ]);
    }
    for alpha in [0.0, 0.06, 0.2, 0.5] {
        let cfg = ProfilerConfig {
            alpha,
            ..ProfilerConfig::default()
        };
        let (cost, plcc) = run(&video, cfg);
        table.add(vec![
            "alpha (threshold)".into(),
            format!("{alpha:.2}"),
            format!("{cost:.1}"),
            format!("{plcc:.3}"),
        ]);
    }
    table.print();
}
