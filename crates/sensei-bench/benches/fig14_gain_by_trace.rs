//! Fig. 14: QoE gain over BBA per throughput trace, ordered by mean
//! throughput — SENSEI helps most when the network is under stress.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{build_experiment, header, Table};
use sensei_core::experiment::{qoe_gains_over, PolicyKind};

fn main() {
    header(
        "Fig. 14",
        "QoE gains over BBA per trace (increasing mean throughput)",
        "larger SENSEI gains at lower average throughput",
    );
    let env = build_experiment(2021, true);
    let results = env
        .run_grid(&[
            PolicyKind::Bba,
            PolicyKind::Fugu,
            PolicyKind::Pensieve,
            PolicyKind::SenseiFugu,
        ])
        .expect("grid runs");
    let mut table = Table::new(&["Trace", "Mean kbps", "SENSEI %", "Pensieve %", "Fugu %"]);
    for trace in &env.traces {
        let per_trace = |policy: &str| {
            let subset: Vec<_> = results
                .iter()
                .filter(|r| &*r.trace == trace.name())
                .cloned()
                .collect();
            sensei_ml::stats::mean(&qoe_gains_over(&subset, policy, "BBA"))
        };
        table.add(vec![
            trace.name().to_string(),
            format!("{:.0}", trace.mean_kbps()),
            format!("{:+.1}", per_trace("SENSEI")),
            format!("{:+.1}", per_trace("Pensieve")),
            format!("{:+.1}", per_trace("Fugu")),
        ]);
    }
    table.print();
}
