//! Fig. 20 (Appendix D): CV highlight detectors vs user-study sensitivity
//! on Lava, Tank, Animal, and Soccer2.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{header, Table};
use sensei_crowd::cv_baselines::CvModel;
use sensei_ml::stats::spearman;
use sensei_video::{corpus, SensitivityWeights};

fn main() {
    header(
        "Fig. 20",
        "Quality-sensitivity estimation by CV models",
        "AMVM/DSN/Video2GIF do not correlate with true sensitivity",
    );
    let mut table = Table::new(&["Video", "AMVM SRCC", "DSN SRCC", "Video2GIF SRCC"]);
    for name in ["Lava", "Tank", "Animal", "Soccer2"] {
        let entry = corpus::by_name(name, 2021).expect("table-1 video");
        let truth = SensitivityWeights::ground_truth(&entry.video);
        let mut cells = vec![name.to_string()];
        for model in CvModel::ALL {
            let scores = model.predict(&entry.video);
            let srcc = spearman(&scores, truth.as_slice()).unwrap_or(0.0);
            cells.push(format!("{srcc:+.2}"));
        }
        table.add(cells);
    }
    table.print();
    println!("\n  paper: trends not aligned with the user study (low/negative correlation)");
}
