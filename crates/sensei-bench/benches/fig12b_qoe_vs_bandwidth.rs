//! Fig. 12b: QoE vs normalized bandwidth usage — SENSEI reaches a target
//! QoE with less bandwidth than Pensieve/Fugu/BBA.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{build_experiment, header, Table};
use sensei_core::experiment::PolicyKind;

fn main() {
    header(
        "Fig. 12b",
        "QoE vs bandwidth (one trace scaled down)",
        "~27.9% bandwidth savings vs Pensieve/Fugu, 32.1% vs BBA @ QoE 0.8",
    );
    let env = build_experiment(2021, true);
    let base = env.traces[7].clone();
    let kinds = [
        PolicyKind::SenseiFugu,
        PolicyKind::Pensieve,
        PolicyKind::Fugu,
        PolicyKind::Bba,
    ];
    let mut table = Table::new(&["Scale", "SENSEI", "Pensieve", "Fugu", "BBA"]);
    for scale in [0.2, 0.35, 0.5, 0.65, 0.8, 1.0] {
        let trace = base.scaled(scale).expect("positive scale");
        let mut cells = vec![format!("{scale:.2}")];
        for kind in kinds {
            let mut total = 0.0;
            for asset in &env.assets {
                total += env.run_session(asset, &trace, kind).unwrap().qoe01;
            }
            cells.push(format!("{:.3}", total / env.assets.len() as f64));
        }
        table.add(cells);
    }
    table.print();
    println!("\n  read horizontally: the scale at which each policy reaches a target QoE");
}
