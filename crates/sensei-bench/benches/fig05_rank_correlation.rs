//! Fig. 5: Spearman rank correlation of QoE series between incident types,
//! per source video — quality sensitivity is inherent to content.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{full_mode, header, Table, QUICK_VIDEOS};
use sensei_crowd::series::{oracle_series_qoe, IncidentKind};
use sensei_ml::stats::spearman;
use sensei_video::{corpus, BitrateLadder};

fn main() {
    header(
        "Fig. 5",
        "QoE rank correlation between quality incidents",
        "strong rank correlation for both comparisons (most videos > 0.6)",
    );
    let ladder = BitrateLadder::default_paper();
    let mut table = Table::new(&[
        "Video",
        "1s-vs-4s rebuf SRCC",
        "1s rebuf vs bitrate-drop SRCC",
    ]);
    let mut all_a = Vec::new();
    let mut all_b = Vec::new();
    for entry in corpus::table1(2021) {
        if !full_mode() && !QUICK_VIDEOS.contains(&entry.video.name()) {
            continue;
        }
        let one = oracle_series_qoe(&entry.video, &ladder, IncidentKind::Rebuffer1s).unwrap();
        let four = oracle_series_qoe(&entry.video, &ladder, IncidentKind::Rebuffer4s).unwrap();
        let drop = oracle_series_qoe(&entry.video, &ladder, IncidentKind::BitrateDrop4s).unwrap();
        let a = spearman(&one, &four).unwrap_or(0.0);
        let b = spearman(&one, &drop).unwrap_or(0.0);
        all_a.push(a);
        all_b.push(b);
        table.add(vec![
            entry.video.name().to_string(),
            format!("{a:.2}"),
            format!("{b:.2}"),
        ]);
    }
    table.print();
    println!(
        "\n  measured means: {:.2} and {:.2} (paper: strong positive correlation)",
        sensei_ml::stats::mean(&all_a),
        sensei_ml::stats::mean(&all_b)
    );
}
