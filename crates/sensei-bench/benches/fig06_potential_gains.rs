//! Fig. 6: potential gains — idealistic sensitivity-aware vs -unaware ABR.
//!
//! The paper's §2.4 experiment is an *offline bitrate-to-chunk assignment*:
//! both algorithms see the entire throughput trace, "throughput is not
//! affected by bitrate selections", and each maximizes its QoE model
//! subject to the trace's total capacity over the playback duration. We
//! solve that directly with a Lagrangian relaxation: for a price λ on
//! bits, each chunk independently picks argmax(weighted quality − λ·size);
//! λ is bisected until the assignment meets the capacity budget. The
//! unaware variant optimizes the same objective with uniform weights.

// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{full_mode, header, Table, QUICK_VIDEOS};
use sensei_crowd::TrueQoe;
use sensei_video::{
    corpus, BitrateLadder, EncodedVideo, RenderedChunk, RenderedVideo, SensitivityWeights,
};

/// Max-weighted-quality assignment under a total-bits budget.
fn assign(
    encoded: &EncodedVideo,
    vq: &[Vec<f64>],
    weights: &[f64],
    budget_bits: f64,
) -> Vec<usize> {
    let n = encoded.num_chunks();
    let pick = |lambda: f64| -> (Vec<usize>, f64) {
        let mut levels = Vec::with_capacity(n);
        let mut bits = 0.0;
        for c in 0..n {
            let mut best = 0;
            let mut best_v = f64::NEG_INFINITY;
            for (l, &q) in vq[c].iter().enumerate().take(encoded.ladder().len()) {
                let size = encoded.size_bits(c, l).expect("in range");
                let v = weights[c] * q - lambda * size;
                if v > best_v {
                    best_v = v;
                    best = l;
                }
            }
            bits += encoded.size_bits(c, best).expect("in range");
            levels.push(best);
        }
        (levels, bits)
    };
    // Bisect the bit price until the budget binds.
    let (mut lo, mut hi) = (0.0_f64, 1e-5_f64);
    if pick(lo).1 <= budget_bits {
        return pick(lo).0; // even the top assignment fits
    }
    while pick(hi).1 > budget_bits {
        hi *= 2.0;
    }
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if pick(mid).1 > budget_bits {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    pick(hi).0
}

fn main() {
    header(
        "Fig. 6",
        "Potential QoE gains of dynamic-sensitivity awareness (offline assignment)",
        "22-52% higher QoE at equal bandwidth; 39-49% bandwidth savings",
    );
    let ladder = BitrateLadder::default_paper();
    let oracle = TrueQoe::default();
    let base_trace = sensei_trace::generate::evaluation_set(2021 ^ 0x7AACE)[6].clone();
    let names: Vec<&str> = if full_mode() {
        vec![]
    } else {
        QUICK_VIDEOS.to_vec()
    };
    let mut table = Table::new(&["Scale", "Mean kbps", "Aware QoE", "Unaware QoE", "Gain %"]);
    for scale in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let trace = base_trace.scaled(scale).expect("positive scale");
        let mut aware_total = 0.0;
        let mut unaware_total = 0.0;
        let mut count = 0usize;
        for entry in corpus::table1(2021) {
            if !names.is_empty() && !names.contains(&entry.video.name()) {
                continue;
            }
            let src = &entry.video;
            let encoded = EncodedVideo::encode(src, &ladder, 5);
            let vq: Vec<Vec<f64>> = src
                .chunks()
                .iter()
                .map(|c| {
                    ladder
                        .levels()
                        .iter()
                        .map(|&b| sensei_video::visual_quality(b, c.complexity))
                        .collect()
                })
                .collect();
            // Capacity budget: what the trace can deliver over playback.
            let budget = trace.mean_over(0.0, src.duration_s()) * 1000.0 * src.duration_s();
            let truth = SensitivityWeights::ground_truth(src);
            let uniform = vec![1.0; src.num_chunks()];
            for (weights, total) in [
                (truth.as_slice(), &mut aware_total),
                (uniform.as_slice(), &mut unaware_total),
            ] {
                let levels = assign(&encoded, &vq, weights, budget);
                let chunks: Vec<RenderedChunk> = levels
                    .iter()
                    .enumerate()
                    .map(|(c, &l)| RenderedChunk {
                        bitrate_kbps: ladder.levels()[l],
                        vq: vq[c][l],
                        rebuffer_s: 0.0,
                        intentional_rebuffer_s: 0.0,
                        motion: src.chunks()[c].motion,
                        complexity: src.chunks()[c].complexity,
                    })
                    .collect();
                let render =
                    RenderedVideo::new(src.name(), src.chunk_duration_s(), 0.0, chunks).unwrap();
                *total += oracle.qoe01(src, &render).unwrap();
            }
            count += 1;
        }
        let n = count as f64;
        table.add(vec![
            format!("{scale:.1}"),
            format!("{:.0}", trace.mean_kbps()),
            format!("{:.3}", aware_total / n),
            format!("{:.3}", unaware_total / n),
            format!(
                "{:+.1}",
                (aware_total - unaware_total) / unaware_total * 100.0
            ),
        ]);
    }
    table.print();
}
