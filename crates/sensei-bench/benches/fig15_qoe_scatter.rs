//! Fig. 15: QoE prediction accuracy (PLCC/SRCC) of SENSEI's model vs
//! KSQI, LSTM-QoE, and P.1203.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{build_experiment, header, labeled_render_set, Table};
use sensei_qoe::eval::evaluate_model;
use sensei_qoe::{Ksqi, LstmQoe, P1203Like, QoeModel, SenseiQoe};
use sensei_video::RenderedVideo;

/// SENSEI wrapper that looks up the right per-video weights per render.
struct PerVideoSensei {
    models: Vec<(std::sync::Arc<str>, SenseiQoe)>,
    fallback: Ksqi,
}

impl QoeModel for PerVideoSensei {
    fn name(&self) -> &str {
        "SENSEI"
    }
    fn predict(&self, render: &RenderedVideo) -> Result<f64, sensei_qoe::QoeError> {
        match self
            .models
            .iter()
            .find(|(name, _)| name.as_ref() == render.source_name())
        {
            Some((_, m)) => m.predict(render),
            None => self.fallback.predict(render),
        }
    }
}

fn main() {
    header(
        "Fig. 15",
        "QoE prediction accuracy (PLCC / SRCC)",
        "SENSEI PLCC 0.85 / SRCC 0.84; KSQI 0.76/0.73; LSTM 0.60/0.63; P.1203 0.62/0.67",
    );
    let data = labeled_render_set(15, 40);
    let split = data.len() * 5 / 8; // 400/640 as in §7.3
    let (train, test) = data.split_at(split);
    let train_r: Vec<_> = train.iter().map(|(_, r, _)| r.clone()).collect();
    let train_y: Vec<f64> = train.iter().map(|(_, _, y)| *y).collect();
    let test_r: Vec<_> = test.iter().map(|(_, r, _)| r.clone()).collect();
    let test_y: Vec<f64> = test.iter().map(|(_, _, y)| *y).collect();

    let ksqi = Ksqi::fit(&train_r, &train_y).expect("ksqi fits");
    let p1203 = P1203Like::fit(&train_r, &train_y, 15).expect("p1203 fits");
    let lstm = LstmQoe::fit(&train_r, &train_y, &Default::default(), 15).expect("lstm fits");
    let env = build_experiment(2021, false);
    let sensei = PerVideoSensei {
        models: env
            .assets
            .iter()
            .map(|a| {
                (
                    a.name.clone(),
                    SenseiQoe::new(ksqi.clone(), a.weights.clone()),
                )
            })
            .collect(),
        fallback: ksqi.clone(),
    };

    let mut table = Table::new(&["Model", "PLCC", "SRCC", "paper PLCC", "paper SRCC"]);
    let paper = [
        ("SENSEI", 0.85, 0.84),
        ("KSQI", 0.76, 0.73),
        ("LSTM-QoE", 0.60, 0.63),
        ("P.1203", 0.62, 0.67),
    ];
    let models: Vec<(&str, &dyn QoeModel)> = vec![
        ("SENSEI", &sensei),
        ("KSQI", &ksqi),
        ("LSTM-QoE", &lstm),
        ("P.1203", &p1203),
    ];
    for ((name, model), (_, p_plcc, p_srcc)) in models.iter().zip(paper.iter()) {
        let acc = evaluate_model(*model, &test_r, &test_y).expect("evaluation succeeds");
        table.add(vec![
            name.to_string(),
            format!("{:.2}", acc.plcc),
            format!("{:.2}", acc.srcc),
            format!("{p_plcc:.2}"),
            format!("{p_srcc:.2}"),
        ]);
    }
    table.print();
}
