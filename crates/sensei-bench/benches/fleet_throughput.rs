//! Fleet throughput: the perf baseline for the sharded simulation engine.
//!
//! Two runs:
//!
//! 1. **Scale** — ≥10,000 BBA sessions across a perturbed scenario space
//!    (bandwidth scaling × Gaussian jitter × player variants), reporting
//!    sessions/sec. This is the number future PRs must beat.
//! 2. **Mixed line-up** — a smaller run with the MPC policies so the
//!    streaming gain-CDF path is exercised and reported too.
//!
//! Both runs use streaming `O(bins)` aggregation — no per-session results
//! are retained, so the same harness scales to millions of sessions.
use sensei_bench::header;
use sensei_core::experiment::{Experiment, ExperimentConfig, PolicyKind};
use sensei_fleet::{Fleet, FleetConfig, ScenarioMatrix, TracePerturbation};
use sensei_sim::PlayerConfig;

fn main() {
    header(
        "Fleet",
        "sharded fleet-simulation throughput (sessions/sec)",
        "n/a — beyond the paper: the ROADMAP's million-session scale axis",
    );
    let t0 = std::time::Instant::now();
    let env = Experiment::build(&ExperimentConfig::quick(2021)).expect("environment builds");
    println!(
        "[setup] {} videos, {} traces ({:.1}s)",
        env.assets.len(),
        env.traces.len(),
        t0.elapsed().as_secs_f64()
    );
    let workers = FleetConfig::default().workers;

    // --- Run 1: ≥10k sessions, cheap policy, wide scenario space. ------
    let mut perturbations = Vec::new();
    for i in 0..13 {
        let scale = 0.5 + 0.1 * f64::from(i); // 0.5x .. 1.7x bandwidth
        for jitter in [0.0, 100.0, 200.0, 400.0, 800.0] {
            perturbations.push(TracePerturbation {
                scale,
                jitter_std_kbps: jitter,
            });
        }
    }
    let players: Vec<PlayerConfig> = [8.0, 16.0, 24.0]
        .into_iter()
        .flat_map(|max_buffer_s| {
            [0.03, 0.15].into_iter().map(move |rtt_s| PlayerConfig {
                max_buffer_s,
                rtt_s,
                ..PlayerConfig::default()
            })
        })
        .collect();
    let matrix = ScenarioMatrix::builder()
        .policies([PolicyKind::Bba])
        .perturbations(perturbations)
        .players(players)
        .master_seed(2021)
        .build()
        .expect("valid matrix");
    let fleet = Fleet::new(&env, &matrix, FleetConfig::new(workers)).expect("valid fleet");
    let total = fleet.num_scenarios();
    assert!(
        total >= 10_000,
        "scale run must cover >= 10k sessions, got {total}"
    );
    println!("[scale] {total} sessions on {workers} workers...");
    let report = fleet.run().expect("fleet run completes");
    print!("{}", report.summary());
    println!(
        "measured: {:.0} sessions/sec ({} sessions in {:.1}s)",
        report.sessions_per_sec, report.stats.sessions, report.wall_time_s
    );

    // --- Run 2: mixed policy line-up, gain CDF vs BBA. -----------------
    let matrix = ScenarioMatrix::builder()
        .policies([PolicyKind::Bba, PolicyKind::Fugu, PolicyKind::SenseiFugu])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation::jittered(300.0),
        ])
        .master_seed(2021)
        .build()
        .expect("valid matrix");
    let fleet = Fleet::new(&env, &matrix, FleetConfig::new(workers)).expect("valid fleet");
    println!(
        "[mixed] {} sessions on {workers} workers...",
        fleet.num_scenarios()
    );
    let report = fleet.run().expect("fleet run completes");
    print!("{}", report.summary());
    println!(
        "measured: {:.0} sessions/sec with the MPC line-up",
        report.sessions_per_sec
    );
}
