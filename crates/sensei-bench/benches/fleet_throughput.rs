//! Fleet throughput: the perf baseline for the sharded simulation engine.
//!
//! Five runs:
//!
//! 1. **Scale** — ≥10,000 BBA sessions across a perturbed scenario space
//!    (bandwidth scaling × Gaussian jitter × player variants), reporting
//!    sessions/sec. This is the number future PRs must beat. A
//!    **worker sweep** then reruns the same shape at 1/2/4/8 workers
//!    (aggregates asserted bit-identical) so the speedup curve of the
//!    merge-based collector is tracked per date, not just claimed.
//! 2. **Mixed line-up** — a mid-sized run with the MPC policies so the
//!    streaming gain-CDF path is exercised and reported too.
//! 3. **MPC** — the planner-bound run: every MPC-family policy (Fugu,
//!    SENSEI-Fugu and its ablation, both oracles) plus the DAS-IP index
//!    policy, no BBA padding — this is the trajectory that tracks the
//!    MPC throughput cliff per date.
//! 4. **Procedural** — the generated-corpus scale run (session runtime,
//!    not planning).
//!
//! Both runs use streaming `O(bins)` aggregation — no per-session results
//! are retained, so the same harness scales to millions of sessions.
//!
//! Besides the human-readable stdout, the bench maintains
//! `BENCH_fleet.json` at the workspace root so the perf trajectory can be
//! tracked across PRs machine-readably: every run is **appended** to a
//! single `trajectory` array (keyed by run name + ISO date + quick flag),
//! so a re-run records history instead of overwriting it. The latest
//! measurements are simply the newest entries per name — there is no
//! separate `runs` array (the legacy one is migrated on read and never
//! written back; CI rejects its reintroduction).
//!
//! `SENSEI_FLEET_QUICK=1` bounds the scenario space to a few hundred
//! sessions (and skips the ≥10k assertion) — the CI smoke mode that keeps
//! this binary from rotting without turning CI into a benchmark farm.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::header;
use sensei_core::experiment::{Experiment, ExperimentConfig, PolicyKind};
use sensei_fleet::json::{obj, parse, Json};
use sensei_fleet::{
    Fleet, FleetConfig, FleetReport, ScenarioFamilies, ScenarioMatrix, TracePerturbation,
};
use sensei_sim::PlayerConfig;

fn quick_mode() -> bool {
    std::env::var("SENSEI_FLEET_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Today's civil date as `YYYY-MM-DD` (UTC), via Howard Hinnant's
/// days-to-civil algorithm — the workspace is offline, so no chrono.
fn iso_date_today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// One measurement entry for the appended `trajectory`. Runs with
/// telemetry on carry a phase/planner breakdown so the trajectory
/// records not just *how fast* but *where the time went* — note no
/// nested `date` keys (CI counts them to check trajectory growth).
fn run_json(name: &str, date: &str, quick: bool, report: &FleetReport) -> Json {
    let mut fields = vec![
        ("name", Json::Str(name.to_string())),
        ("date", Json::Str(date.to_string())),
        ("quick", Json::Bool(quick)),
        ("sessions", Json::Num(report.stats.sessions as f64)),
        ("workers", Json::Num(report.workers as f64)),
        ("wall_time_s", Json::Num(report.wall_time_s)),
        ("sessions_per_sec", Json::Num(report.sessions_per_sec)),
        (
            "phases",
            obj([
                ("setup_s", Json::Num(report.phases.setup_s)),
                ("execute_s", Json::Num(report.phases.execute_s)),
                ("collect_s", Json::Num(report.phases.collect_s)),
            ]),
        ),
    ];
    if let Some(t) = &report.telemetry {
        use sensei_fleet::telemetry::Phase;
        fields.push((
            "profile",
            obj([
                ("shard_fold_s", Json::Num(t.phase_secs(Phase::ShardFold))),
                ("final_merge_s", Json::Num(t.phase_secs(Phase::FinalMerge))),
                (
                    "network_materialize_s",
                    Json::Num(t.phase_secs(Phase::NetworkMaterialize)),
                ),
                (
                    "lane_simulate_s",
                    Json::Num(t.phase_secs(Phase::LaneSimulate)),
                ),
                ("score_s", Json::Num(t.phase_secs(Phase::Score))),
                (
                    "plan_nodes",
                    Json::Num(t.counter(sensei_fleet::telemetry::Counter::PlanNodes) as f64),
                ),
                ("prune_rate", Json::Num(t.prune_rate())),
                ("memo_hit_rate", Json::Num(t.memo_hit_rate())),
                (
                    "warm_start_hits",
                    Json::Num(t.counter(sensei_fleet::telemetry::Counter::WarmStartHits) as f64),
                ),
                (
                    "seeded_prunes",
                    Json::Num(t.counter(sensei_fleet::telemetry::Counter::SeededPrunes) as f64),
                ),
            ]),
        ));
    }
    obj(fields)
}

/// Prior trajectory entries from an existing `BENCH_fleet.json`: the
/// `trajectory` array when present, else the legacy `runs` array (tagged
/// `pre-trajectory` since those files carried no dates). A missing file
/// yields an empty history; an **unparsable** file is backed up to
/// `{path}.bak` before this run overwrites it — the bench must never
/// refuse to measure because an old artifact is stale, but it must not
/// silently destroy the committed cross-PR history either (a truncated
/// write or merge-conflict markers stay recoverable).
fn prior_trajectory(path: &str) -> Vec<Json> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            let backup = format!("{path}.bak");
            match std::fs::write(&backup, &text) {
                Ok(()) => eprintln!(
                    "[json] {path} is unparsable ({e}); preserved the old contents at {backup}"
                ),
                Err(io) => eprintln!(
                    "[json] {path} is unparsable ({e}) and backing it up failed ({io}); \
                     its history will be lost"
                ),
            }
            return Vec::new();
        }
    };
    if let Some(entries) = doc.get("trajectory").and_then(Json::as_arr) {
        return entries.to_vec();
    }
    let quick = doc.get("quick").and_then(|q| match q {
        Json::Bool(b) => Some(*b),
        _ => None,
    });
    doc.get("runs")
        .and_then(Json::as_arr)
        .map(|runs| {
            runs.iter()
                .map(|r| {
                    obj([
                        (
                            "name",
                            Json::Str(
                                r.get("name")
                                    .and_then(Json::as_str)
                                    .unwrap_or("unknown")
                                    .to_string(),
                            ),
                        ),
                        ("date", Json::Str("pre-trajectory".to_string())),
                        ("quick", Json::Bool(quick.unwrap_or(false))),
                        (
                            "sessions",
                            r.get("sessions").cloned().unwrap_or(Json::Num(0.0)),
                        ),
                        (
                            "workers",
                            r.get("workers").cloned().unwrap_or(Json::Num(0.0)),
                        ),
                        (
                            "wall_time_s",
                            r.get("wall_time_s").cloned().unwrap_or(Json::Num(0.0)),
                        ),
                        (
                            "sessions_per_sec",
                            r.get("sessions_per_sec").cloned().unwrap_or(Json::Num(0.0)),
                        ),
                    ])
                })
                .collect()
        })
        .unwrap_or_default()
}

fn main() {
    header(
        "Fleet",
        "sharded fleet-simulation throughput (sessions/sec)",
        "n/a — beyond the paper: the ROADMAP's million-session scale axis",
    );
    let quick = quick_mode();
    let t0 = std::time::Instant::now();
    let env = Experiment::build(&ExperimentConfig::quick(2021)).expect("environment builds");
    println!(
        "[setup] {} videos, {} traces ({:.1}s){}",
        env.assets.len(),
        env.traces.len(),
        t0.elapsed().as_secs_f64(),
        if quick { " [quick mode]" } else { "" }
    );
    let workers = FleetConfig::default().workers;

    // --- Run 1: ≥10k sessions, cheap policy, wide scenario space. ------
    // Quick mode trims the perturbation grid to a smoke-sized matrix.
    let (scales, jitters): (Vec<f64>, &[f64]) = if quick {
        (
            (0..2).map(|i| 0.8 + 0.4 * f64::from(i)).collect(),
            &[0.0, 200.0],
        )
    } else {
        (
            (0..13).map(|i| 0.5 + 0.1 * f64::from(i)).collect(), // 0.5x .. 1.7x
            &[0.0, 100.0, 200.0, 400.0, 800.0],
        )
    };
    let mut perturbations = Vec::new();
    for &scale in &scales {
        for &jitter in jitters {
            perturbations.push(TracePerturbation {
                scale,
                jitter_std_kbps: jitter,
            });
        }
    }
    let players: Vec<PlayerConfig> = [8.0, 16.0, 24.0]
        .into_iter()
        .flat_map(|max_buffer_s| {
            [0.03, 0.15].into_iter().map(move |rtt_s| PlayerConfig {
                max_buffer_s,
                rtt_s,
                ..PlayerConfig::default()
            })
        })
        .collect();
    let players = if quick {
        players[..2].to_vec()
    } else {
        players
    };
    let matrix = ScenarioMatrix::builder()
        .policies([PolicyKind::Bba])
        .perturbations(perturbations)
        .players(players)
        .master_seed(2021)
        .build()
        .expect("valid matrix");
    let fleet = Fleet::new(
        &env,
        &matrix,
        FleetConfig::new(workers).with_telemetry(true),
    )
    .expect("valid fleet");
    let total = fleet.num_scenarios();
    assert!(
        quick || total >= 10_000,
        "scale run must cover >= 10k sessions, got {total}"
    );
    println!("[scale] {total} sessions on {workers} workers...");
    let scale_report = fleet.run().expect("fleet run completes");
    print!("{}", scale_report.summary());
    println!(
        "measured: {:.0} sessions/sec ({} sessions in {:.1}s)",
        scale_report.sessions_per_sec, scale_report.stats.sessions, scale_report.wall_time_s
    );

    // --- Run 1b: worker-scaling sweep on the scale shape. --------------
    // The merge-based collector's reason to exist: with per-cell sends
    // gone, adding workers must not grow collection time (`collect_s` is
    // `workers` fixed-shape merges, independent of session count). Each
    // count reruns the scale matrix (telemetry off — raw throughput),
    // asserts the aggregates are bit-identical to the run above, and the
    // sweep lands in the trajectory as one `scale_workers` entry so the
    // speedup curve is tracked per date, not just claimed.
    let mut worker_sweep = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let fleet = Fleet::new(&env, &matrix, FleetConfig::new(n)).expect("valid fleet");
        let report = fleet.run().expect("fleet run completes");
        assert!(
            report.stats == scale_report.stats,
            "aggregates must be bit-identical at {n} workers"
        );
        println!(
            "[scale-workers] {n} workers: {:.0} sessions/sec \
             (wall {:.2}s, collect {:.4}s)",
            report.sessions_per_sec, report.wall_time_s, report.phases.collect_s
        );
        worker_sweep.push(obj([
            ("workers", Json::Num(n as f64)),
            ("sessions_per_sec", Json::Num(report.sessions_per_sec)),
            ("wall_time_s", Json::Num(report.wall_time_s)),
            ("collect_s", Json::Num(report.phases.collect_s)),
        ]));
    }

    // --- Run 2: mixed policy line-up, gain CDF vs BBA. -----------------
    // Kept policy-comparable with the pre-batched-planner baseline (BBA +
    // Fugu + SENSEI-Fugu) but widened across perturbations × players so
    // the measurement is no longer a ~1-second blip: sessions/sec
    // normalizes the count, so the trajectory stays comparable.
    let mixed_perturbations = if quick {
        vec![TracePerturbation::identity()]
    } else {
        vec![
            TracePerturbation::identity(),
            TracePerturbation::jittered(300.0),
            TracePerturbation::scaled(0.85),
        ]
    };
    let mixed_policies = if quick {
        vec![PolicyKind::Bba, PolicyKind::SenseiFugu]
    } else {
        vec![PolicyKind::Bba, PolicyKind::Fugu, PolicyKind::SenseiFugu]
    };
    let mixed_players = if quick {
        vec![PlayerConfig::default()]
    } else {
        vec![
            PlayerConfig::default(),
            PlayerConfig {
                max_buffer_s: 16.0,
                ..PlayerConfig::default()
            },
        ]
    };
    let matrix = ScenarioMatrix::builder()
        .policies(mixed_policies)
        .perturbations(mixed_perturbations)
        .players(mixed_players)
        .master_seed(2021)
        .build()
        .expect("valid matrix");
    let fleet = Fleet::new(
        &env,
        &matrix,
        FleetConfig::new(workers).with_telemetry(true),
    )
    .expect("valid fleet");
    println!(
        "[mixed] {} sessions on {workers} workers...",
        fleet.num_scenarios()
    );
    let mixed_report = fleet.run().expect("fleet run completes");
    print!("{}", mixed_report.summary());
    println!(
        "measured: {:.0} sessions/sec with the MPC line-up",
        mixed_report.sessions_per_sec
    );

    // --- Run 3: the MPC-family run proper. -----------------------------
    // No BBA padding: every session is planner-bound (horizon MPC) or
    // index-bound (DAS-IP), so sessions/sec here IS the MPC throughput
    // the tile-level memoization + batched planning attack. Tracked in
    // the trajectory under its own `mpc` name per date.
    let mpc_policies = if quick {
        vec![
            PolicyKind::Fugu,
            PolicyKind::SenseiFugu,
            PolicyKind::OracleUnaware,
            PolicyKind::DasIp,
        ]
    } else {
        vec![
            PolicyKind::Fugu,
            PolicyKind::SenseiFugu,
            PolicyKind::SenseiFuguNoPause,
            PolicyKind::OracleAware,
            PolicyKind::OracleUnaware,
            PolicyKind::DasIp,
        ]
    };
    let mpc_perturbations = if quick {
        vec![TracePerturbation::identity()]
    } else {
        vec![
            TracePerturbation::identity(),
            TracePerturbation::jittered(300.0),
        ]
    };
    let mpc_players = if quick {
        vec![PlayerConfig::default()]
    } else {
        vec![
            PlayerConfig::default(),
            PlayerConfig {
                max_buffer_s: 16.0,
                ..PlayerConfig::default()
            },
        ]
    };
    let matrix = ScenarioMatrix::builder()
        .policies(mpc_policies)
        .perturbations(mpc_perturbations)
        .players(mpc_players)
        .master_seed(2021)
        .build()
        .expect("valid matrix");
    let fleet = Fleet::new(
        &env,
        &matrix,
        FleetConfig::new(workers).with_telemetry(true),
    )
    .expect("valid fleet");
    println!(
        "[mpc] {} sessions on {workers} workers...",
        fleet.num_scenarios()
    );
    let mpc_report = fleet.run().expect("fleet run completes");
    print!("{}", mpc_report.summary());
    println!(
        "measured: {:.0} sessions/sec on the pure MPC/index line-up \
         (BBA:MPC throughput ratio {:.0}:1)",
        mpc_report.sessions_per_sec,
        scale_report.sessions_per_sec / mpc_report.sessions_per_sec.max(1e-9)
    );

    // --- Run 4: procedural-corpus scale run. ---------------------------
    // The scenario-family axis: a generated corpus (not Table 1) crossed
    // with three generated trace families, all BBA so the number measures
    // the session runtime, not MPC planning. Videos average the same
    // chunk count as the quick Table-1 trio, so sessions/sec is directly
    // comparable with the scale run above.
    let families = if quick {
        ScenarioFamilies::builder()
            .videos(12)
            .traces_per_family(2)
            .trace_duration_s(400)
            .seed(2021)
            .build()
    } else {
        ScenarioFamilies::builder()
            .videos(150)
            .traces_per_family(4)
            .trace_duration_s(600)
            .seed(2021)
            .build()
    }
    .expect("valid family spec");
    let matrix = families
        .matrix_builder()
        .policies([PolicyKind::Bba])
        .perturbations(if quick {
            vec![TracePerturbation::identity()]
        } else {
            vec![
                TracePerturbation::identity(),
                TracePerturbation::scaled(0.85),
            ]
        })
        .players(if quick {
            vec![PlayerConfig::default()]
        } else {
            vec![
                PlayerConfig::default(),
                PlayerConfig {
                    max_buffer_s: 8.0,
                    ..PlayerConfig::default()
                },
            ]
        })
        .build()
        .expect("valid matrix");
    let mut proc_config = ExperimentConfig::quick(2021);
    proc_config.videos = None;
    let (corpus_size, trace_count) = (families.corpus.len(), families.traces.len());
    let proc_env = families
        .into_experiment(&proc_config)
        .expect("families onboard");
    let fleet = Fleet::new(
        &proc_env,
        &matrix,
        FleetConfig::new(workers).with_telemetry(true),
    )
    .expect("valid fleet");
    println!(
        "[procedural] {} sessions ({corpus_size} videos x {trace_count} family traces) on {workers} workers...",
        fleet.num_scenarios()
    );
    let proc_report = fleet.run().expect("fleet run completes");
    print!("{}", proc_report.summary());
    println!(
        "measured: {:.0} sessions/sec on the procedural corpus ({:.2}x the scale run)",
        proc_report.sessions_per_sec,
        proc_report.sessions_per_sec / scale_report.sessions_per_sec.max(1e-9)
    );

    // --- Machine-readable perf trajectory. -----------------------------
    // Anchor the artifact at the workspace root regardless of the CWD
    // cargo hands the bench binary (package dir under `cargo bench`).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    let date = iso_date_today();
    let latest = [
        ("scale", &scale_report),
        ("mixed", &mixed_report),
        ("mpc", &mpc_report),
        ("procedural", &proc_report),
    ];
    // History entries are keyed by (name, date, quick): a same-day
    // re-run *replaces* its key (local iteration stays idempotent)
    // while distinct days append — which is what preserves the
    // cross-PR trajectory across re-measurements.
    let mut entries: Vec<Json> = latest
        .iter()
        .map(|(name, report)| run_json(name, &date, quick, report))
        .collect();
    // The worker sweep is one entry (same (name, date, quick) keying);
    // its per-count measurements nest under `worker_sweep` with no
    // nested `date` keys, so CI's trajectory-growth count stays exact.
    entries.push(obj([
        ("name", Json::Str("scale_workers".to_string())),
        ("date", Json::Str(date.clone())),
        ("quick", Json::Bool(quick)),
        ("sessions", Json::Num(scale_report.stats.sessions as f64)),
        ("worker_sweep", Json::Arr(worker_sweep)),
    ]));
    let key = |e: &Json| {
        (
            e.get("name").and_then(Json::as_str).map(str::to_string),
            e.get("date").and_then(Json::as_str).map(str::to_string),
            matches!(e.get("quick"), Some(Json::Bool(true))),
        )
    };
    let mut trajectory = prior_trajectory(path);
    trajectory.retain(|old| !entries.iter().any(|new| key(new) == key(old)));
    trajectory.extend(entries);
    let doc = obj([
        ("bench", Json::Str("fleet_throughput".to_string())),
        ("quick", Json::Bool(quick)),
        ("trajectory", Json::Arr(trajectory)),
    ]);
    match std::fs::write(path, doc.to_pretty() + "\n") {
        Ok(()) => println!("[json] wrote {path} ({date})"),
        Err(e) => eprintln!("[json] could not write {path}: {e}"),
    }
}
