//! Fig. 12c: crowdsourcing cost per minute vs resulting QoE, with and
//! without the two-step cost pruning.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{header, Table};
use sensei_core::experiment::PolicyKind;
use sensei_core::experiment::WeightSource;
use sensei_core::{Experiment, ExperimentConfig};
use sensei_crowd::WeightProfiler;
use sensei_video::BitrateLadder;

fn main() {
    header(
        "Fig. 12c",
        "Crowdsourcing cost vs QoE (pruned vs exhaustive)",
        "pruning cuts costs 96.7% with only 3.1% QoE degradation; ~$31/min",
    );
    // A compact grid: 4 videos, ground-truth env for ABR evaluation.
    let cfg = ExperimentConfig {
        seed: 2021,
        videos: Some(
            ["Soccer1", "FPS2", "Space", "Lava"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        weight_source: WeightSource::GroundTruth,
        train_rl: false,
        rl_episodes: 0,
        ..ExperimentConfig::default()
    };
    let env = Experiment::build(&cfg).expect("environment builds");
    let ladder = BitrateLadder::default_paper();
    let profiler = WeightProfiler::paper_default(7);
    let mut table = Table::new(&[
        "Scheduler",
        "$ / min video",
        "mean QoE (SENSEI ABR)",
        "renders",
    ]);
    for (label, exhaustive) in [("two-step (pruned)", false), ("exhaustive", true)] {
        let mut cost_per_min = 0.0;
        let mut qoe_total = 0.0;
        let mut renders = 0usize;
        let mut sessions = 0usize;
        for asset in &env.assets {
            let profile = if exhaustive {
                profiler
                    .profile_exhaustive(&asset.source, &ladder, 13)
                    .expect("profiling completes")
            } else {
                profiler
                    .profile(&asset.source, &ladder, 13)
                    .expect("profiling completes")
            };
            cost_per_min += profile.cost_per_minute_usd(&asset.source);
            renders += profile.renders_rated;
            // Evaluate SENSEI-Fugu with THESE weights on three traces.
            let mut patched = asset.clone();
            patched.weights = profile.weights.clone();
            for trace in env.traces.iter().skip(2).take(3) {
                qoe_total += env
                    .run_session(&patched, trace, PolicyKind::SenseiFugu)
                    .unwrap()
                    .qoe01;
                sessions += 1;
            }
        }
        table.add(vec![
            label.to_string(),
            format!("{:.1}", cost_per_min / env.assets.len() as f64),
            format!("{:.3}", qoe_total / sessions as f64),
            renders.to_string(),
        ]);
    }
    // Baseline: Pensieve-like cost 0 (no profiling), uniform weights.
    let mut qoe_total = 0.0;
    let mut sessions = 0usize;
    for asset in &env.assets {
        for trace in env.traces.iter().skip(2).take(3) {
            qoe_total += env
                .run_session(asset, trace, PolicyKind::Fugu)
                .unwrap()
                .qoe01;
            sessions += 1;
        }
    }
    table.add(vec![
        "no profiling (base ABR)".to_string(),
        "0.0".to_string(),
        format!("{:.3}", qoe_total / sessions as f64),
        "0".to_string(),
    ]);
    table.print();
}
