//! Fig. 17: QoE under increasing throughput variance (zero-mean Gaussian
//! noise) — SENSEI variants keep their edge over their base ABR logic.
// Figure-generation code renders counts and indices as f64 plot
// coordinates; everything is far below 2^52, so the conversions
// are exact.
#![allow(clippy::cast_precision_loss)]

use sensei_bench::{build_experiment, header, Table};
use sensei_core::experiment::PolicyKind;

fn main() {
    header(
        "Fig. 17",
        "QoE vs throughput standard deviation",
        "SENSEI degrades gracefully, keeping a gain over its base ABR",
    );
    let env = build_experiment(2021, true);
    let base = env.traces[7].clone();
    let mut table = Table::new(&[
        "Added noise (kbps sd)",
        "SENSEI-Fugu",
        "Fugu",
        "SENSEI-Pensieve",
        "Pensieve",
    ]);
    for noise in [0.0, 300.0, 600.0, 1000.0, 1500.0] {
        let trace = if noise > 0.0 {
            base.with_gaussian_noise(noise, 42).expect("valid noise")
        } else {
            base.clone()
        };
        let kinds = [
            PolicyKind::SenseiFugu,
            PolicyKind::Fugu,
            PolicyKind::SenseiPensieve,
            PolicyKind::Pensieve,
        ];
        let mut cells = vec![format!("{noise:.0}")];
        for kind in kinds {
            let mut total = 0.0;
            for asset in &env.assets {
                total += env.run_session(asset, &trace, kind).unwrap().qoe01;
            }
            cells.push(format!("{:.3}", total / env.assets.len() as f64));
        }
        table.add(cells);
    }
    table.print();
}
