//! Shared support for the per-figure benchmark harness.
//!
//! Every `benches/figNN_*.rs` target regenerates one table or figure from
//! the paper's evaluation and prints `paper:` vs `measured:` rows. Absolute
//! numbers are not expected to match (the substrate is a simulator, not the
//! authors' MTurk + testbed); the *shape* — who wins, by roughly what
//! factor, where crossovers fall — is the reproduction target.
//!
//! Set `SENSEI_BENCH_FULL=1` to run the full 16-video grids; the default
//! quick mode uses a genre-balanced 8-video subset so `cargo bench`
//! completes in minutes.

use sensei_core::experiment::{Experiment, ExperimentConfig, WeightSource};

/// Whether the full corpus was requested via `SENSEI_BENCH_FULL`.
pub fn full_mode() -> bool {
    std::env::var("SENSEI_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// The video subset used in quick mode: two per genre.
pub const QUICK_VIDEOS: [&str; 8] = [
    "Soccer1",
    "Basket1",
    "FPS2",
    "Tank",
    "Space",
    "Animal",
    "Lava",
    "BigBuckBunny",
];

/// Prints the standard bench header.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("  paper:    {paper_claim}");
    println!(
        "  mode:     {}",
        if full_mode() {
            "full (16 videos)"
        } else {
            "quick (8 videos; SENSEI_BENCH_FULL=1 for all 16)"
        }
    );
    println!("================================================================");
}

/// The experiment configuration for end-to-end grid benches.
pub fn grid_config(seed: u64, train_rl: bool) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        seed,
        weight_source: WeightSource::Crowd,
        train_rl,
        rl_episodes: 3000,
        ..ExperimentConfig::default()
    };
    if !full_mode() {
        cfg.videos = Some(QUICK_VIDEOS.iter().map(|s| s.to_string()).collect());
    }
    cfg
}

/// Builds the grid experiment, reporting build time.
pub fn build_experiment(seed: u64, train_rl: bool) -> Experiment {
    let t0 = std::time::Instant::now();
    let env =
        Experiment::build(&grid_config(seed, train_rl)).expect("experiment environment builds");
    println!(
        "[setup] {} videos, {} traces, RL {} ({:.1}s)",
        env.assets.len(),
        env.traces.len(),
        if train_rl { "trained" } else { "skipped" },
        t0.elapsed().as_secs_f64()
    );
    env
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified by the caller).
    pub fn add(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Prints the table with per-column widths.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("  ");
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(8);
                s.push_str(&format!("{cell:<w$}  "));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        line(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<String>>(),
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Builds the labeled render set used by the QoE-model accuracy benches
/// (Fig. 2 / Fig. 15): random bitrate-per-chunk renders with optional
/// startup stalls, labeled by the crowd oracle.
pub fn labeled_render_set(
    seed: u64,
    per_video: usize,
) -> Vec<(sensei_video::SourceVideo, sensei_video::RenderedVideo, f64)> {
    use rand::{Rng, SeedableRng};
    let oracle = sensei_crowd::TrueQoe::default();
    let ladder = sensei_video::BitrateLadder::default_paper();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let corpus = sensei_video::corpus::table1(seed);
    let names: Vec<&str> = if full_mode() {
        corpus.iter().map(|e| e.video.name()).collect()
    } else {
        QUICK_VIDEOS.to_vec()
    };
    for entry in corpus.iter().filter(|e| names.contains(&e.video.name())) {
        let src = &entry.video;
        for _ in 0..per_video {
            // §7.3 methodology: random per-chunk bitrates plus a random
            // startup stall from {0, 1, 2} s.
            let chunks: Vec<sensei_video::RenderedChunk> = src
                .chunks()
                .iter()
                .map(|c| {
                    let level = rng.gen_range(0..ladder.len());
                    let kbps = ladder.levels()[level];
                    sensei_video::RenderedChunk {
                        bitrate_kbps: kbps,
                        vq: sensei_video::visual_quality(kbps, c.complexity),
                        rebuffer_s: if rng.gen_bool(0.06) {
                            rng.gen_range(1..=4) as f64
                        } else {
                            0.0
                        },
                        intentional_rebuffer_s: 0.0,
                        motion: c.motion,
                        complexity: c.complexity,
                    }
                })
                .collect();
            let startup = rng.gen_range(0..=2) as f64;
            let render = sensei_video::RenderedVideo::new(
                src.name(),
                src.chunk_duration_s(),
                startup,
                chunks,
            )
            .expect("generated render is valid");
            let label = oracle.qoe01(src, &render).expect("render matches source");
            out.push((src.clone(), render, label));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new(&["a", "bb"]);
        t.add(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn quick_videos_are_table1_names() {
        let corpus = sensei_video::corpus::table1(1);
        for name in QUICK_VIDEOS {
            assert!(
                corpus.iter().any(|e| e.video.name() == name),
                "{name} not in Table 1"
            );
        }
    }

    #[test]
    fn labeled_renders_have_valid_labels() {
        let set = labeled_render_set(3, 2);
        assert_eq!(set.len(), 16);
        for (_, _, label) in &set {
            assert!((0.0..=1.0).contains(label));
        }
    }
}
