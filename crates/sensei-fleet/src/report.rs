//! Streaming aggregation for fleet runs.
//!
//! Everything here is an *online* accumulator folded in canonical scenario
//! order: QoE mean/variance via Welford's algorithm, fixed-bin histograms
//! for stall rates and bitrate switches, and a fixed-bin CDF of per-cell
//! QoE gains over a baseline policy. Memory is `O(policies × bins)`
//! regardless of how many million sessions stream through — the
//! per-session results are folded and dropped.

use crate::json::{self, obj, Json};
use crate::FleetError;
use sensei_core::{CellResult, PolicyKind};
use sensei_telemetry::{Counter, Hist, Phase, TelemetryShard, TelemetrySnapshot};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The raw second central moment (Σ(x − mean)²) — exposed so the
    /// accumulator state can be persisted and restored losslessly.
    #[must_use]
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Restores an accumulator from its persisted state (the inverse of
    /// reading `count`/`mean`/`m2`).
    #[must_use]
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Self {
        Self { count, mean, m2 }
    }
}

/// A fixed-bin histogram over `[lo, hi]`; out-of-range values clamp into
/// the edge bins, so the total count always equals the number of
/// observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `bins` is zero or the range is not a finite, positive
    /// interval — bin layout is experiment setup, not a runtime condition.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi}]"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Folds one observation in (NaN clamps to the lowest bin).
    pub fn add(&mut self, x: f64) {
        let frac = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower edge of the histogram range.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Inclusive upper edge of bin `i`.
    #[must_use]
    pub fn bin_upper_edge(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * (i as f64 + 1.0) / self.counts.len() as f64
    }

    /// Restores a histogram from its persisted state. The total is
    /// recomputed from the counts.
    ///
    /// # Panics
    ///
    /// Panics on an empty bin list or an invalid range, exactly like
    /// [`Self::new`].
    #[must_use]
    pub fn from_parts(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi}]"
        );
        let total = counts.iter().sum();
        Self {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Fraction of observations at or below `x` (by whole bins — the CDF
    /// read off the fixed bins). Returns 0 when empty.
    ///
    /// Edge comparison uses a tolerance *relative to the bin width*: an
    /// absolute slop (the old `1e-12`) is below one ulp once ranges reach
    /// kbps magnitudes (one ulp of 6000.0 is ≈ 9.1e-13 per unit, so edge
    /// arithmetic error easily exceeds a fixed 1e-12), which made
    /// exact-bin-edge queries fall one whole bin short on throughput
    /// histograms while working fine on percent scales.
    #[must_use]
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let eps = (self.hi - self.lo) / self.counts.len() as f64 * 1e-9;
        let below: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| self.bin_upper_edge(*i) <= x + eps)
            .map(|(_, &c)| c)
            .sum();
        below as f64 / self.total as f64
    }
}

/// Fixed-bin CDF of per-cell QoE gains over the baseline policy, in
/// percent — the fleet-scale generalization of the paper's Fig. 12a.
#[derive(Debug, Clone, PartialEq)]
pub struct GainCdf {
    /// Gains binned over [-100, +100] %.
    pub hist: Histogram,
    /// Running mean/variance of the gains.
    pub stats: Welford,
    /// Exact count of strictly positive gains (the binned CDF would put a
    /// gain of exactly 0 into the first positive bin).
    positive: u64,
}

impl GainCdf {
    pub(crate) fn new() -> Self {
        Self {
            hist: Histogram::new(-100.0, 100.0, GAIN_BINS),
            stats: Welford::default(),
            positive: 0,
        }
    }

    pub(crate) fn add(&mut self, gain_pct: f64) {
        self.hist.add(gain_pct);
        self.stats.push(gain_pct);
        if gain_pct > 0.0 {
            self.positive += 1;
        }
    }

    /// Fraction of cells where the policy strictly beat the baseline.
    #[must_use]
    pub fn fraction_positive(&self) -> f64 {
        if self.stats.count() == 0 {
            return 0.0;
        }
        self.positive as f64 / self.stats.count() as f64
    }

    /// Exact count of strictly positive gains — exposed for persistence.
    #[must_use]
    pub fn positive(&self) -> u64 {
        self.positive
    }

    /// Restores a gain CDF from its persisted state.
    #[must_use]
    pub fn from_parts(hist: Histogram, stats: Welford, positive: u64) -> Self {
        Self {
            hist,
            stats,
            positive,
        }
    }
}

const STALL_BINS: usize = 20;
const SWITCH_BINS: usize = 16;
const GAIN_BINS: usize = 40;
/// Switch histograms cover 0..=MAX_SWITCHES switches per session.
const MAX_SWITCHES: f64 = 64.0;

/// Streaming aggregates for one policy across the whole fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyStats {
    /// The policy.
    pub policy: PolicyKind,
    /// Sessions folded in.
    pub sessions: u64,
    /// True-QoE accumulator.
    pub qoe: Welford,
    /// Mean streamed bitrate accumulator (kbps).
    pub bitrate_kbps: Welford,
    /// Rebuffer-ratio accumulator.
    pub rebuffer_ratio: Welford,
    /// Stall-rate distribution: rebuffer ratio in 20 bins over [0, 1].
    pub stall_hist: Histogram,
    /// Bitrate-switch distribution: switches per session in 16 bins over
    /// [0, 64].
    pub switch_hist: Histogram,
    /// Total intentional stall seconds injected (SENSEI's pause action).
    pub intentional_stall_s: f64,
    /// QoE-gain CDF vs the baseline policy (`None` for the baseline
    /// itself).
    pub gain_vs_baseline: Option<GainCdf>,
}

impl PolicyStats {
    fn new(policy: PolicyKind, is_baseline: bool) -> Self {
        Self {
            policy,
            sessions: 0,
            qoe: Welford::default(),
            bitrate_kbps: Welford::default(),
            rebuffer_ratio: Welford::default(),
            stall_hist: Histogram::new(0.0, 1.0, STALL_BINS),
            switch_hist: Histogram::new(0.0, MAX_SWITCHES, SWITCH_BINS),
            intentional_stall_s: 0.0,
            gain_vs_baseline: (!is_baseline).then(GainCdf::new),
        }
    }

    fn fold(&mut self, cell: &CellResult) {
        self.sessions += 1;
        self.qoe.push(cell.qoe01);
        self.bitrate_kbps.push(cell.avg_bitrate_kbps);
        self.rebuffer_ratio.push(cell.rebuffer_ratio);
        self.stall_hist.add(cell.rebuffer_ratio);
        self.switch_hist.add(cell.bitrate_switches as f64);
        self.intentional_stall_s += cell.intentional_stall_s;
    }
}

/// Per-policy QoE aggregates conditioned on one **trace family** — the
/// scenario-diversity counterpart of the global [`PolicyStats`]. Memory
/// is `O(families × policies)`, so family conditioning rides along the
/// streaming fold for free.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyStats {
    /// Family key, derived from the trace-name prefix (`hsdpa`, `fcc`,
    /// `diurnal`, `burst`, `cell4`, …) — see [`family_of`].
    pub family: String,
    /// Per-policy QoE accumulators, in matrix policy order.
    pub per_policy: Vec<FamilyPolicyStats>,
}

/// One policy's QoE accumulator within one trace family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyPolicyStats {
    /// The policy.
    pub policy: PolicyKind,
    /// Sessions of this family folded in.
    pub sessions: u64,
    /// True-QoE accumulator over this family's sessions.
    pub qoe: Welford,
}

/// The family key of a trace name: the prefix before the first `-`
/// (generated traces are named `{family}-…`, and perturbation suffixes
/// append at the end, so the prefix survives `@x…`/`+n…` decoration).
/// Names without a `-` are their own family.
#[must_use]
pub fn family_of(trace_name: &str) -> &str {
    trace_name.split('-').next().unwrap_or(trace_name)
}

/// The order-independent part of a fleet report: everything here is
/// bit-for-bit identical for the same experiment + matrix regardless of
/// worker count (the executor folds in canonical scenario order).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Total sessions simulated.
    pub sessions: u64,
    /// The gain baseline policy.
    pub baseline: PolicyKind,
    /// Per-policy aggregates, in matrix policy order.
    pub per_policy: Vec<PolicyStats>,
    /// Per-trace-family aggregates, in first-seen canonical fold order
    /// (deterministic for any worker count, like everything else here).
    pub per_family: Vec<FamilyStats>,
}

impl FleetStats {
    pub(crate) fn new(policies: &[PolicyKind], baseline: PolicyKind) -> Self {
        Self {
            sessions: 0,
            baseline,
            per_policy: policies
                .iter()
                .map(|&p| PolicyStats::new(p, p == baseline))
                .collect(),
            per_family: Vec::new(),
        }
    }

    /// Folds one completed cell (all policies' results, in matrix policy
    /// order) into the aggregates.
    pub(crate) fn fold_cell(&mut self, cells: &[CellResult]) {
        debug_assert_eq!(cells.len(), self.per_policy.len());
        let base_idx = self
            .per_policy
            .iter()
            .position(|s| s.policy == self.baseline)
            .expect("baseline is in the policy axis");
        let base_qoe = cells[base_idx].qoe01;
        for (stats, cell) in self.per_policy.iter_mut().zip(cells) {
            self.sessions += 1;
            stats.fold(cell);
            if let Some(gain) = &mut stats.gain_vs_baseline {
                // Same skip rule as `sensei_core::qoe_gains_over`: cells
                // whose baseline bottomed out at 0 have no relative gain.
                if base_qoe > 0.0 {
                    gain.add((cell.qoe01 - base_qoe) / base_qoe * 100.0);
                }
            }
        }
        // Family-conditional fold: every cell of the group shares the
        // trace, so the family is keyed once off the first cell.
        let family = family_of(&cells[0].trace);
        let idx = match self.per_family.iter().position(|f| f.family == family) {
            Some(idx) => idx,
            None => {
                self.per_family.push(FamilyStats {
                    family: family.to_string(),
                    per_policy: self
                        .per_policy
                        .iter()
                        .map(|s| FamilyPolicyStats {
                            policy: s.policy,
                            sessions: 0,
                            qoe: Welford::default(),
                        })
                        .collect(),
                });
                self.per_family.len() - 1
            }
        };
        for (stats, cell) in self.per_family[idx].per_policy.iter_mut().zip(cells) {
            stats.sessions += 1;
            stats.qoe.push(cell.qoe01);
        }
    }

    /// Aggregates for one policy.
    #[must_use]
    pub fn policy(&self, kind: PolicyKind) -> Option<&PolicyStats> {
        self.per_policy.iter().find(|s| s.policy == kind)
    }

    /// Aggregates for one trace family.
    #[must_use]
    pub fn family(&self, family: &str) -> Option<&FamilyStats> {
        self.per_family.iter().find(|f| f.family == family)
    }
}

/// Coarse wall-clock breakdown of one fleet run, recorded by plain
/// `Instant` reads whether or not full telemetry is on: `setup_s` is the
/// executor's pre-scope work (matrix checks, channel construction),
/// `collect_s` the collector's in-order fold (reorder buffer + aggregate
/// folding), and `execute_s` the rest of the worker scope — the
/// simulation itself. The three sum to approximately `wall_time_s`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunPhases {
    /// Seconds spent before the worker scope started.
    pub setup_s: f64,
    /// Seconds of worker-scope wall time not spent folding.
    pub execute_s: f64,
    /// Seconds the collector spent folding results in canonical order.
    pub collect_s: f64,
}

/// Outcome of a fleet run: the deterministic aggregates plus (wall-clock,
/// execution-dependent) throughput figures.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The order-independent aggregates — compare these across runs.
    pub stats: FleetStats,
    /// Workers the run used.
    pub workers: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: f64,
    /// Sessions per second of wall-clock time.
    pub sessions_per_sec: f64,
    /// Setup / execute / collect wall-time split (always recorded).
    pub phases: RunPhases,
    /// Merged telemetry shards, when the run had telemetry enabled.
    /// Serialized in the optional `telemetry` JSON section, which
    /// [`Self::diff`] ignores — only [`FleetStats`] participate in
    /// baseline comparisons.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl FleetReport {
    /// A compact human-readable table of the per-policy aggregates.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} sessions | {} workers | {:.1} s | {:.0} sessions/s",
            self.stats.sessions, self.workers, self.wall_time_s, self.sessions_per_sec
        );
        let _ = writeln!(
            out,
            "phases: setup {:.3} s | execute {:.3} s | collect {:.3} s",
            self.phases.setup_s, self.phases.execute_s, self.phases.collect_s
        );
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}",
            "policy", "mean QoE", "std", "stall%", "switches", "gain>0 (%)", "Δmean (%)"
        );
        for s in &self.stats.per_policy {
            let (pos, dmean) = s
                .gain_vs_baseline
                .as_ref()
                .map(|g| {
                    (
                        format!("{:.1}", g.fraction_positive() * 100.0),
                        format!("{:+.1}", g.stats.mean()),
                    )
                })
                .unwrap_or_else(|| ("base".to_string(), "base".to_string()));
            let _ = writeln!(
                out,
                "{:<24} {:>8.3} {:>8.3} {:>8.2} {:>8.1} {:>10} {:>9}",
                s.policy.label(),
                s.qoe.mean(),
                s.qoe.std_dev(),
                s.rebuffer_ratio.mean() * 100.0,
                s.mean_switches(),
                pos,
                dmean
            );
        }
        out
    }
}

/// Version tag of the persisted report format; bumped on any schema
/// change so stale baselines fail with a clear message instead of a
/// field-level parse error. `/2` added the per-family aggregates.
const FORMAT_TAG: &str = "sensei-fleet-report/2";

fn welford_to_json(w: &Welford) -> Json {
    obj([
        ("count", Json::Num(w.count() as f64)),
        ("mean", Json::Num(w.mean())),
        ("m2", Json::Num(w.m2())),
    ])
}

fn hist_to_json(h: &Histogram) -> Json {
    obj([
        ("lo", Json::Num(h.lo())),
        ("hi", Json::Num(h.hi())),
        (
            "counts",
            Json::Arr(h.counts().iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
    ])
}

/// Field-lookup helpers for deserialization; every miss names the path
/// it failed at so a corrupted baseline is diagnosable.
fn field<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, FleetError> {
    v.get(key)
        .ok_or_else(|| FleetError::Persist(format!("missing field `{ctx}.{key}`")))
}

fn num_field(v: &Json, key: &str, ctx: &str) -> Result<f64, FleetError> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| FleetError::Persist(format!("field `{ctx}.{key}` is not a number")))
}

fn u64_field(v: &Json, key: &str, ctx: &str) -> Result<u64, FleetError> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| FleetError::Persist(format!("field `{ctx}.{key}` is not a whole count")))
}

fn welford_from_json(v: &Json, ctx: &str) -> Result<Welford, FleetError> {
    Ok(Welford::from_parts(
        u64_field(v, "count", ctx)?,
        num_field(v, "mean", ctx)?,
        num_field(v, "m2", ctx)?,
    ))
}

fn hist_from_json(v: &Json, ctx: &str) -> Result<Histogram, FleetError> {
    let lo = num_field(v, "lo", ctx)?;
    let hi = num_field(v, "hi", ctx)?;
    let counts = field(v, "counts", ctx)?
        .as_arr()
        .ok_or_else(|| FleetError::Persist(format!("field `{ctx}.counts` is not an array")))?
        .iter()
        .map(|c| {
            c.as_u64()
                .ok_or_else(|| FleetError::Persist(format!("`{ctx}.counts` entry is not a count")))
        })
        .collect::<Result<Vec<u64>, _>>()?;
    if counts.is_empty() || !(lo.is_finite() && hi.is_finite() && lo < hi) {
        return Err(FleetError::Persist(format!(
            "`{ctx}` has an invalid histogram layout [{lo}, {hi}] × {} bins",
            counts.len()
        )));
    }
    Ok(Histogram::from_parts(lo, hi, counts))
}

fn telemetry_to_json(t: &TelemetrySnapshot) -> Json {
    obj([
        (
            "counters",
            obj(Counter::ALL.map(|c| (c.name(), Json::Num(t.counter(c) as f64)))),
        ),
        (
            "phases",
            obj(Phase::ALL.map(|p| {
                (
                    p.name(),
                    obj([
                        ("calls", Json::Num(t.shard.phase_calls(p) as f64)),
                        ("ns", Json::Num(t.shard.phase_ns(p) as f64)),
                    ]),
                )
            })),
        ),
        (
            "hists",
            obj(Hist::ALL.map(|h| {
                (
                    h.name(),
                    Json::Arr(
                        t.shard
                            .hist(h)
                            .iter()
                            .map(|&c| Json::Num(c as f64))
                            .collect(),
                    ),
                )
            })),
        ),
    ])
}

/// Parses a `telemetry` section written by [`telemetry_to_json`]. Names
/// absent from the document default to zero and unknown names are
/// ignored, so the section survives catalog growth in either direction.
fn telemetry_from_json(v: &Json) -> Result<TelemetrySnapshot, FleetError> {
    let mut shard = TelemetryShard::new();
    let counters = field(v, "counters", "telemetry")?;
    for c in Counter::ALL {
        if let Some(n) = counters.get(c.name()) {
            shard.counters[c as usize] = n.as_u64().ok_or_else(|| {
                FleetError::Persist(format!("`telemetry.counters.{}` is not a count", c.name()))
            })?;
        }
    }
    let phases = field(v, "phases", "telemetry")?;
    for p in Phase::ALL {
        if let Some(entry) = phases.get(p.name()) {
            let ctx = format!("telemetry.phases.{}", p.name());
            shard.phase_calls[p as usize] = u64_field(entry, "calls", &ctx)?;
            shard.phase_ns[p as usize] = u64_field(entry, "ns", &ctx)?;
        }
    }
    let hists = field(v, "hists", "telemetry")?;
    for h in Hist::ALL {
        if let Some(bins) = hists.get(h.name()) {
            let ctx = format!("telemetry.hists.{}", h.name());
            let bins = bins
                .as_arr()
                .ok_or_else(|| FleetError::Persist(format!("`{ctx}` is not an array")))?;
            if bins.len() != Hist::BINS {
                return Err(FleetError::Persist(format!(
                    "`{ctx}` has {} bins (this build expects {})",
                    bins.len(),
                    Hist::BINS
                )));
            }
            for (slot, bin) in shard.hists[h as usize].iter_mut().zip(bins) {
                *slot = bin
                    .as_u64()
                    .ok_or_else(|| FleetError::Persist(format!("`{ctx}` entry is not a count")))?;
            }
        }
    }
    Ok(TelemetrySnapshot::from_shard(shard))
}

impl FleetReport {
    /// Serializes the report — aggregates and throughput figures — to the
    /// persistence JSON format (`BASELINE_fleet.json`). Floats are written
    /// in shortest-round-trip form, so
    /// `from_json(to_json()).stats == stats` holds **bit for bit**.
    #[must_use]
    pub fn to_json(&self) -> String {
        let per_policy: Vec<Json> = self
            .stats
            .per_policy
            .iter()
            .map(|s| {
                let gain = s.gain_vs_baseline.as_ref().map_or(Json::Null, |g| {
                    obj([
                        ("hist", hist_to_json(&g.hist)),
                        ("stats", welford_to_json(&g.stats)),
                        ("positive", Json::Num(g.positive() as f64)),
                    ])
                });
                obj([
                    ("policy", Json::Str(s.policy.label().to_string())),
                    ("sessions", Json::Num(s.sessions as f64)),
                    ("qoe", welford_to_json(&s.qoe)),
                    ("bitrate_kbps", welford_to_json(&s.bitrate_kbps)),
                    ("rebuffer_ratio", welford_to_json(&s.rebuffer_ratio)),
                    ("stall_hist", hist_to_json(&s.stall_hist)),
                    ("switch_hist", hist_to_json(&s.switch_hist)),
                    ("intentional_stall_s", Json::Num(s.intentional_stall_s)),
                    ("gain_vs_baseline", gain),
                ])
            })
            .collect();
        let per_family: Vec<Json> = self
            .stats
            .per_family
            .iter()
            .map(|f| {
                obj([
                    ("family", Json::Str(f.family.clone())),
                    (
                        "per_policy",
                        Json::Arr(
                            f.per_policy
                                .iter()
                                .map(|s| {
                                    obj([
                                        ("policy", Json::Str(s.policy.label().to_string())),
                                        ("sessions", Json::Num(s.sessions as f64)),
                                        ("qoe", welford_to_json(&s.qoe)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        obj([
            ("format", Json::Str(FORMAT_TAG.to_string())),
            ("workers", Json::Num(self.workers as f64)),
            ("wall_time_s", Json::Num(self.wall_time_s)),
            ("sessions_per_sec", Json::Num(self.sessions_per_sec)),
            (
                "phases",
                obj([
                    ("setup_s", Json::Num(self.phases.setup_s)),
                    ("execute_s", Json::Num(self.phases.execute_s)),
                    ("collect_s", Json::Num(self.phases.collect_s)),
                ]),
            ),
            (
                "telemetry",
                self.telemetry
                    .as_ref()
                    .map_or(Json::Null, telemetry_to_json),
            ),
            (
                "stats",
                obj([
                    ("sessions", Json::Num(self.stats.sessions as f64)),
                    (
                        "baseline",
                        Json::Str(self.stats.baseline.label().to_string()),
                    ),
                    ("per_policy", Json::Arr(per_policy)),
                    ("per_family", Json::Arr(per_family)),
                ]),
            ),
        ])
        .to_pretty()
    }

    /// Parses a report persisted by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Persist`] on syntax errors, an unknown
    /// format version, missing or mistyped fields, unknown policy labels,
    /// or a baseline outside the policy list.
    pub fn from_json(text: &str) -> Result<Self, FleetError> {
        let doc = json::parse(text).map_err(FleetError::Persist)?;
        let format = field(&doc, "format", "report")?
            .as_str()
            .ok_or_else(|| FleetError::Persist("field `report.format` is not a string".into()))?;
        if format != FORMAT_TAG {
            return Err(FleetError::Persist(format!(
                "unsupported report format `{format}` (this build reads `{FORMAT_TAG}`)"
            )));
        }
        let policy_kind = |v: &Json, ctx: &str| -> Result<PolicyKind, FleetError> {
            let label = field(v, "policy", ctx)?.as_str().ok_or_else(|| {
                FleetError::Persist(format!("field `{ctx}.policy` is not a string"))
            })?;
            PolicyKind::from_label(label)
                .ok_or_else(|| FleetError::Persist(format!("unknown policy label `{label}`")))
        };
        let stats_v = field(&doc, "stats", "report")?;
        let baseline_label = field(stats_v, "baseline", "stats")?
            .as_str()
            .ok_or_else(|| FleetError::Persist("field `stats.baseline` is not a string".into()))?;
        let baseline = PolicyKind::from_label(baseline_label).ok_or_else(|| {
            FleetError::Persist(format!("unknown baseline policy `{baseline_label}`"))
        })?;
        let per_policy_v = field(stats_v, "per_policy", "stats")?
            .as_arr()
            .ok_or_else(|| FleetError::Persist("`stats.per_policy` is not an array".into()))?;
        let mut per_policy = Vec::with_capacity(per_policy_v.len());
        for (i, v) in per_policy_v.iter().enumerate() {
            let ctx = format!("per_policy[{i}]");
            let gain_v = field(v, "gain_vs_baseline", &ctx)?;
            let gain_vs_baseline = if gain_v.is_null() {
                None
            } else {
                Some(GainCdf::from_parts(
                    hist_from_json(field(gain_v, "hist", &ctx)?, &ctx)?,
                    welford_from_json(field(gain_v, "stats", &ctx)?, &ctx)?,
                    u64_field(gain_v, "positive", &ctx)?,
                ))
            };
            per_policy.push(PolicyStats {
                policy: policy_kind(v, &ctx)?,
                sessions: u64_field(v, "sessions", &ctx)?,
                qoe: welford_from_json(field(v, "qoe", &ctx)?, &ctx)?,
                bitrate_kbps: welford_from_json(field(v, "bitrate_kbps", &ctx)?, &ctx)?,
                rebuffer_ratio: welford_from_json(field(v, "rebuffer_ratio", &ctx)?, &ctx)?,
                stall_hist: hist_from_json(field(v, "stall_hist", &ctx)?, &ctx)?,
                switch_hist: hist_from_json(field(v, "switch_hist", &ctx)?, &ctx)?,
                intentional_stall_s: num_field(v, "intentional_stall_s", &ctx)?,
                gain_vs_baseline,
            });
        }
        if !per_policy.iter().any(|s| s.policy == baseline) {
            return Err(FleetError::Persist(format!(
                "baseline `{baseline_label}` is not among the per-policy stats"
            )));
        }
        let per_family_v = field(stats_v, "per_family", "stats")?
            .as_arr()
            .ok_or_else(|| FleetError::Persist("`stats.per_family` is not an array".into()))?;
        let mut per_family = Vec::with_capacity(per_family_v.len());
        for (i, v) in per_family_v.iter().enumerate() {
            let ctx = format!("per_family[{i}]");
            let family = field(v, "family", &ctx)?
                .as_str()
                .ok_or_else(|| {
                    FleetError::Persist(format!("field `{ctx}.family` is not a string"))
                })?
                .to_string();
            let policies_v = field(v, "per_policy", &ctx)?.as_arr().ok_or_else(|| {
                FleetError::Persist(format!("`{ctx}.per_policy` is not an array"))
            })?;
            let mut stats = Vec::with_capacity(policies_v.len());
            for (j, pv) in policies_v.iter().enumerate() {
                let pctx = format!("{ctx}.per_policy[{j}]");
                stats.push(FamilyPolicyStats {
                    policy: policy_kind(pv, &pctx)?,
                    sessions: u64_field(pv, "sessions", &pctx)?,
                    qoe: welford_from_json(field(pv, "qoe", &pctx)?, &pctx)?,
                });
            }
            per_family.push(FamilyStats {
                family,
                per_policy: stats,
            });
        }
        Ok(Self {
            stats: FleetStats {
                sessions: u64_field(stats_v, "sessions", "stats")?,
                baseline,
                per_policy,
                per_family,
            },
            workers: usize::try_from(u64_field(&doc, "workers", "report")?)
                .map_err(|_| FleetError::Persist("worker count out of range".into()))?,
            wall_time_s: num_field(&doc, "wall_time_s", "report")?,
            sessions_per_sec: num_field(&doc, "sessions_per_sec", "report")?,
            // Additive `/2` sections: reports persisted before the phase
            // split and telemetry existed simply lack them.
            phases: match doc.get("phases") {
                Some(v) => RunPhases {
                    setup_s: num_field(v, "setup_s", "phases")?,
                    execute_s: num_field(v, "execute_s", "phases")?,
                    collect_s: num_field(v, "collect_s", "phases")?,
                },
                None => RunPhases::default(),
            },
            telemetry: match doc.get("telemetry") {
                Some(v) if !v.is_null() => Some(telemetry_from_json(v)?),
                _ => None,
            },
        })
    }

    /// Compares this report's deterministic aggregates against a
    /// `baseline` report (typically a checked-in `BASELINE_fleet.json`),
    /// pairing policies by kind and trace families by key. Wall-clock
    /// fields are ignored — only the order-independent [`FleetStats`]
    /// participate. Family pairing is what lets the diff **attribute** a
    /// policy-level QoE-mean drift to the family that actually moved.
    #[must_use]
    pub fn diff(&self, baseline: &FleetReport) -> FleetDiff {
        let mut drifts = Vec::new();
        let mut only_in_baseline = Vec::new();
        for b in &baseline.stats.per_policy {
            match self.stats.policy(b.policy) {
                Some(c) => drifts.push(PolicyDrift {
                    policy: b.policy,
                    baseline_qoe_mean: b.qoe.mean(),
                    current_qoe_mean: c.qoe.mean(),
                    baseline_sessions: b.sessions,
                    current_sessions: c.sessions,
                }),
                None => only_in_baseline.push(b.policy),
            }
        }
        let only_in_current = self
            .stats
            .per_policy
            .iter()
            .map(|s| s.policy)
            .filter(|p| baseline.stats.policy(*p).is_none())
            .collect();
        let mut family_drifts = Vec::new();
        let mut families_only_in_baseline = Vec::new();
        for bf in &baseline.stats.per_family {
            let Some(cf) = self.stats.family(&bf.family) else {
                families_only_in_baseline.push(bf.family.clone());
                continue;
            };
            for bp in &bf.per_policy {
                if let Some(cp) = cf.per_policy.iter().find(|cp| cp.policy == bp.policy) {
                    family_drifts.push(FamilyDrift {
                        family: bf.family.clone(),
                        policy: bp.policy,
                        baseline_qoe_mean: bp.qoe.mean(),
                        current_qoe_mean: cp.qoe.mean(),
                        baseline_sessions: bp.sessions,
                        current_sessions: cp.sessions,
                    });
                }
            }
        }
        let families_only_in_current = self
            .stats
            .per_family
            .iter()
            .map(|f| f.family.clone())
            .filter(|f| baseline.stats.family(f).is_none())
            .collect();
        FleetDiff {
            drifts,
            only_in_baseline,
            only_in_current,
            family_drifts,
            families_only_in_baseline,
            families_only_in_current,
            // A changed gain baseline re-anchors every gain CDF even when
            // the per-policy QoE means agree, so it is a structural
            // difference in its own right.
            baseline_changed: (self.stats.baseline != baseline.stats.baseline)
                .then_some((baseline.stats.baseline, self.stats.baseline)),
        }
    }
}

/// One policy's QoE-mean movement within one trace family — the
/// attribution record behind a policy-level drift.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyDrift {
    /// The trace family.
    pub family: String,
    /// The policy.
    pub policy: PolicyKind,
    /// Family-conditional QoE mean in the baseline report.
    pub baseline_qoe_mean: f64,
    /// Family-conditional QoE mean in the current report.
    pub current_qoe_mean: f64,
    /// Family sessions folded in the baseline report.
    pub baseline_sessions: u64,
    /// Family sessions folded in the current report.
    pub current_sessions: u64,
}

impl FamilyDrift {
    /// Signed family-conditional QoE-mean movement (current − baseline).
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.current_qoe_mean - self.baseline_qoe_mean
    }
}

/// Per-policy QoE-mean movement between a baseline report and the
/// current one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyDrift {
    /// The policy.
    pub policy: PolicyKind,
    /// QoE mean in the baseline report.
    pub baseline_qoe_mean: f64,
    /// QoE mean in the current report.
    pub current_qoe_mean: f64,
    /// Sessions folded in the baseline report.
    pub baseline_sessions: u64,
    /// Sessions folded in the current report.
    pub current_sessions: u64,
}

impl PolicyDrift {
    /// Signed QoE-mean movement (current − baseline); negative is a
    /// regression.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.current_qoe_mean - self.baseline_qoe_mean
    }
}

/// Outcome of [`FleetReport::diff`]: per-policy QoE-mean drifts plus the
/// structural differences (policies present on only one side).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDiff {
    /// Policies present in both reports, with their QoE-mean movement.
    pub drifts: Vec<PolicyDrift>,
    /// Policies only the baseline report has.
    pub only_in_baseline: Vec<PolicyKind>,
    /// Policies only the current report has.
    pub only_in_current: Vec<PolicyKind>,
    /// `(family, policy)` pairs present in both reports, with their
    /// family-conditional QoE-mean movement.
    pub family_drifts: Vec<FamilyDrift>,
    /// Trace families only the baseline report has.
    pub families_only_in_baseline: Vec<String>,
    /// Trace families only the current report has.
    pub families_only_in_current: Vec<String>,
    /// `Some((baseline's, current's))` when the two reports anchor their
    /// gain CDFs to different baseline policies.
    pub baseline_changed: Option<(PolicyKind, PolicyKind)>,
}

impl FleetDiff {
    /// Drifts whose QoE mean **dropped** by more than `tolerance`.
    #[must_use]
    pub fn regressions(&self, tolerance: f64) -> Vec<&PolicyDrift> {
        self.drifts
            .iter()
            .filter(|d| d.delta() < -tolerance)
            .collect()
    }

    /// Drifts whose QoE mean moved by more than `tolerance` in either
    /// direction, or whose session count changed (a matrix-shape change
    /// masquerading as a same-scenario run).
    #[must_use]
    pub fn drifted(&self, tolerance: f64) -> Vec<&PolicyDrift> {
        self.drifts
            .iter()
            .filter(|d| d.delta().abs() > tolerance || d.baseline_sessions != d.current_sessions)
            .collect()
    }

    /// Family-conditional drifts beyond `tolerance` (or with changed
    /// session counts) — which family a policy-level drift came from.
    /// Two families can also move in opposite directions and cancel at
    /// the policy level, so this catches compensating drift the global
    /// means hide.
    #[must_use]
    pub fn drifted_families(&self, tolerance: f64) -> Vec<&FamilyDrift> {
        self.family_drifts
            .iter()
            .filter(|d| d.delta().abs() > tolerance || d.baseline_sessions != d.current_sessions)
            .collect()
    }

    /// Whether the reports agree: same policy and family axes, same gain
    /// baseline, and no global or family-conditional drift beyond
    /// `tolerance`. This is the CI baseline gate.
    #[must_use]
    pub fn is_clean(&self, tolerance: f64) -> bool {
        self.only_in_baseline.is_empty()
            && self.only_in_current.is_empty()
            && self.families_only_in_baseline.is_empty()
            && self.families_only_in_current.is_empty()
            && self.baseline_changed.is_none()
            && self.drifted(tolerance).is_empty()
            && self.drifted_families(tolerance).is_empty()
    }

    /// A human-readable account of every difference (empty string when
    /// the diff is clean at `tolerance`), attributing policy-level drift
    /// to the trace families that moved.
    #[must_use]
    pub fn summary(&self, tolerance: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in &self.only_in_baseline {
            let _ = writeln!(out, "policy {} missing from the current report", p.label());
        }
        for p in &self.only_in_current {
            let _ = writeln!(out, "policy {} missing from the baseline", p.label());
        }
        for f in &self.families_only_in_baseline {
            let _ = writeln!(out, "trace family `{f}` missing from the current report");
        }
        for f in &self.families_only_in_current {
            let _ = writeln!(out, "trace family `{f}` missing from the baseline");
        }
        if let Some((was, now)) = self.baseline_changed {
            let _ = writeln!(
                out,
                "gain baseline changed: {} -> {}",
                was.label(),
                now.label()
            );
        }
        for d in self.drifted(tolerance) {
            let _ = writeln!(
                out,
                "policy {}: QoE mean {:.6} -> {:.6} (Δ {:+.6}), sessions {} -> {}",
                d.policy.label(),
                d.baseline_qoe_mean,
                d.current_qoe_mean,
                d.delta(),
                d.baseline_sessions,
                d.current_sessions
            );
        }
        for d in self.drifted_families(tolerance) {
            let _ = writeln!(
                out,
                "  └ family `{}` moved {}: QoE mean {:.6} -> {:.6} (Δ {:+.6}), sessions {} -> {}",
                d.family,
                d.policy.label(),
                d.baseline_qoe_mean,
                d.current_qoe_mean,
                d.delta(),
                d.baseline_sessions,
                d.current_sessions
            );
        }
        out
    }
}

impl PolicyStats {
    /// Mean bitrate switches per session, estimated from the fixed-bin
    /// histogram (bin midpoints — exact enough for reporting).
    #[must_use]
    pub fn mean_switches(&self) -> f64 {
        if self.switch_hist.total() == 0 {
            return 0.0;
        }
        let width = MAX_SWITCHES / SWITCH_BINS as f64;
        let weighted: f64 = self
            .switch_hist
            .counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 + 0.5) * width)
            .sum();
        weighted / self.switch_hist.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::default();
        for x in xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_and_cdfs() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [-0.5, 0.1, 0.3, 0.6, 0.9, 2.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert!((h.cdf_at(0.5) - 0.5).abs() < 1e-12);
        assert!((h.cdf_at(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_exact_bin_edges_at_percent_and_kbps_magnitudes() {
        // Regression: the old absolute 1e-12 edge slop is below one ulp
        // for kbps-scale ranges, so exact-edge queries fell a whole bin
        // short on throughput histograms. The tolerance is now relative
        // to the bin width, so both magnitudes behave identically.
        // Percent scale (gain CDFs): edges at multiples of 5.
        let mut pct = Histogram::new(-100.0, 100.0, 40);
        for x in [-99.0, -12.0, 3.0, 42.0, 97.0] {
            pct.add(x);
        }
        for i in 0..40 {
            let edge = pct.bin_upper_edge(i);
            let below: u64 = pct.counts()[..=i].iter().sum();
            assert!(
                (pct.cdf_at(edge) - below as f64 / pct.total() as f64).abs() < 1e-12,
                "percent edge {edge}"
            );
        }
        // kbps scale (trace-family throughput histograms): a caller
        // walking the edges by accumulation (`x += width`, the usual
        // figure-script pattern) drifts from the internally computed
        // edges by up to ~1.8e-12 at this layout — beyond the old
        // absolute slop, so bin 9's exact-edge query used to fall one
        // whole bin short.
        let mut kbps = Histogram::new(200.0, 6000.0, 11);
        for x in [250.0, 900.0, 2500.0, 4400.0, 5950.0] {
            kbps.add(x);
        }
        let width = (6000.0 - 200.0) / 11.0;
        let mut drifted = false;
        let mut edge = 200.0;
        for i in 0..11 {
            edge += width;
            let below: u64 = kbps.counts()[..=i].iter().sum();
            assert!(
                (kbps.cdf_at(edge) - below as f64 / kbps.total() as f64).abs() < 1e-12,
                "accumulated kbps edge {edge} (bin {i})"
            );
            drifted |= kbps.bin_upper_edge(i) - edge > 1e-12;
        }
        assert!(
            drifted,
            "layout no longer exhibits >1e-12 edge drift; pick one that does"
        );
        // The tolerance must stay far below a bin width: a mid-bin query
        // still excludes its own bin.
        assert_eq!(kbps.cdf_at(300.0), 0.0);
    }

    #[test]
    fn gain_cdf_fraction_positive() {
        let mut g = GainCdf::new();
        for x in [-20.0, -5.0, 10.0, 30.0] {
            g.add(x);
        }
        assert!((g.fraction_positive() - 0.5).abs() < 1e-12);
        assert!((g.stats.mean() - 3.75).abs() < 1e-12);
        // A tie with the baseline (gain exactly 0) is not a win.
        let mut tie = GainCdf::new();
        tie.add(0.0);
        tie.add(5.0);
        assert!((tie.fraction_positive() - 0.5).abs() < 1e-12);
    }

    /// A small synthetic report with non-trivial accumulator state in
    /// every field (gain CDFs included).
    fn sample_report() -> FleetReport {
        let mk = |policy: &'static str, qoe01: f64, rr: f64| CellResult {
            video: "v".into(),
            genre: "Sports",
            trace: "t".into(),
            trace_mean_kbps: 1234.5,
            policy,
            qoe01,
            avg_bitrate_kbps: 1500.3,
            rebuffer_ratio: rr,
            delivered_bits: 1e8,
            intentional_stall_s: 0.25,
            bitrate_switches: 3,
        };
        let mut stats =
            FleetStats::new(&[PolicyKind::Bba, PolicyKind::SenseiFugu], PolicyKind::Bba);
        stats.fold_cell(&[mk("BBA", 0.51, 0.02), mk("SENSEI", 0.63, 0.01)]);
        stats.fold_cell(&[mk("BBA", 0.47, 0.06), mk("SENSEI", 0.44, 0.09)]);
        stats.fold_cell(&[mk("BBA", 1.0 / 3.0, 0.0), mk("SENSEI", 0.1 / 0.3, 0.0)]);
        let mut shard = TelemetryShard::new();
        shard.counters[Counter::Sessions as usize] = 6;
        shard.counters[Counter::Tiles as usize] = 3;
        shard.phase_calls[Phase::LaneSimulate as usize] = 3;
        shard.phase_ns[Phase::LaneSimulate as usize] = 123_456;
        shard.hists[Hist::LanesPerBatch as usize][1] = 3;
        FleetReport {
            stats,
            workers: 4,
            wall_time_s: 1.5,
            sessions_per_sec: 4.0,
            phases: RunPhases {
                setup_s: 0.25,
                execute_s: 1.0,
                collect_s: 0.25,
            },
            telemetry: Some(TelemetrySnapshot::from_shard(shard)),
        }
    }

    #[test]
    fn report_json_round_trips_bit_for_bit() {
        let report = sample_report();
        let text = report.to_json();
        let back = FleetReport::from_json(&text).unwrap();
        // FleetStats derives PartialEq over every accumulator, so this is
        // a bit-for-bit comparison of means, m2s, and histogram counts.
        assert_eq!(report.stats, back.stats);
        assert_eq!(report.workers, back.workers);
        assert_eq!(report.wall_time_s.to_bits(), back.wall_time_s.to_bits());
        // Serialization is stable: a second round trip emits identical
        // bytes (checked-in baselines must not churn).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn report_json_rejects_corruption() {
        let report = sample_report();
        let text = report.to_json();
        assert!(matches!(
            FleetReport::from_json("not json"),
            Err(FleetError::Persist(_))
        ));
        assert!(matches!(
            FleetReport::from_json("{}"),
            Err(FleetError::Persist(_))
        ));
        let bad_policy = text.replace("\"BBA\"", "\"NotAPolicy\"");
        assert!(matches!(
            FleetReport::from_json(&bad_policy),
            Err(FleetError::Persist(_))
        ));
        let bad_count = text.replace("\"workers\": 4", "\"workers\": -1");
        assert!(matches!(
            FleetReport::from_json(&bad_count),
            Err(FleetError::Persist(_))
        ));
        // Unknown format versions fail with a version message, not a
        // field-level parse error.
        let bad_format = text.replace(FORMAT_TAG, "sensei-fleet-report/999");
        match FleetReport::from_json(&bad_format) {
            Err(FleetError::Persist(msg)) => {
                assert!(msg.contains("format"), "got: {msg}");
            }
            other => panic!("expected Persist error, got {other:?}"),
        }
    }

    #[test]
    fn diff_flags_qoe_mean_drift_and_axis_changes() {
        let baseline = sample_report();
        // Identical reports diff clean at any tolerance.
        let same = FleetReport::from_json(&baseline.to_json()).unwrap();
        let clean = same.diff(&baseline);
        assert!(clean.is_clean(0.0));
        assert!(clean.regressions(0.0).is_empty());
        assert_eq!(clean.summary(0.0), "");
        // Perturb one policy's QoE mean: flagged beyond tolerance, quiet
        // within it.
        let mut drifted = FleetReport::from_json(&baseline.to_json()).unwrap();
        let qoe = &mut drifted.stats.per_policy[1].qoe;
        *qoe = Welford::from_parts(qoe.count(), qoe.mean() - 0.01, qoe.m2());
        let diff = drifted.diff(&baseline);
        assert!(!diff.is_clean(0.005));
        assert!(diff.is_clean(0.05));
        let regs = diff.regressions(0.005);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].policy, PolicyKind::SenseiFugu);
        assert!(regs[0].delta() < 0.0);
        assert!(diff.summary(0.005).contains("SENSEI"));
        // An improvement is drift (baseline should be refreshed) but not
        // a regression.
        let mut improved = FleetReport::from_json(&baseline.to_json()).unwrap();
        let qoe = &mut improved.stats.per_policy[1].qoe;
        *qoe = Welford::from_parts(qoe.count(), qoe.mean() + 0.01, qoe.m2());
        let diff = improved.diff(&baseline);
        assert!(diff.regressions(0.005).is_empty());
        assert!(!diff.is_clean(0.005));
        // Axis changes are structural differences.
        let mut reshaped = FleetReport::from_json(&baseline.to_json()).unwrap();
        reshaped.stats.per_policy.pop();
        let diff = reshaped.diff(&baseline);
        assert_eq!(diff.only_in_baseline, vec![PolicyKind::SenseiFugu]);
        assert!(!diff.is_clean(f64::INFINITY));
        assert!(diff.summary(0.0).contains("missing from the current"));
        // Session-count changes are drift even when means agree.
        let mut resized = FleetReport::from_json(&baseline.to_json()).unwrap();
        resized.stats.per_policy[0].sessions += 1;
        assert!(!resized.diff(&baseline).is_clean(f64::INFINITY));
        // A changed gain baseline is structural: every gain CDF is
        // re-anchored even when the per-policy means agree.
        let mut reanchored = FleetReport::from_json(&baseline.to_json()).unwrap();
        reanchored.stats.baseline = PolicyKind::SenseiFugu;
        let diff = reanchored.diff(&baseline);
        assert_eq!(
            diff.baseline_changed,
            Some((PolicyKind::Bba, PolicyKind::SenseiFugu))
        );
        assert!(!diff.is_clean(f64::INFINITY));
        assert!(diff
            .summary(f64::INFINITY)
            .contains("gain baseline changed"));
    }

    #[test]
    fn family_conditional_aggregates_fold_and_attribute_drift() {
        let mk = |policy: &'static str, trace: &str, qoe01: f64| CellResult {
            video: "v".into(),
            genre: "Sports",
            trace: trace.into(),
            trace_mean_kbps: 1000.0,
            policy,
            qoe01,
            avg_bitrate_kbps: 1500.0,
            rebuffer_ratio: 0.05,
            delivered_bits: 1e8,
            intentional_stall_s: 0.0,
            bitrate_switches: 3,
        };
        let build = |hsdpa_fugu: f64, diurnal_fugu: f64| {
            let mut stats = FleetStats::new(&[PolicyKind::Bba, PolicyKind::Fugu], PolicyKind::Bba);
            stats.fold_cell(&[
                mk("BBA", "hsdpa-700k-s1", 0.5),
                mk("Fugu", "hsdpa-700k-s1", hsdpa_fugu),
            ]);
            stats.fold_cell(&[
                mk("BBA", "diurnal-003-900k@x0.80", 0.4),
                mk("Fugu", "diurnal-003-900k@x0.80", diurnal_fugu),
            ]);
            FleetReport {
                stats,
                workers: 1,
                wall_time_s: 1.0,
                sessions_per_sec: 4.0,
                phases: RunPhases::default(),
                telemetry: None,
            }
        };
        let baseline = build(0.6, 0.5);
        // Families keyed by trace-name prefix, perturbation suffixes and
        // all, in first-seen fold order.
        assert_eq!(baseline.stats.per_family.len(), 2);
        assert_eq!(baseline.stats.per_family[0].family, "hsdpa");
        assert_eq!(baseline.stats.per_family[1].family, "diurnal");
        let hsdpa = baseline.stats.family("hsdpa").unwrap();
        assert_eq!(hsdpa.per_policy[1].sessions, 1);
        assert!((hsdpa.per_policy[1].qoe.mean() - 0.6).abs() < 1e-12);
        // Round trip carries the family aggregates bit for bit.
        let back = FleetReport::from_json(&baseline.to_json()).unwrap();
        assert_eq!(back.stats, baseline.stats);
        // Only the diurnal family moves: the policy-level Fugu mean
        // drifts, and the diff attributes it to `diurnal` while `hsdpa`
        // stays quiet.
        let current = build(0.6, 0.3);
        let diff = current.diff(&baseline);
        assert!(!diff.is_clean(0.01));
        let moved = diff.drifted_families(0.01);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].family, "diurnal");
        assert_eq!(moved[0].policy, PolicyKind::Fugu);
        assert!(moved[0].delta() < 0.0);
        let text = diff.summary(0.01);
        assert!(text.contains("family `diurnal` moved Fugu"), "{text}");
        assert!(!text.contains("family `hsdpa`"), "{text}");
        // Compensating family drift is caught even when the global means
        // agree: +0.1 on hsdpa, −0.1 on diurnal cancels exactly.
        let compensating = build(0.7, 0.4);
        let diff = compensating.diff(&baseline);
        assert!(diff.drifted(0.01).is_empty(), "global means cancel");
        assert_eq!(diff.drifted_families(0.01).len(), 2);
        assert!(!diff.is_clean(0.01));
        // A family present on one side only is structural.
        let mut reshaped = FleetReport::from_json(&baseline.to_json()).unwrap();
        reshaped.stats.per_family.pop();
        let diff = reshaped.diff(&baseline);
        assert_eq!(diff.families_only_in_baseline, vec!["diurnal".to_string()]);
        assert!(!diff.is_clean(f64::INFINITY));
        assert!(diff.summary(0.0).contains("trace family `diurnal` missing"));
    }

    #[test]
    fn family_keys_strip_at_the_first_dash() {
        assert_eq!(family_of("hsdpa-700k-s12"), "hsdpa");
        assert_eq!(family_of("cell4-003-900k"), "cell4");
        assert_eq!(family_of("diurnal-003-900k@x0.80+n200"), "diurnal");
        assert_eq!(family_of("t"), "t");
    }

    #[test]
    fn fold_cell_computes_gains_and_skips_zero_baseline() {
        let mk = |policy: &'static str, qoe01: f64| CellResult {
            video: "v".into(),
            genre: "Sports",
            trace: "t".into(),
            trace_mean_kbps: 1000.0,
            policy,
            qoe01,
            avg_bitrate_kbps: 1500.0,
            rebuffer_ratio: 0.05,
            delivered_bits: 1e8,
            intentional_stall_s: 0.5,
            bitrate_switches: 3,
        };
        let mut stats = FleetStats::new(&[PolicyKind::Bba, PolicyKind::Fugu], PolicyKind::Bba);
        stats.fold_cell(&[mk("BBA", 0.5), mk("Fugu", 0.6)]);
        stats.fold_cell(&[mk("BBA", 0.0), mk("Fugu", 0.4)]);
        assert_eq!(stats.sessions, 4);
        let fugu = stats.policy(PolicyKind::Fugu).unwrap();
        let gain = fugu.gain_vs_baseline.as_ref().unwrap();
        // Only the first cell contributes a gain (+20%); the zero-QoE
        // baseline cell is skipped, matching `qoe_gains_over`.
        assert_eq!(gain.stats.count(), 1);
        assert!((gain.stats.mean() - 20.0).abs() < 1e-9);
        assert!(stats
            .policy(PolicyKind::Bba)
            .unwrap()
            .gain_vs_baseline
            .is_none());
        assert!((fugu.intentional_stall_s - 1.0).abs() < 1e-12);
        assert_eq!(fugu.switch_hist.total(), 2);
    }
}
