//! Streaming aggregation for fleet runs.
//!
//! Everything here is an *online* accumulator folded in canonical scenario
//! order: QoE mean/variance via Welford's algorithm, fixed-bin histograms
//! for stall rates and bitrate switches, and a fixed-bin CDF of per-cell
//! QoE gains over a baseline policy. Memory is `O(policies × bins)`
//! regardless of how many million sessions stream through — the
//! per-session results are folded and dropped.

use sensei_core::{CellResult, PolicyKind};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A fixed-bin histogram over `[lo, hi]`; out-of-range values clamp into
/// the edge bins, so the total count always equals the number of
/// observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `bins` is zero or the range is not a finite, positive
    /// interval — bin layout is experiment setup, not a runtime condition.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi}]"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Folds one observation in (NaN clamps to the lowest bin).
    pub fn add(&mut self, x: f64) {
        let frac = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Inclusive upper edge of bin `i`.
    #[must_use]
    pub fn bin_upper_edge(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * (i as f64 + 1.0) / self.counts.len() as f64
    }

    /// Fraction of observations at or below `x` (by whole bins — the CDF
    /// read off the fixed bins). Returns 0 when empty.
    #[must_use]
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| self.bin_upper_edge(*i) <= x + 1e-12)
            .map(|(_, &c)| c)
            .sum();
        below as f64 / self.total as f64
    }
}

/// Fixed-bin CDF of per-cell QoE gains over the baseline policy, in
/// percent — the fleet-scale generalization of the paper's Fig. 12a.
#[derive(Debug, Clone, PartialEq)]
pub struct GainCdf {
    /// Gains binned over [-100, +100] %.
    pub hist: Histogram,
    /// Running mean/variance of the gains.
    pub stats: Welford,
    /// Exact count of strictly positive gains (the binned CDF would put a
    /// gain of exactly 0 into the first positive bin).
    positive: u64,
}

impl GainCdf {
    pub(crate) fn new() -> Self {
        Self {
            hist: Histogram::new(-100.0, 100.0, GAIN_BINS),
            stats: Welford::default(),
            positive: 0,
        }
    }

    pub(crate) fn add(&mut self, gain_pct: f64) {
        self.hist.add(gain_pct);
        self.stats.push(gain_pct);
        if gain_pct > 0.0 {
            self.positive += 1;
        }
    }

    /// Fraction of cells where the policy strictly beat the baseline.
    #[must_use]
    pub fn fraction_positive(&self) -> f64 {
        if self.stats.count() == 0 {
            return 0.0;
        }
        self.positive as f64 / self.stats.count() as f64
    }
}

const STALL_BINS: usize = 20;
const SWITCH_BINS: usize = 16;
const GAIN_BINS: usize = 40;
/// Switch histograms cover 0..=MAX_SWITCHES switches per session.
const MAX_SWITCHES: f64 = 64.0;

/// Streaming aggregates for one policy across the whole fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyStats {
    /// The policy.
    pub policy: PolicyKind,
    /// Sessions folded in.
    pub sessions: u64,
    /// True-QoE accumulator.
    pub qoe: Welford,
    /// Mean streamed bitrate accumulator (kbps).
    pub bitrate_kbps: Welford,
    /// Rebuffer-ratio accumulator.
    pub rebuffer_ratio: Welford,
    /// Stall-rate distribution: rebuffer ratio in 20 bins over [0, 1].
    pub stall_hist: Histogram,
    /// Bitrate-switch distribution: switches per session in 16 bins over
    /// [0, 64].
    pub switch_hist: Histogram,
    /// Total intentional stall seconds injected (SENSEI's pause action).
    pub intentional_stall_s: f64,
    /// QoE-gain CDF vs the baseline policy (`None` for the baseline
    /// itself).
    pub gain_vs_baseline: Option<GainCdf>,
}

impl PolicyStats {
    fn new(policy: PolicyKind, is_baseline: bool) -> Self {
        Self {
            policy,
            sessions: 0,
            qoe: Welford::default(),
            bitrate_kbps: Welford::default(),
            rebuffer_ratio: Welford::default(),
            stall_hist: Histogram::new(0.0, 1.0, STALL_BINS),
            switch_hist: Histogram::new(0.0, MAX_SWITCHES, SWITCH_BINS),
            intentional_stall_s: 0.0,
            gain_vs_baseline: (!is_baseline).then(GainCdf::new),
        }
    }

    fn fold(&mut self, cell: &CellResult) {
        self.sessions += 1;
        self.qoe.push(cell.qoe01);
        self.bitrate_kbps.push(cell.avg_bitrate_kbps);
        self.rebuffer_ratio.push(cell.rebuffer_ratio);
        self.stall_hist.add(cell.rebuffer_ratio);
        self.switch_hist.add(cell.bitrate_switches as f64);
        self.intentional_stall_s += cell.intentional_stall_s;
    }
}

/// The order-independent part of a fleet report: everything here is
/// bit-for-bit identical for the same experiment + matrix regardless of
/// worker count (the executor folds in canonical scenario order).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Total sessions simulated.
    pub sessions: u64,
    /// The gain baseline policy.
    pub baseline: PolicyKind,
    /// Per-policy aggregates, in matrix policy order.
    pub per_policy: Vec<PolicyStats>,
}

impl FleetStats {
    pub(crate) fn new(policies: &[PolicyKind], baseline: PolicyKind) -> Self {
        Self {
            sessions: 0,
            baseline,
            per_policy: policies
                .iter()
                .map(|&p| PolicyStats::new(p, p == baseline))
                .collect(),
        }
    }

    /// Folds one completed cell (all policies' results, in matrix policy
    /// order) into the aggregates.
    pub(crate) fn fold_cell(&mut self, cells: &[CellResult]) {
        debug_assert_eq!(cells.len(), self.per_policy.len());
        let base_idx = self
            .per_policy
            .iter()
            .position(|s| s.policy == self.baseline)
            .expect("baseline is in the policy axis");
        let base_qoe = cells[base_idx].qoe01;
        for (stats, cell) in self.per_policy.iter_mut().zip(cells) {
            self.sessions += 1;
            stats.fold(cell);
            if let Some(gain) = &mut stats.gain_vs_baseline {
                // Same skip rule as `sensei_core::qoe_gains_over`: cells
                // whose baseline bottomed out at 0 have no relative gain.
                if base_qoe > 0.0 {
                    gain.add((cell.qoe01 - base_qoe) / base_qoe * 100.0);
                }
            }
        }
    }

    /// Aggregates for one policy.
    #[must_use]
    pub fn policy(&self, kind: PolicyKind) -> Option<&PolicyStats> {
        self.per_policy.iter().find(|s| s.policy == kind)
    }
}

/// Outcome of a fleet run: the deterministic aggregates plus (wall-clock,
/// execution-dependent) throughput figures.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The order-independent aggregates — compare these across runs.
    pub stats: FleetStats,
    /// Workers the run used.
    pub workers: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: f64,
    /// Sessions per second of wall-clock time.
    pub sessions_per_sec: f64,
}

impl FleetReport {
    /// A compact human-readable table of the per-policy aggregates.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} sessions | {} workers | {:.1} s | {:.0} sessions/s",
            self.stats.sessions, self.workers, self.wall_time_s, self.sessions_per_sec
        );
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}",
            "policy", "mean QoE", "std", "stall%", "switches", "gain>0 (%)", "Δmean (%)"
        );
        for s in &self.stats.per_policy {
            let (pos, dmean) = s
                .gain_vs_baseline
                .as_ref()
                .map(|g| {
                    (
                        format!("{:.1}", g.fraction_positive() * 100.0),
                        format!("{:+.1}", g.stats.mean()),
                    )
                })
                .unwrap_or_else(|| ("base".to_string(), "base".to_string()));
            let _ = writeln!(
                out,
                "{:<24} {:>8.3} {:>8.3} {:>8.2} {:>8.1} {:>10} {:>9}",
                s.policy.label(),
                s.qoe.mean(),
                s.qoe.std_dev(),
                s.rebuffer_ratio.mean() * 100.0,
                s.mean_switches(),
                pos,
                dmean
            );
        }
        out
    }
}

impl PolicyStats {
    /// Mean bitrate switches per session, estimated from the fixed-bin
    /// histogram (bin midpoints — exact enough for reporting).
    #[must_use]
    pub fn mean_switches(&self) -> f64 {
        if self.switch_hist.total() == 0 {
            return 0.0;
        }
        let width = MAX_SWITCHES / SWITCH_BINS as f64;
        let weighted: f64 = self
            .switch_hist
            .counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 + 0.5) * width)
            .sum();
        weighted / self.switch_hist.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::default();
        for x in xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_and_cdfs() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [-0.5, 0.1, 0.3, 0.6, 0.9, 2.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert!((h.cdf_at(0.5) - 0.5).abs() < 1e-12);
        assert!((h.cdf_at(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gain_cdf_fraction_positive() {
        let mut g = GainCdf::new();
        for x in [-20.0, -5.0, 10.0, 30.0] {
            g.add(x);
        }
        assert!((g.fraction_positive() - 0.5).abs() < 1e-12);
        assert!((g.stats.mean() - 3.75).abs() < 1e-12);
        // A tie with the baseline (gain exactly 0) is not a win.
        let mut tie = GainCdf::new();
        tie.add(0.0);
        tie.add(5.0);
        assert!((tie.fraction_positive() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fold_cell_computes_gains_and_skips_zero_baseline() {
        let mk = |policy: &'static str, qoe01: f64| CellResult {
            video: "v".into(),
            genre: "Sports",
            trace: "t".into(),
            trace_mean_kbps: 1000.0,
            policy,
            qoe01,
            avg_bitrate_kbps: 1500.0,
            rebuffer_ratio: 0.05,
            delivered_bits: 1e8,
            intentional_stall_s: 0.5,
            bitrate_switches: 3,
        };
        let mut stats = FleetStats::new(&[PolicyKind::Bba, PolicyKind::Fugu], PolicyKind::Bba);
        stats.fold_cell(&[mk("BBA", 0.5), mk("Fugu", 0.6)]);
        stats.fold_cell(&[mk("BBA", 0.0), mk("Fugu", 0.4)]);
        assert_eq!(stats.sessions, 4);
        let fugu = stats.policy(PolicyKind::Fugu).unwrap();
        let gain = fugu.gain_vs_baseline.as_ref().unwrap();
        // Only the first cell contributes a gain (+20%); the zero-QoE
        // baseline cell is skipped, matching `qoe_gains_over`.
        assert_eq!(gain.stats.count(), 1);
        assert!((gain.stats.mean() - 20.0).abs() < 1e-9);
        assert!(stats
            .policy(PolicyKind::Bba)
            .unwrap()
            .gain_vs_baseline
            .is_none());
        assert!((fugu.intentional_stall_s - 1.0).abs() < 1e-12);
        assert_eq!(fugu.switch_hist.total(), 2);
    }
}
