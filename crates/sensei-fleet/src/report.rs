//! Streaming aggregation for fleet runs.
//!
//! Everything here is an *online* accumulator with an exact, mergeable
//! state: QoE mean/variance from fixed-point integer moment sums
//! ([`Moments`]), fixed-bin histograms for stall rates and bitrate
//! switches, and a fixed-bin CDF of per-cell QoE gains over a baseline
//! policy. Memory is `O(policies × bins)` regardless of how many million
//! sessions stream through — the per-session results are folded and
//! dropped.
//!
//! **The merge law.** Every accumulator is integer sums (counts,
//! quantized moments, histogram bins), so [`FleetStats::merge`] is
//! exactly associative and commutative — the same contract
//! `sensei-telemetry` proves for its all-`u64` shards. The deterministic
//! result is *defined* as the reduction over per-tile partials
//! ([`TileStats`]) in canonical tile order; because merging is exact,
//! any grouping of that reduction — worker shards, batch widths, whole
//! processes ([`merge_reports`]) — yields the bit-identical aggregates.

use crate::json::{self, obj, Json};
use crate::FleetError;
use sensei_core::{CellResult, PolicyKind};
use sensei_telemetry::{Counter, Hist, Phase, TelemetryShard, TelemetrySnapshot};

/// Scale of the fixed-point quantization: observations are stored as
/// integer multiples of 2⁻⁴⁰ (≈ 9.1e-13, far below any tolerance the
/// reports read at). A power of two, so `x * Q_SCALE` is exact IEEE-754
/// for every in-range `x` — quantization rounds once, never twice.
const Q_SCALE: f64 = (1u64 << 40) as f64;

/// Quantizes one observation onto the fixed-point grid. Deterministic
/// and total: the float → int cast sends NaN to 0 and saturates
/// out-of-range values, so every input maps to exactly one integer.
// The saturating float→int conversion IS the documented total
// quantization (see the sensei-lint allow at the cast site).
#[allow(clippy::cast_possible_truncation)]
fn quantize(x: f64) -> i128 {
    // sensei-lint: allow(no-lossy-cast) — saturating float→int IS the documented total quantization
    (x * Q_SCALE).round() as i128
}

/// Exact mean/variance accumulator over fixed-point integer moment sums
/// — the mergeable replacement for a Welford accumulator.
///
/// Observations are quantized to integer multiples of 2⁻⁴⁰ and
/// accumulated as `i128` sums of `x` and `x²`, so folding is plain
/// integer addition: [`Self::merge`] is exactly associative and
/// commutative, and any shard grouping of the same observations yields
/// the bit-identical state. (Welford pairwise merges — Chan et al.'s
/// formulas — are *statistically* sound but not bit-associative, which
/// would leak the worker count and shard split into the aggregates.)
/// Derived statistics are computed from the exact sums at read time;
/// quantization error is ≤ 2⁻⁴¹ per observation, invisible at reporting
/// precision. Headroom: with `x²` around 2²² (kbps-scale bitrates
/// squared), the `i128` sum has ~2⁶⁰ observations of room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Moments {
    count: u64,
    sum_q: i128,
    sumsq_q: i128,
}

impl Moments {
    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count = self.count.wrapping_add(1);
        self.sum_q = self.sum_q.wrapping_add(quantize(x));
        self.sumsq_q = self.sumsq_q.wrapping_add(quantize(x * x));
    }

    /// Folds another accumulator in. Exact integer sums (wrapping, so
    /// the operation is total), hence independent of merge order and
    /// grouping.
    pub fn merge(&mut self, other: &Moments) {
        self.count = self.count.wrapping_add(other.count);
        self.sum_q = self.sum_q.wrapping_add(other.sum_q);
        self.sumsq_q = self.sumsq_q.wrapping_add(other.sumsq_q);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty), derived from the exact sum in one fixed
    /// operation order.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_q as f64 / Q_SCALE / self.count as f64
        }
    }

    /// Population variance (0 with fewer than two observations),
    /// computed from the exact moment sums and clamped at 0 against
    /// cancellation error.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let sum = self.sum_q as f64 / Q_SCALE;
        let sumsq = self.sumsq_q as f64 / Q_SCALE;
        ((sumsq - sum * sum / n) / n).max(0.0)
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Raw quantized Σx — exposed for lossless persistence.
    #[must_use]
    pub fn sum_q(&self) -> i128 {
        self.sum_q
    }

    /// Raw quantized Σx² — exposed for lossless persistence.
    #[must_use]
    pub fn sumsq_q(&self) -> i128 {
        self.sumsq_q
    }

    /// Restores an accumulator from its persisted raw state.
    #[must_use]
    pub fn from_raw(count: u64, sum_q: i128, sumsq_q: i128) -> Self {
        Self {
            count,
            sum_q,
            sumsq_q,
        }
    }
}

/// A fixed-bin histogram over `[lo, hi]`; out-of-range values clamp into
/// the edge bins, so the total count always equals the number of
/// observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `bins` is zero or the range is not a finite, positive
    /// interval — bin layout is experiment setup, not a runtime condition.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi}]"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Folds one observation in (NaN clamps to the lowest bin).
    // Bin index: `frac` is clamped to [0, 1], so the product is a small
    // non-negative integer (see the sensei-lint allow at the cast site).
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn add(&mut self, x: f64) {
        let frac = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        // sensei-lint: allow(no-lossy-cast) — frac ∈ [0,1] so the floor cast is the binning rule; .min clamps the hi edge
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower edge of the histogram range.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Inclusive upper edge of bin `i`.
    #[must_use]
    pub fn bin_upper_edge(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * (i as f64 + 1.0) / self.counts.len() as f64
    }

    /// Zeroes the counts, keeping the bin layout (for reusable partials).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }

    /// Folds another histogram's counts in — element-wise wrapping sums,
    /// so merge order and grouping cannot matter.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Shard`] when the bin layouts differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), FleetError> {
        if self.lo != other.lo || self.hi != other.hi || self.counts.len() != other.counts.len() {
            return Err(FleetError::Shard(format!(
                "histogram layout mismatch: [{}, {}] × {} bins vs [{}, {}] × {} bins",
                self.lo,
                self.hi,
                self.counts.len(),
                other.lo,
                other.hi,
                other.counts.len()
            )));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.wrapping_add(*b);
        }
        self.total = self.total.wrapping_add(other.total);
        Ok(())
    }

    /// Restores a histogram from its persisted state. The total is
    /// recomputed from the counts.
    ///
    /// # Panics
    ///
    /// Panics on an empty bin list or an invalid range, exactly like
    /// [`Self::new`].
    #[must_use]
    pub fn from_parts(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi}]"
        );
        let total = counts.iter().sum();
        Self {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Fraction of observations at or below `x` (by whole bins — the CDF
    /// read off the fixed bins). Returns 0 when empty.
    ///
    /// Edge comparison uses a tolerance *relative to the bin width*: an
    /// absolute slop (the old `1e-12`) is below one ulp once ranges reach
    /// kbps magnitudes (one ulp of 6000.0 is ≈ 9.1e-13 per unit, so edge
    /// arithmetic error easily exceeds a fixed 1e-12), which made
    /// exact-bin-edge queries fall one whole bin short on throughput
    /// histograms while working fine on percent scales.
    #[must_use]
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let eps = (self.hi - self.lo) / self.counts.len() as f64 * 1e-9;
        let below: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| self.bin_upper_edge(*i) <= x + eps)
            .map(|(_, &c)| c)
            .sum();
        below as f64 / self.total as f64
    }
}

/// Fixed-bin CDF of per-cell QoE gains over the baseline policy, in
/// percent — the fleet-scale generalization of the paper's Fig. 12a.
#[derive(Debug, Clone, PartialEq)]
pub struct GainCdf {
    /// Gains binned over [-100, +100] %.
    pub hist: Histogram,
    /// Running mean/variance of the gains.
    pub stats: Moments,
    /// Exact count of strictly positive gains (the binned CDF would put a
    /// gain of exactly 0 into the first positive bin).
    positive: u64,
}

impl GainCdf {
    pub(crate) fn new() -> Self {
        Self {
            hist: Histogram::new(-100.0, 100.0, GAIN_BINS),
            stats: Moments::default(),
            positive: 0,
        }
    }

    pub(crate) fn add(&mut self, gain_pct: f64) {
        self.hist.add(gain_pct);
        self.stats.push(gain_pct);
        if gain_pct > 0.0 {
            self.positive += 1;
        }
    }

    fn merge(&mut self, other: &GainCdf) -> Result<(), FleetError> {
        self.hist.merge(&other.hist)?;
        self.stats.merge(&other.stats);
        self.positive = self.positive.wrapping_add(other.positive);
        Ok(())
    }

    fn reset(&mut self) {
        self.hist.reset();
        self.stats = Moments::default();
        self.positive = 0;
    }

    /// Fraction of cells where the policy strictly beat the baseline.
    #[must_use]
    pub fn fraction_positive(&self) -> f64 {
        if self.stats.count() == 0 {
            return 0.0;
        }
        self.positive as f64 / self.stats.count() as f64
    }

    /// Exact count of strictly positive gains — exposed for persistence.
    #[must_use]
    pub fn positive(&self) -> u64 {
        self.positive
    }

    /// Restores a gain CDF from its persisted state.
    #[must_use]
    pub fn from_parts(hist: Histogram, stats: Moments, positive: u64) -> Self {
        Self {
            hist,
            stats,
            positive,
        }
    }
}

const STALL_BINS: usize = 20;
const SWITCH_BINS: usize = 16;
const GAIN_BINS: usize = 40;
/// Switch histograms cover 0..=MAX_SWITCHES switches per session.
const MAX_SWITCHES: f64 = 64.0;

/// Streaming aggregates for one policy across the whole fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyStats {
    /// The policy.
    pub policy: PolicyKind,
    /// Sessions folded in.
    pub sessions: u64,
    /// True-QoE accumulator.
    pub qoe: Moments,
    /// Mean streamed bitrate accumulator (kbps).
    pub bitrate_kbps: Moments,
    /// Rebuffer-ratio accumulator.
    pub rebuffer_ratio: Moments,
    /// Stall-rate distribution: rebuffer ratio in 20 bins over [0, 1].
    pub stall_hist: Histogram,
    /// Bitrate-switch distribution: switches per session in 16 bins over
    /// [0, 64].
    pub switch_hist: Histogram,
    /// Total intentional stall seconds, quantized so partial sums merge
    /// exactly (read via [`Self::intentional_stall_s`]).
    intentional_stall_q: i128,
    /// QoE-gain CDF vs the baseline policy (`None` for the baseline
    /// itself).
    pub gain_vs_baseline: Option<GainCdf>,
}

impl PolicyStats {
    fn new(policy: PolicyKind, is_baseline: bool) -> Self {
        Self {
            policy,
            sessions: 0,
            qoe: Moments::default(),
            bitrate_kbps: Moments::default(),
            rebuffer_ratio: Moments::default(),
            stall_hist: Histogram::new(0.0, 1.0, STALL_BINS),
            switch_hist: Histogram::new(0.0, MAX_SWITCHES, SWITCH_BINS),
            intentional_stall_q: 0,
            gain_vs_baseline: (!is_baseline).then(GainCdf::new),
        }
    }

    fn fold(&mut self, cell: &CellResult) {
        self.sessions += 1;
        self.qoe.push(cell.qoe01);
        self.bitrate_kbps.push(cell.avg_bitrate_kbps);
        self.rebuffer_ratio.push(cell.rebuffer_ratio);
        self.stall_hist.add(cell.rebuffer_ratio);
        self.switch_hist.add(cell.bitrate_switches as f64);
        self.intentional_stall_q = self
            .intentional_stall_q
            .wrapping_add(quantize(cell.intentional_stall_s));
    }

    /// Total intentional stall seconds injected (SENSEI's pause action),
    /// read off the exact quantized sum.
    #[must_use]
    pub fn intentional_stall_s(&self) -> f64 {
        self.intentional_stall_q as f64 / Q_SCALE
    }

    fn merge(&mut self, other: &PolicyStats) -> Result<(), FleetError> {
        if self.policy != other.policy
            || self.gain_vs_baseline.is_some() != other.gain_vs_baseline.is_some()
        {
            return Err(FleetError::Shard(format!(
                "policy aggregate mismatch: {} vs {}",
                self.policy.label(),
                other.policy.label()
            )));
        }
        self.sessions = self.sessions.wrapping_add(other.sessions);
        self.qoe.merge(&other.qoe);
        self.bitrate_kbps.merge(&other.bitrate_kbps);
        self.rebuffer_ratio.merge(&other.rebuffer_ratio);
        self.stall_hist.merge(&other.stall_hist)?;
        self.switch_hist.merge(&other.switch_hist)?;
        self.intentional_stall_q = self
            .intentional_stall_q
            .wrapping_add(other.intentional_stall_q);
        if let (Some(a), Some(b)) = (&mut self.gain_vs_baseline, &other.gain_vs_baseline) {
            a.merge(b)?;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.sessions = 0;
        self.qoe = Moments::default();
        self.bitrate_kbps = Moments::default();
        self.rebuffer_ratio = Moments::default();
        self.stall_hist.reset();
        self.switch_hist.reset();
        self.intentional_stall_q = 0;
        if let Some(g) = &mut self.gain_vs_baseline {
            g.reset();
        }
    }
}

/// Per-policy QoE aggregates conditioned on one **trace family** — the
/// scenario-diversity counterpart of the global [`PolicyStats`]. Memory
/// is `O(families × policies)`, so family conditioning rides along the
/// streaming fold for free.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyStats {
    /// Family key, derived from the trace-name prefix (`hsdpa`, `fcc`,
    /// `diurnal`, `burst`, `cell4`, …) — see [`family_of`].
    pub family: String,
    /// Per-policy QoE accumulators, in matrix policy order.
    pub per_policy: Vec<FamilyPolicyStats>,
}

/// One policy's QoE accumulator within one trace family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyPolicyStats {
    /// The policy.
    pub policy: PolicyKind,
    /// Sessions of this family folded in.
    pub sessions: u64,
    /// True-QoE accumulator over this family's sessions.
    pub qoe: Moments,
}

/// The family key of a trace name: the prefix before the first `-`
/// (generated traces are named `{family}-…`, and perturbation suffixes
/// append at the end, so the prefix survives `@x…`/`+n…` decoration).
/// Names without a `-` are their own family.
#[must_use]
pub fn family_of(trace_name: &str) -> &str {
    trace_name.split('-').next().unwrap_or(trace_name)
}

/// The order-independent part of a fleet report: everything here is
/// bit-for-bit identical for the same experiment + matrix regardless of
/// worker count, batch width, or shard split — the result is defined as
/// the canonical-tile-order reduction of [`TileStats`] partials, and the
/// exact merge makes every evaluation grouping agree with it.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Total sessions simulated.
    pub sessions: u64,
    /// The gain baseline policy.
    pub baseline: PolicyKind,
    /// Per-policy aggregates, in matrix policy order.
    pub per_policy: Vec<PolicyStats>,
    /// Per-trace-family aggregates, sorted by family key — a
    /// merge-order-free ordering, unlike the old first-seen fold order.
    pub per_family: Vec<FamilyStats>,
}

impl FleetStats {
    /// Fresh all-zero aggregates over a policy axis — the identity
    /// element of [`Self::merge`] for that axis.
    #[must_use]
    pub fn new(policies: &[PolicyKind], baseline: PolicyKind) -> Self {
        Self {
            sessions: 0,
            baseline,
            per_policy: policies
                .iter()
                .map(|&p| PolicyStats::new(p, p == baseline))
                .collect(),
            per_family: Vec::new(),
        }
    }

    /// Zeroes the aggregates, keeping the axes — so a reusable partial
    /// never reallocates its fixed-shape state.
    pub fn reset(&mut self) {
        self.sessions = 0;
        for s in &mut self.per_policy {
            s.reset();
        }
        self.per_family.clear();
    }

    /// Folds another partial aggregate over the **same axes** in — the
    /// merge half of the collection contract. Every accumulator merges
    /// as exact integer sums, so this is associative and commutative:
    /// the canonical-tile-order reduction the determinism contract is
    /// defined over can be evaluated in any grouping (worker shards,
    /// process shards) without moving a bit.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Shard`] when the two sides disagree on the
    /// baseline, the policy axis, or an accumulator layout.
    pub fn merge(&mut self, other: &FleetStats) -> Result<(), FleetError> {
        if self.baseline != other.baseline {
            return Err(FleetError::Shard(format!(
                "merge baseline mismatch: {} vs {}",
                self.baseline.label(),
                other.baseline.label()
            )));
        }
        if self.per_policy.len() != other.per_policy.len()
            || self
                .per_policy
                .iter()
                .zip(&other.per_policy)
                .any(|(a, b)| a.policy != b.policy)
        {
            return Err(FleetError::Shard("merge policy axes differ".into()));
        }
        self.sessions = self.sessions.wrapping_add(other.sessions);
        for (a, b) in self.per_policy.iter_mut().zip(&other.per_policy) {
            a.merge(b)?;
        }
        for bf in &other.per_family {
            match self
                .per_family
                .binary_search_by(|f| f.family.as_str().cmp(&bf.family))
            {
                Ok(i) => {
                    let af = &mut self.per_family[i];
                    if af.per_policy.len() != bf.per_policy.len() {
                        return Err(FleetError::Shard(format!(
                            "family `{}` policy axes differ",
                            bf.family
                        )));
                    }
                    for (a, b) in af.per_policy.iter_mut().zip(&bf.per_policy) {
                        a.sessions = a.sessions.wrapping_add(b.sessions);
                        a.qoe.merge(&b.qoe);
                    }
                }
                Err(i) => self.per_family.insert(i, bf.clone()),
            }
        }
        Ok(())
    }

    /// Folds one completed cell (all policies' results, in matrix policy
    /// order) into the aggregates.
    pub(crate) fn fold_cell(&mut self, cells: &[CellResult]) {
        debug_assert_eq!(cells.len(), self.per_policy.len());
        let base_idx = self
            .per_policy
            .iter()
            .position(|s| s.policy == self.baseline)
            .expect("baseline is in the policy axis");
        let base_qoe = cells[base_idx].qoe01;
        for (stats, cell) in self.per_policy.iter_mut().zip(cells) {
            self.sessions += 1;
            stats.fold(cell);
            if let Some(gain) = &mut stats.gain_vs_baseline {
                // Same skip rule as `sensei_core::qoe_gains_over`: cells
                // whose baseline bottomed out at 0 have no relative gain.
                if base_qoe > 0.0 {
                    gain.add((cell.qoe01 - base_qoe) / base_qoe * 100.0);
                }
            }
        }
        // Family-conditional fold: every cell of the group shares the
        // trace, so the family is keyed once off the first cell. The
        // family list stays sorted by key — an ordering no fold or merge
        // order can perturb.
        let family = family_of(&cells[0].trace);
        let idx = match self
            .per_family
            .binary_search_by(|f| f.family.as_str().cmp(family))
        {
            Ok(idx) => idx,
            Err(idx) => {
                self.per_family.insert(
                    idx,
                    FamilyStats {
                        family: family.to_string(),
                        per_policy: self
                            .per_policy
                            .iter()
                            .map(|s| FamilyPolicyStats {
                                policy: s.policy,
                                sessions: 0,
                                qoe: Moments::default(),
                            })
                            .collect(),
                    },
                );
                idx
            }
        };
        for (stats, cell) in self.per_family[idx].per_policy.iter_mut().zip(cells) {
            stats.sessions += 1;
            stats.qoe.push(cell.qoe01);
        }
    }

    /// Aggregates for one policy.
    #[must_use]
    pub fn policy(&self, kind: PolicyKind) -> Option<&PolicyStats> {
        self.per_policy.iter().find(|s| s.policy == kind)
    }

    /// Aggregates for one trace family.
    #[must_use]
    pub fn family(&self, family: &str) -> Option<&FamilyStats> {
        self.per_family.iter().find(|f| f.family == family)
    }
}

/// One tile's partial aggregates — the unit of the canonical reduction.
///
/// The determinism contract is defined over these: fold each tile's
/// cells (in cell order) into a `TileStats`, then reduce the tiles in
/// canonical tile order with [`FleetStats::merge`]. Because every
/// accumulator merges exactly, the executor is free to evaluate that
/// reduction in any grouping — each worker folds its own tiles into a
/// shard-local partial and the collector merges O(workers) partials —
/// and still produce the bit-identical [`FleetStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct TileStats {
    stats: FleetStats,
}

impl TileStats {
    /// Fresh tile partial over the given axes.
    #[must_use]
    pub fn new(policies: &[PolicyKind], baseline: PolicyKind) -> Self {
        Self {
            stats: FleetStats::new(policies, baseline),
        }
    }

    /// Zeroes the partial for reuse on the next tile.
    pub fn reset(&mut self) {
        self.stats.reset();
    }

    /// Folds one completed cell (all policies' results, in matrix policy
    /// order) into the partial.
    ///
    /// # Panics
    ///
    /// Panics when the baseline policy is missing from the axes the
    /// partial was built over.
    pub fn fold_cell(&mut self, cells: &[CellResult]) {
        self.stats.fold_cell(cells);
    }

    /// The folded partial.
    #[must_use]
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }
}

/// Coarse wall-clock breakdown of one fleet run, recorded by plain
/// `Instant` reads whether or not full telemetry is on: `setup_s` is the
/// executor's pre-scope work (matrix checks, channel construction),
/// `execute_s` the worker scope's wall time — simulation plus each
/// worker's own shard-local folding (the `shard_fold` telemetry phase
/// breaks the latter out) — and `collect_s` the final reduction of the
/// O(workers) shard partials after the scope ends. The three sum to
/// approximately `wall_time_s`. Collection no longer scales with session
/// count: `collect_s` covers `workers − 1` merges of fixed-shape
/// partials, however many million sessions streamed through.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunPhases {
    /// Seconds spent before the worker scope started.
    pub setup_s: f64,
    /// Seconds of worker-scope wall time (simulation + shard-local
    /// folds).
    pub execute_s: f64,
    /// Seconds the collector spent merging the shard partials at the
    /// end.
    pub collect_s: f64,
}

/// The tile slice a sharded run covered — attached to partial
/// [`FleetReport`]s so [`merge_reports`] can verify that N partials
/// actually partition one matrix before combining them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlice {
    /// This shard's index in `0..count`.
    pub index: u64,
    /// Total shards in the split.
    pub count: u64,
    /// First tile of this shard's contiguous range (inclusive).
    pub tile_lo: u64,
    /// One past the last tile of the range (exclusive).
    pub tile_hi: u64,
    /// Tiles in the whole (unsharded) matrix.
    pub total_tiles: u64,
}

/// Outcome of a fleet run: the deterministic aggregates plus (wall-clock,
/// execution-dependent) throughput figures.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The order-independent aggregates — compare these across runs.
    pub stats: FleetStats,
    /// Workers the run used.
    pub workers: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: f64,
    /// Sessions per second of wall-clock time.
    pub sessions_per_sec: f64,
    /// Setup / execute / collect wall-time split (always recorded).
    pub phases: RunPhases,
    /// Merged telemetry shards, when the run had telemetry enabled.
    /// Serialized in the optional `telemetry` JSON section, which
    /// [`Self::diff`] ignores — only [`FleetStats`] participate in
    /// baseline comparisons.
    pub telemetry: Option<TelemetrySnapshot>,
    /// The tile slice this report covers when it came from a sharded run
    /// (`FleetConfig::with_shard`); `None` for a whole-matrix run or a
    /// [`merge_reports`] result.
    pub shard: Option<ShardSlice>,
}

impl FleetReport {
    /// A compact human-readable table of the per-policy aggregates.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} sessions | {} workers | {:.1} s | {:.0} sessions/s",
            self.stats.sessions, self.workers, self.wall_time_s, self.sessions_per_sec
        );
        let _ = writeln!(
            out,
            "phases: setup {:.3} s | execute {:.3} s | collect {:.3} s",
            self.phases.setup_s, self.phases.execute_s, self.phases.collect_s
        );
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}",
            "policy", "mean QoE", "std", "stall%", "switches", "gain>0 (%)", "Δmean (%)"
        );
        for s in &self.stats.per_policy {
            let (pos, dmean) = s
                .gain_vs_baseline
                .as_ref()
                .map(|g| {
                    (
                        format!("{:.1}", g.fraction_positive() * 100.0),
                        format!("{:+.1}", g.stats.mean()),
                    )
                })
                .unwrap_or_else(|| ("base".to_string(), "base".to_string()));
            let _ = writeln!(
                out,
                "{:<24} {:>8.3} {:>8.3} {:>8.2} {:>8.1} {:>10} {:>9}",
                s.policy.label(),
                s.qoe.mean(),
                s.qoe.std_dev(),
                s.rebuffer_ratio.mean() * 100.0,
                s.mean_switches(),
                pos,
                dmean
            );
        }
        out
    }
}

fn shard_slice(report: &FleetReport) -> Result<ShardSlice, FleetError> {
    report.shard.ok_or_else(|| {
        FleetError::Shard(
            "merge_reports needs partial (sharded) reports; an input has no shard section".into(),
        )
    })
}

/// Combines N partial reports — one per shard of a shard-plan split —
/// into the whole-matrix report, bit-identical in its [`FleetStats`] to
/// the single-process run (exact merges; see [`FleetStats::merge`]).
///
/// Wall-clock fields combine as a parallel execution would: `wall_time_s`
/// is the slowest shard's, `workers` the fleet-wide total, throughput the
/// total sessions over the slowest shard's wall time, and the phase
/// splits sum. Telemetry merges when every partial carries it (otherwise
/// the merged report has none).
///
/// # Errors
///
/// Returns [`FleetError::Shard`] unless the inputs are exactly one
/// report per shard index `0..count`, agreeing on the shard count and
/// total tile count, with ranges that partition `0..total_tiles` — and
/// propagates stats-merge failures when aggregates disagree on axes.
pub fn merge_reports(reports: &[FleetReport]) -> Result<FleetReport, FleetError> {
    let first = reports
        .first()
        .ok_or_else(|| FleetError::Shard("merge_reports needs at least one report".into()))?;
    let first_slice = shard_slice(first)?;
    let count = first_slice.count;
    if u64::try_from(reports.len()).ok() != Some(count) {
        return Err(FleetError::Shard(format!(
            "shard split expects {count} reports, got {}",
            reports.len()
        )));
    }
    let mut by_index: Vec<Option<&FleetReport>> = vec![None; reports.len()];
    for report in reports {
        let slice = shard_slice(report)?;
        if slice.count != count || slice.total_tiles != first_slice.total_tiles {
            return Err(FleetError::Shard(format!(
                "shard {}/{} over {} tiles does not match the first report's split ({count} \
                 shards over {} tiles)",
                slice.index, slice.count, slice.total_tiles, first_slice.total_tiles
            )));
        }
        let slot = usize::try_from(slice.index)
            .ok()
            .and_then(|i| by_index.get_mut(i))
            .ok_or_else(|| {
                FleetError::Shard(format!(
                    "shard index {} out of range for count {count}",
                    slice.index
                ))
            })?;
        if slot.is_some() {
            return Err(FleetError::Shard(format!(
                "duplicate shard index {}",
                slice.index
            )));
        }
        *slot = Some(report);
    }
    // N slots, N distinct in-range indices: every slot is filled.
    let ordered: Vec<&FleetReport> = by_index
        .into_iter()
        .map(|slot| slot.expect("pigeonhole"))
        .collect();
    // The ranges must tile 0..total_tiles with no gap or overlap.
    let mut next_tile = 0;
    for report in &ordered {
        let slice = report.shard.expect("validated above");
        if slice.tile_lo != next_tile || slice.tile_hi < slice.tile_lo {
            return Err(FleetError::Shard(format!(
                "shard {} covers tiles [{}, {}) but the previous shard ended at {next_tile}",
                slice.index, slice.tile_lo, slice.tile_hi
            )));
        }
        next_tile = slice.tile_hi;
    }
    if next_tile != first_slice.total_tiles {
        return Err(FleetError::Shard(format!(
            "shard ranges cover {next_tile} of {} tiles",
            first_slice.total_tiles
        )));
    }
    let mut stats = ordered[0].stats.clone();
    for report in &ordered[1..] {
        stats.merge(&report.stats)?;
    }
    // sensei-lint: allow(no-float-accumulation) — max-fold over wall times; observability only, diff() ignores it
    let wall_time_s = ordered.iter().map(|r| r.wall_time_s).fold(0.0, f64::max);
    let mut phases = RunPhases::default();
    for r in &ordered {
        // sensei-lint: allow(no-float-accumulation) — RunPhases are wall-clock observability outside the merge law
        phases.setup_s += r.phases.setup_s;
        // sensei-lint: allow(no-float-accumulation) — RunPhases are wall-clock observability outside the merge law
        phases.execute_s += r.phases.execute_s;
        // sensei-lint: allow(no-float-accumulation) — RunPhases are wall-clock observability outside the merge law
        phases.collect_s += r.phases.collect_s;
    }
    let telemetry = if ordered.iter().all(|r| r.telemetry.is_some()) {
        let mut shard = TelemetryShard::new();
        for r in &ordered {
            shard.merge(&r.telemetry.as_ref().expect("all present").shard);
        }
        Some(TelemetrySnapshot::from_shard(shard))
    } else {
        None
    };
    Ok(FleetReport {
        sessions_per_sec: if wall_time_s > 0.0 {
            stats.sessions as f64 / wall_time_s
        } else {
            0.0
        },
        stats,
        workers: ordered.iter().map(|r| r.workers).sum(),
        wall_time_s,
        phases,
        telemetry,
        shard: None,
    })
}

/// Version tag of the persisted report format; bumped on any schema
/// change so stale baselines fail with a clear message instead of a
/// field-level parse error. `/2` added the per-family aggregates; `/3`
/// switched the moment accumulators to exact quantized integer sums and
/// added the `shard` section partial reports carry.
const FORMAT_TAG: &str = "sensei-fleet-report/3";

fn moments_to_json(m: &Moments) -> Json {
    // The i128 sums cannot ride in a JSON number (f64 mantissa), so they
    // persist as decimal strings — exact round trip by construction.
    obj([
        ("count", Json::Num(m.count() as f64)),
        ("sum_q", Json::Str(m.sum_q().to_string())),
        ("sumsq_q", Json::Str(m.sumsq_q().to_string())),
    ])
}

fn hist_to_json(h: &Histogram) -> Json {
    obj([
        ("lo", Json::Num(h.lo())),
        ("hi", Json::Num(h.hi())),
        (
            "counts",
            Json::Arr(h.counts().iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
    ])
}

/// Field-lookup helpers for deserialization; every miss names the path
/// it failed at so a corrupted baseline is diagnosable.
fn field<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, FleetError> {
    v.get(key)
        .ok_or_else(|| FleetError::Persist(format!("missing field `{ctx}.{key}`")))
}

fn num_field(v: &Json, key: &str, ctx: &str) -> Result<f64, FleetError> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| FleetError::Persist(format!("field `{ctx}.{key}` is not a number")))
}

fn u64_field(v: &Json, key: &str, ctx: &str) -> Result<u64, FleetError> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| FleetError::Persist(format!("field `{ctx}.{key}` is not a whole count")))
}

/// Quantized sums persist as decimal strings (`i128` does not fit in a
/// JSON number).
fn i128_field(v: &Json, key: &str, ctx: &str) -> Result<i128, FleetError> {
    field(v, key, ctx)?
        .as_str()
        .and_then(|s| s.parse::<i128>().ok())
        .ok_or_else(|| {
            FleetError::Persist(format!(
                "field `{ctx}.{key}` is not a decimal integer string"
            ))
        })
}

fn moments_from_json(v: &Json, ctx: &str) -> Result<Moments, FleetError> {
    Ok(Moments::from_raw(
        u64_field(v, "count", ctx)?,
        i128_field(v, "sum_q", ctx)?,
        i128_field(v, "sumsq_q", ctx)?,
    ))
}

fn hist_from_json(v: &Json, ctx: &str) -> Result<Histogram, FleetError> {
    let lo = num_field(v, "lo", ctx)?;
    let hi = num_field(v, "hi", ctx)?;
    let counts = field(v, "counts", ctx)?
        .as_arr()
        .ok_or_else(|| FleetError::Persist(format!("field `{ctx}.counts` is not an array")))?
        .iter()
        .map(|c| {
            c.as_u64()
                .ok_or_else(|| FleetError::Persist(format!("`{ctx}.counts` entry is not a count")))
        })
        .collect::<Result<Vec<u64>, _>>()?;
    if counts.is_empty() || !(lo.is_finite() && hi.is_finite() && lo < hi) {
        return Err(FleetError::Persist(format!(
            "`{ctx}` has an invalid histogram layout [{lo}, {hi}] × {} bins",
            counts.len()
        )));
    }
    Ok(Histogram::from_parts(lo, hi, counts))
}

fn telemetry_to_json(t: &TelemetrySnapshot) -> Json {
    obj([
        (
            "counters",
            obj(Counter::ALL.map(|c| (c.name(), Json::Num(t.counter(c) as f64)))),
        ),
        (
            "phases",
            obj(Phase::ALL.map(|p| {
                (
                    p.name(),
                    obj([
                        ("calls", Json::Num(t.shard.phase_calls(p) as f64)),
                        ("ns", Json::Num(t.shard.phase_ns(p) as f64)),
                    ]),
                )
            })),
        ),
        (
            "hists",
            obj(Hist::ALL.map(|h| {
                (
                    h.name(),
                    Json::Arr(
                        t.shard
                            .hist(h)
                            .iter()
                            .map(|&c| Json::Num(c as f64))
                            .collect(),
                    ),
                )
            })),
        ),
    ])
}

/// Parses a `telemetry` section written by [`telemetry_to_json`]. Names
/// absent from the document default to zero and unknown names are
/// ignored, so the section survives catalog growth in either direction.
fn telemetry_from_json(v: &Json) -> Result<TelemetrySnapshot, FleetError> {
    let mut shard = TelemetryShard::new();
    let counters = field(v, "counters", "telemetry")?;
    for c in Counter::ALL {
        if let Some(n) = counters.get(c.name()) {
            shard.counters[c.idx()] = n.as_u64().ok_or_else(|| {
                FleetError::Persist(format!("`telemetry.counters.{}` is not a count", c.name()))
            })?;
        }
    }
    let phases = field(v, "phases", "telemetry")?;
    for p in Phase::ALL {
        if let Some(entry) = phases.get(p.name()) {
            let ctx = format!("telemetry.phases.{}", p.name());
            shard.phase_calls[p.idx()] = u64_field(entry, "calls", &ctx)?;
            shard.phase_ns[p.idx()] = u64_field(entry, "ns", &ctx)?;
        }
    }
    let hists = field(v, "hists", "telemetry")?;
    for h in Hist::ALL {
        if let Some(bins) = hists.get(h.name()) {
            let ctx = format!("telemetry.hists.{}", h.name());
            let bins = bins
                .as_arr()
                .ok_or_else(|| FleetError::Persist(format!("`{ctx}` is not an array")))?;
            if bins.len() != Hist::BINS {
                return Err(FleetError::Persist(format!(
                    "`{ctx}` has {} bins (this build expects {})",
                    bins.len(),
                    Hist::BINS
                )));
            }
            for (slot, bin) in shard.hists[h.idx()].iter_mut().zip(bins) {
                *slot = bin
                    .as_u64()
                    .ok_or_else(|| FleetError::Persist(format!("`{ctx}` entry is not a count")))?;
            }
        }
    }
    Ok(TelemetrySnapshot::from_shard(shard))
}

impl FleetReport {
    /// Serializes the report — aggregates and throughput figures — to the
    /// persistence JSON format (`BASELINE_fleet.json`). Floats are written
    /// in shortest-round-trip form, so
    /// `from_json(to_json()).stats == stats` holds **bit for bit**.
    #[must_use]
    pub fn to_json(&self) -> String {
        let per_policy: Vec<Json> = self
            .stats
            .per_policy
            .iter()
            .map(|s| {
                let gain = s.gain_vs_baseline.as_ref().map_or(Json::Null, |g| {
                    obj([
                        ("hist", hist_to_json(&g.hist)),
                        ("stats", moments_to_json(&g.stats)),
                        ("positive", Json::Num(g.positive() as f64)),
                    ])
                });
                obj([
                    ("policy", Json::Str(s.policy.label().to_string())),
                    ("sessions", Json::Num(s.sessions as f64)),
                    ("qoe", moments_to_json(&s.qoe)),
                    ("bitrate_kbps", moments_to_json(&s.bitrate_kbps)),
                    ("rebuffer_ratio", moments_to_json(&s.rebuffer_ratio)),
                    ("stall_hist", hist_to_json(&s.stall_hist)),
                    ("switch_hist", hist_to_json(&s.switch_hist)),
                    (
                        "intentional_stall_q",
                        Json::Str(s.intentional_stall_q.to_string()),
                    ),
                    ("gain_vs_baseline", gain),
                ])
            })
            .collect();
        let per_family: Vec<Json> = self
            .stats
            .per_family
            .iter()
            .map(|f| {
                obj([
                    ("family", Json::Str(f.family.clone())),
                    (
                        "per_policy",
                        Json::Arr(
                            f.per_policy
                                .iter()
                                .map(|s| {
                                    obj([
                                        ("policy", Json::Str(s.policy.label().to_string())),
                                        ("sessions", Json::Num(s.sessions as f64)),
                                        ("qoe", moments_to_json(&s.qoe)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        obj([
            ("format", Json::Str(FORMAT_TAG.to_string())),
            ("workers", Json::Num(self.workers as f64)),
            ("wall_time_s", Json::Num(self.wall_time_s)),
            ("sessions_per_sec", Json::Num(self.sessions_per_sec)),
            (
                "phases",
                obj([
                    ("setup_s", Json::Num(self.phases.setup_s)),
                    ("execute_s", Json::Num(self.phases.execute_s)),
                    ("collect_s", Json::Num(self.phases.collect_s)),
                ]),
            ),
            (
                "telemetry",
                self.telemetry
                    .as_ref()
                    .map_or(Json::Null, telemetry_to_json),
            ),
            (
                "shard",
                self.shard.map_or(Json::Null, |s| {
                    obj([
                        ("index", Json::Num(s.index as f64)),
                        ("count", Json::Num(s.count as f64)),
                        ("tile_lo", Json::Num(s.tile_lo as f64)),
                        ("tile_hi", Json::Num(s.tile_hi as f64)),
                        ("total_tiles", Json::Num(s.total_tiles as f64)),
                    ])
                }),
            ),
            (
                "stats",
                obj([
                    ("sessions", Json::Num(self.stats.sessions as f64)),
                    (
                        "baseline",
                        Json::Str(self.stats.baseline.label().to_string()),
                    ),
                    ("per_policy", Json::Arr(per_policy)),
                    ("per_family", Json::Arr(per_family)),
                ]),
            ),
        ])
        .to_pretty()
    }

    /// Parses a report persisted by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Persist`] on syntax errors, an unknown
    /// format version, missing or mistyped fields, unknown policy labels,
    /// or a baseline outside the policy list.
    pub fn from_json(text: &str) -> Result<Self, FleetError> {
        let doc = json::parse(text).map_err(FleetError::Persist)?;
        let format = field(&doc, "format", "report")?
            .as_str()
            .ok_or_else(|| FleetError::Persist("field `report.format` is not a string".into()))?;
        if format != FORMAT_TAG {
            return Err(FleetError::Persist(format!(
                "unsupported report format `{format}` (this build reads `{FORMAT_TAG}`)"
            )));
        }
        let policy_kind = |v: &Json, ctx: &str| -> Result<PolicyKind, FleetError> {
            let label = field(v, "policy", ctx)?.as_str().ok_or_else(|| {
                FleetError::Persist(format!("field `{ctx}.policy` is not a string"))
            })?;
            PolicyKind::from_label(label)
                .ok_or_else(|| FleetError::Persist(format!("unknown policy label `{label}`")))
        };
        let stats_v = field(&doc, "stats", "report")?;
        let baseline_label = field(stats_v, "baseline", "stats")?
            .as_str()
            .ok_or_else(|| FleetError::Persist("field `stats.baseline` is not a string".into()))?;
        let baseline = PolicyKind::from_label(baseline_label).ok_or_else(|| {
            FleetError::Persist(format!("unknown baseline policy `{baseline_label}`"))
        })?;
        let per_policy_v = field(stats_v, "per_policy", "stats")?
            .as_arr()
            .ok_or_else(|| FleetError::Persist("`stats.per_policy` is not an array".into()))?;
        let mut per_policy = Vec::with_capacity(per_policy_v.len());
        for (i, v) in per_policy_v.iter().enumerate() {
            let ctx = format!("per_policy[{i}]");
            let gain_v = field(v, "gain_vs_baseline", &ctx)?;
            let gain_vs_baseline = if gain_v.is_null() {
                None
            } else {
                Some(GainCdf::from_parts(
                    hist_from_json(field(gain_v, "hist", &ctx)?, &ctx)?,
                    moments_from_json(field(gain_v, "stats", &ctx)?, &ctx)?,
                    u64_field(gain_v, "positive", &ctx)?,
                ))
            };
            per_policy.push(PolicyStats {
                policy: policy_kind(v, &ctx)?,
                sessions: u64_field(v, "sessions", &ctx)?,
                qoe: moments_from_json(field(v, "qoe", &ctx)?, &ctx)?,
                bitrate_kbps: moments_from_json(field(v, "bitrate_kbps", &ctx)?, &ctx)?,
                rebuffer_ratio: moments_from_json(field(v, "rebuffer_ratio", &ctx)?, &ctx)?,
                stall_hist: hist_from_json(field(v, "stall_hist", &ctx)?, &ctx)?,
                switch_hist: hist_from_json(field(v, "switch_hist", &ctx)?, &ctx)?,
                intentional_stall_q: i128_field(v, "intentional_stall_q", &ctx)?,
                gain_vs_baseline,
            });
        }
        if !per_policy.iter().any(|s| s.policy == baseline) {
            return Err(FleetError::Persist(format!(
                "baseline `{baseline_label}` is not among the per-policy stats"
            )));
        }
        let per_family_v = field(stats_v, "per_family", "stats")?
            .as_arr()
            .ok_or_else(|| FleetError::Persist("`stats.per_family` is not an array".into()))?;
        let mut per_family = Vec::with_capacity(per_family_v.len());
        for (i, v) in per_family_v.iter().enumerate() {
            let ctx = format!("per_family[{i}]");
            let family = field(v, "family", &ctx)?
                .as_str()
                .ok_or_else(|| {
                    FleetError::Persist(format!("field `{ctx}.family` is not a string"))
                })?
                .to_string();
            let policies_v = field(v, "per_policy", &ctx)?.as_arr().ok_or_else(|| {
                FleetError::Persist(format!("`{ctx}.per_policy` is not an array"))
            })?;
            let mut stats = Vec::with_capacity(policies_v.len());
            for (j, pv) in policies_v.iter().enumerate() {
                let pctx = format!("{ctx}.per_policy[{j}]");
                stats.push(FamilyPolicyStats {
                    policy: policy_kind(pv, &pctx)?,
                    sessions: u64_field(pv, "sessions", &pctx)?,
                    qoe: moments_from_json(field(pv, "qoe", &pctx)?, &pctx)?,
                });
            }
            per_family.push(FamilyStats {
                family,
                per_policy: stats,
            });
        }
        Ok(Self {
            stats: FleetStats {
                sessions: u64_field(stats_v, "sessions", "stats")?,
                baseline,
                per_policy,
                per_family,
            },
            workers: usize::try_from(u64_field(&doc, "workers", "report")?)
                .map_err(|_| FleetError::Persist("worker count out of range".into()))?,
            wall_time_s: num_field(&doc, "wall_time_s", "report")?,
            sessions_per_sec: num_field(&doc, "sessions_per_sec", "report")?,
            // Additive `/2` sections: reports persisted before the phase
            // split and telemetry existed simply lack them.
            phases: match doc.get("phases") {
                Some(v) => RunPhases {
                    setup_s: num_field(v, "setup_s", "phases")?,
                    execute_s: num_field(v, "execute_s", "phases")?,
                    collect_s: num_field(v, "collect_s", "phases")?,
                },
                None => RunPhases::default(),
            },
            telemetry: match doc.get("telemetry") {
                Some(v) if !v.is_null() => Some(telemetry_from_json(v)?),
                _ => None,
            },
            shard: match doc.get("shard") {
                Some(v) if !v.is_null() => Some(ShardSlice {
                    index: u64_field(v, "index", "shard")?,
                    count: u64_field(v, "count", "shard")?,
                    tile_lo: u64_field(v, "tile_lo", "shard")?,
                    tile_hi: u64_field(v, "tile_hi", "shard")?,
                    total_tiles: u64_field(v, "total_tiles", "shard")?,
                }),
                _ => None,
            },
        })
    }

    /// Compares this report's deterministic aggregates against a
    /// `baseline` report (typically a checked-in `BASELINE_fleet.json`),
    /// pairing policies by kind and trace families by key. Wall-clock
    /// fields are ignored — only the order-independent [`FleetStats`]
    /// participate. Family pairing is what lets the diff **attribute** a
    /// policy-level QoE-mean drift to the family that actually moved.
    #[must_use]
    pub fn diff(&self, baseline: &FleetReport) -> FleetDiff {
        let mut drifts = Vec::new();
        let mut only_in_baseline = Vec::new();
        for b in &baseline.stats.per_policy {
            match self.stats.policy(b.policy) {
                Some(c) => drifts.push(PolicyDrift {
                    policy: b.policy,
                    baseline_qoe_mean: b.qoe.mean(),
                    current_qoe_mean: c.qoe.mean(),
                    baseline_sessions: b.sessions,
                    current_sessions: c.sessions,
                }),
                None => only_in_baseline.push(b.policy),
            }
        }
        let only_in_current = self
            .stats
            .per_policy
            .iter()
            .map(|s| s.policy)
            .filter(|p| baseline.stats.policy(*p).is_none())
            .collect();
        let mut family_drifts = Vec::new();
        let mut families_only_in_baseline = Vec::new();
        for bf in &baseline.stats.per_family {
            let Some(cf) = self.stats.family(&bf.family) else {
                families_only_in_baseline.push(bf.family.clone());
                continue;
            };
            for bp in &bf.per_policy {
                if let Some(cp) = cf.per_policy.iter().find(|cp| cp.policy == bp.policy) {
                    family_drifts.push(FamilyDrift {
                        family: bf.family.clone(),
                        policy: bp.policy,
                        baseline_qoe_mean: bp.qoe.mean(),
                        current_qoe_mean: cp.qoe.mean(),
                        baseline_sessions: bp.sessions,
                        current_sessions: cp.sessions,
                    });
                }
            }
        }
        let families_only_in_current = self
            .stats
            .per_family
            .iter()
            .map(|f| f.family.clone())
            .filter(|f| baseline.stats.family(f).is_none())
            .collect();
        FleetDiff {
            drifts,
            only_in_baseline,
            only_in_current,
            family_drifts,
            families_only_in_baseline,
            families_only_in_current,
            // A changed gain baseline re-anchors every gain CDF even when
            // the per-policy QoE means agree, so it is a structural
            // difference in its own right.
            baseline_changed: (self.stats.baseline != baseline.stats.baseline)
                .then_some((baseline.stats.baseline, self.stats.baseline)),
        }
    }
}

/// One policy's QoE-mean movement within one trace family — the
/// attribution record behind a policy-level drift.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyDrift {
    /// The trace family.
    pub family: String,
    /// The policy.
    pub policy: PolicyKind,
    /// Family-conditional QoE mean in the baseline report.
    pub baseline_qoe_mean: f64,
    /// Family-conditional QoE mean in the current report.
    pub current_qoe_mean: f64,
    /// Family sessions folded in the baseline report.
    pub baseline_sessions: u64,
    /// Family sessions folded in the current report.
    pub current_sessions: u64,
}

impl FamilyDrift {
    /// Signed family-conditional QoE-mean movement (current − baseline).
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.current_qoe_mean - self.baseline_qoe_mean
    }
}

/// Per-policy QoE-mean movement between a baseline report and the
/// current one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyDrift {
    /// The policy.
    pub policy: PolicyKind,
    /// QoE mean in the baseline report.
    pub baseline_qoe_mean: f64,
    /// QoE mean in the current report.
    pub current_qoe_mean: f64,
    /// Sessions folded in the baseline report.
    pub baseline_sessions: u64,
    /// Sessions folded in the current report.
    pub current_sessions: u64,
}

impl PolicyDrift {
    /// Signed QoE-mean movement (current − baseline); negative is a
    /// regression.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.current_qoe_mean - self.baseline_qoe_mean
    }
}

/// Outcome of [`FleetReport::diff`]: per-policy QoE-mean drifts plus the
/// structural differences (policies present on only one side).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDiff {
    /// Policies present in both reports, with their QoE-mean movement.
    pub drifts: Vec<PolicyDrift>,
    /// Policies only the baseline report has.
    pub only_in_baseline: Vec<PolicyKind>,
    /// Policies only the current report has.
    pub only_in_current: Vec<PolicyKind>,
    /// `(family, policy)` pairs present in both reports, with their
    /// family-conditional QoE-mean movement.
    pub family_drifts: Vec<FamilyDrift>,
    /// Trace families only the baseline report has.
    pub families_only_in_baseline: Vec<String>,
    /// Trace families only the current report has.
    pub families_only_in_current: Vec<String>,
    /// `Some((baseline's, current's))` when the two reports anchor their
    /// gain CDFs to different baseline policies.
    pub baseline_changed: Option<(PolicyKind, PolicyKind)>,
}

impl FleetDiff {
    /// Drifts whose QoE mean **dropped** by more than `tolerance`.
    #[must_use]
    pub fn regressions(&self, tolerance: f64) -> Vec<&PolicyDrift> {
        self.drifts
            .iter()
            .filter(|d| d.delta() < -tolerance)
            .collect()
    }

    /// Drifts whose QoE mean moved by more than `tolerance` in either
    /// direction, or whose session count changed (a matrix-shape change
    /// masquerading as a same-scenario run).
    #[must_use]
    pub fn drifted(&self, tolerance: f64) -> Vec<&PolicyDrift> {
        self.drifts
            .iter()
            .filter(|d| d.delta().abs() > tolerance || d.baseline_sessions != d.current_sessions)
            .collect()
    }

    /// Family-conditional drifts beyond `tolerance` (or with changed
    /// session counts) — which family a policy-level drift came from.
    /// Two families can also move in opposite directions and cancel at
    /// the policy level, so this catches compensating drift the global
    /// means hide.
    #[must_use]
    pub fn drifted_families(&self, tolerance: f64) -> Vec<&FamilyDrift> {
        self.family_drifts
            .iter()
            .filter(|d| d.delta().abs() > tolerance || d.baseline_sessions != d.current_sessions)
            .collect()
    }

    /// Whether the reports agree: same policy and family axes, same gain
    /// baseline, and no global or family-conditional drift beyond
    /// `tolerance`. This is the CI baseline gate.
    #[must_use]
    pub fn is_clean(&self, tolerance: f64) -> bool {
        self.only_in_baseline.is_empty()
            && self.only_in_current.is_empty()
            && self.families_only_in_baseline.is_empty()
            && self.families_only_in_current.is_empty()
            && self.baseline_changed.is_none()
            && self.drifted(tolerance).is_empty()
            && self.drifted_families(tolerance).is_empty()
    }

    /// A human-readable account of every difference (empty string when
    /// the diff is clean at `tolerance`), attributing policy-level drift
    /// to the trace families that moved.
    #[must_use]
    pub fn summary(&self, tolerance: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in &self.only_in_baseline {
            let _ = writeln!(out, "policy {} missing from the current report", p.label());
        }
        for p in &self.only_in_current {
            let _ = writeln!(out, "policy {} missing from the baseline", p.label());
        }
        for f in &self.families_only_in_baseline {
            let _ = writeln!(out, "trace family `{f}` missing from the current report");
        }
        for f in &self.families_only_in_current {
            let _ = writeln!(out, "trace family `{f}` missing from the baseline");
        }
        if let Some((was, now)) = self.baseline_changed {
            let _ = writeln!(
                out,
                "gain baseline changed: {} -> {}",
                was.label(),
                now.label()
            );
        }
        for d in self.drifted(tolerance) {
            let _ = writeln!(
                out,
                "policy {}: QoE mean {:.6} -> {:.6} (Δ {:+.6}), sessions {} -> {}",
                d.policy.label(),
                d.baseline_qoe_mean,
                d.current_qoe_mean,
                d.delta(),
                d.baseline_sessions,
                d.current_sessions
            );
        }
        for d in self.drifted_families(tolerance) {
            let _ = writeln!(
                out,
                "  └ family `{}` moved {}: QoE mean {:.6} -> {:.6} (Δ {:+.6}), sessions {} -> {}",
                d.family,
                d.policy.label(),
                d.baseline_qoe_mean,
                d.current_qoe_mean,
                d.delta(),
                d.baseline_sessions,
                d.current_sessions
            );
        }
        out
    }
}

impl PolicyStats {
    /// Mean bitrate switches per session, estimated from the fixed-bin
    /// histogram (bin midpoints — exact enough for reporting).
    #[must_use]
    pub fn mean_switches(&self) -> f64 {
        if self.switch_hist.total() == 0 {
            return 0.0;
        }
        let width = MAX_SWITCHES / SWITCH_BINS as f64;
        let weighted: f64 = self
            .switch_hist
            .counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 + 0.5) * width)
            .sum();
        weighted / self.switch_hist.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::default();
        for x in xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-9);
        assert!((m.variance() - 4.0).abs() < 1e-9);
        assert!((m.std_dev() - 2.0).abs() < 1e-9);
        // Degenerate cases: empty and single-observation accumulators.
        assert_eq!(Moments::default().mean(), 0.0);
        let mut one = Moments::default();
        one.push(3.5);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn moments_merge_is_exact_for_any_grouping() {
        // The merge law the collection path rests on: any split of the
        // observation stream into partials, merged in any order, is
        // bit-identical to the sequential fold. `Moments` state is exact
        // integer sums, so `==` (derived `Eq`) is a bit comparison.
        let xs: Vec<f64> = (0..100)
            .map(|i| (crate::splitmix64(i) % 10_000) as f64 / 7.0 - 500.0)
            .collect();
        let mut sequential = Moments::default();
        for &x in &xs {
            sequential.push(x);
        }
        for split in [1usize, 3, 7, 100] {
            let mut partials: Vec<Moments> = vec![Moments::default(); split];
            for (i, &x) in xs.iter().enumerate() {
                partials[i % split].push(x);
            }
            // Forward fold.
            let mut fwd = Moments::default();
            for p in &partials {
                fwd.merge(p);
            }
            assert_eq!(fwd, sequential, "forward fold over {split} partials");
            // Reverse fold.
            let mut rev = Moments::default();
            for p in partials.iter().rev() {
                rev.merge(p);
            }
            assert_eq!(rev, sequential, "reverse fold over {split} partials");
        }
    }

    #[test]
    fn histogram_clamps_and_cdfs() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [-0.5, 0.1, 0.3, 0.6, 0.9, 2.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert!((h.cdf_at(0.5) - 0.5).abs() < 1e-12);
        assert!((h.cdf_at(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_exact_bin_edges_at_percent_and_kbps_magnitudes() {
        // Regression: the old absolute 1e-12 edge slop is below one ulp
        // for kbps-scale ranges, so exact-edge queries fell a whole bin
        // short on throughput histograms. The tolerance is now relative
        // to the bin width, so both magnitudes behave identically.
        // Percent scale (gain CDFs): edges at multiples of 5.
        let mut pct = Histogram::new(-100.0, 100.0, 40);
        for x in [-99.0, -12.0, 3.0, 42.0, 97.0] {
            pct.add(x);
        }
        for i in 0..40 {
            let edge = pct.bin_upper_edge(i);
            let below: u64 = pct.counts()[..=i].iter().sum();
            assert!(
                (pct.cdf_at(edge) - below as f64 / pct.total() as f64).abs() < 1e-12,
                "percent edge {edge}"
            );
        }
        // kbps scale (trace-family throughput histograms): a caller
        // walking the edges by accumulation (`x += width`, the usual
        // figure-script pattern) drifts from the internally computed
        // edges by up to ~1.8e-12 at this layout — beyond the old
        // absolute slop, so bin 9's exact-edge query used to fall one
        // whole bin short.
        let mut kbps = Histogram::new(200.0, 6000.0, 11);
        for x in [250.0, 900.0, 2500.0, 4400.0, 5950.0] {
            kbps.add(x);
        }
        let width = (6000.0 - 200.0) / 11.0;
        let mut drifted = false;
        let mut edge = 200.0;
        for i in 0..11 {
            edge += width;
            let below: u64 = kbps.counts()[..=i].iter().sum();
            assert!(
                (kbps.cdf_at(edge) - below as f64 / kbps.total() as f64).abs() < 1e-12,
                "accumulated kbps edge {edge} (bin {i})"
            );
            drifted |= kbps.bin_upper_edge(i) - edge > 1e-12;
        }
        assert!(
            drifted,
            "layout no longer exhibits >1e-12 edge drift; pick one that does"
        );
        // The tolerance must stay far below a bin width: a mid-bin query
        // still excludes its own bin.
        assert_eq!(kbps.cdf_at(300.0), 0.0);
    }

    #[test]
    fn gain_cdf_fraction_positive() {
        let mut g = GainCdf::new();
        for x in [-20.0, -5.0, 10.0, 30.0] {
            g.add(x);
        }
        assert!((g.fraction_positive() - 0.5).abs() < 1e-12);
        assert!((g.stats.mean() - 3.75).abs() < 1e-12);
        // A tie with the baseline (gain exactly 0) is not a win.
        let mut tie = GainCdf::new();
        tie.add(0.0);
        tie.add(5.0);
        assert!((tie.fraction_positive() - 0.5).abs() < 1e-12);
    }

    /// A small synthetic report with non-trivial accumulator state in
    /// every field (gain CDFs included).
    fn sample_report() -> FleetReport {
        let mk = |policy: &'static str, qoe01: f64, rr: f64| CellResult {
            video: "v".into(),
            genre: "Sports",
            trace: "t".into(),
            trace_mean_kbps: 1234.5,
            policy,
            qoe01,
            avg_bitrate_kbps: 1500.3,
            rebuffer_ratio: rr,
            delivered_bits: 1e8,
            intentional_stall_s: 0.25,
            bitrate_switches: 3,
        };
        let mut stats =
            FleetStats::new(&[PolicyKind::Bba, PolicyKind::SenseiFugu], PolicyKind::Bba);
        stats.fold_cell(&[mk("BBA", 0.51, 0.02), mk("SENSEI", 0.63, 0.01)]);
        stats.fold_cell(&[mk("BBA", 0.47, 0.06), mk("SENSEI", 0.44, 0.09)]);
        stats.fold_cell(&[mk("BBA", 1.0 / 3.0, 0.0), mk("SENSEI", 0.1 / 0.3, 0.0)]);
        let mut shard = TelemetryShard::new();
        shard.counters[Counter::Sessions.idx()] = 6;
        shard.counters[Counter::Tiles.idx()] = 3;
        shard.phase_calls[Phase::LaneSimulate.idx()] = 3;
        shard.phase_ns[Phase::LaneSimulate.idx()] = 123_456;
        shard.hists[Hist::LanesPerBatch.idx()][1] = 3;
        FleetReport {
            stats,
            workers: 4,
            wall_time_s: 1.5,
            sessions_per_sec: 4.0,
            phases: RunPhases {
                setup_s: 0.25,
                execute_s: 1.0,
                collect_s: 0.25,
            },
            telemetry: Some(TelemetrySnapshot::from_shard(shard)),
            shard: None,
        }
    }

    #[test]
    fn report_json_round_trips_bit_for_bit() {
        let report = sample_report();
        let text = report.to_json();
        let back = FleetReport::from_json(&text).unwrap();
        // FleetStats derives PartialEq over every accumulator, so this is
        // a bit-for-bit comparison of means, m2s, and histogram counts.
        assert_eq!(report.stats, back.stats);
        assert_eq!(report.workers, back.workers);
        assert_eq!(report.wall_time_s.to_bits(), back.wall_time_s.to_bits());
        // Serialization is stable: a second round trip emits identical
        // bytes (checked-in baselines must not churn).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn report_json_rejects_corruption() {
        let report = sample_report();
        let text = report.to_json();
        assert!(matches!(
            FleetReport::from_json("not json"),
            Err(FleetError::Persist(_))
        ));
        assert!(matches!(
            FleetReport::from_json("{}"),
            Err(FleetError::Persist(_))
        ));
        let bad_policy = text.replace("\"BBA\"", "\"NotAPolicy\"");
        assert!(matches!(
            FleetReport::from_json(&bad_policy),
            Err(FleetError::Persist(_))
        ));
        let bad_count = text.replace("\"workers\": 4", "\"workers\": -1");
        assert!(matches!(
            FleetReport::from_json(&bad_count),
            Err(FleetError::Persist(_))
        ));
        // Unknown format versions fail with a version message, not a
        // field-level parse error.
        let bad_format = text.replace(FORMAT_TAG, "sensei-fleet-report/999");
        match FleetReport::from_json(&bad_format) {
            Err(FleetError::Persist(msg)) => {
                assert!(msg.contains("format"), "got: {msg}");
            }
            other => panic!("expected Persist error, got {other:?}"),
        }
    }

    #[test]
    fn diff_flags_qoe_mean_drift_and_axis_changes() {
        let baseline = sample_report();
        // Identical reports diff clean at any tolerance.
        let same = FleetReport::from_json(&baseline.to_json()).unwrap();
        let clean = same.diff(&baseline);
        assert!(clean.is_clean(0.0));
        assert!(clean.regressions(0.0).is_empty());
        assert_eq!(clean.summary(0.0), "");
        // Perturb one policy's QoE mean: flagged beyond tolerance, quiet
        // within it. A mean shift of δ is a sum shift of δ·count on the
        // quantized grid.
        let shift_mean = |m: &Moments, delta: f64| {
            Moments::from_raw(
                m.count(),
                m.sum_q() + quantize(delta) * i128::from(m.count()),
                m.sumsq_q(),
            )
        };
        let mut drifted = FleetReport::from_json(&baseline.to_json()).unwrap();
        let qoe = &mut drifted.stats.per_policy[1].qoe;
        *qoe = shift_mean(qoe, -0.01);
        let diff = drifted.diff(&baseline);
        assert!(!diff.is_clean(0.005));
        assert!(diff.is_clean(0.05));
        let regs = diff.regressions(0.005);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].policy, PolicyKind::SenseiFugu);
        assert!(regs[0].delta() < 0.0);
        assert!(diff.summary(0.005).contains("SENSEI"));
        // An improvement is drift (baseline should be refreshed) but not
        // a regression.
        let mut improved = FleetReport::from_json(&baseline.to_json()).unwrap();
        let qoe = &mut improved.stats.per_policy[1].qoe;
        *qoe = shift_mean(qoe, 0.01);
        let diff = improved.diff(&baseline);
        assert!(diff.regressions(0.005).is_empty());
        assert!(!diff.is_clean(0.005));
        // Axis changes are structural differences.
        let mut reshaped = FleetReport::from_json(&baseline.to_json()).unwrap();
        reshaped.stats.per_policy.pop();
        let diff = reshaped.diff(&baseline);
        assert_eq!(diff.only_in_baseline, vec![PolicyKind::SenseiFugu]);
        assert!(!diff.is_clean(f64::INFINITY));
        assert!(diff.summary(0.0).contains("missing from the current"));
        // Session-count changes are drift even when means agree.
        let mut resized = FleetReport::from_json(&baseline.to_json()).unwrap();
        resized.stats.per_policy[0].sessions += 1;
        assert!(!resized.diff(&baseline).is_clean(f64::INFINITY));
        // A changed gain baseline is structural: every gain CDF is
        // re-anchored even when the per-policy means agree.
        let mut reanchored = FleetReport::from_json(&baseline.to_json()).unwrap();
        reanchored.stats.baseline = PolicyKind::SenseiFugu;
        let diff = reanchored.diff(&baseline);
        assert_eq!(
            diff.baseline_changed,
            Some((PolicyKind::Bba, PolicyKind::SenseiFugu))
        );
        assert!(!diff.is_clean(f64::INFINITY));
        assert!(diff
            .summary(f64::INFINITY)
            .contains("gain baseline changed"));
    }

    #[test]
    fn family_conditional_aggregates_fold_and_attribute_drift() {
        let mk = |policy: &'static str, trace: &str, qoe01: f64| CellResult {
            video: "v".into(),
            genre: "Sports",
            trace: trace.into(),
            trace_mean_kbps: 1000.0,
            policy,
            qoe01,
            avg_bitrate_kbps: 1500.0,
            rebuffer_ratio: 0.05,
            delivered_bits: 1e8,
            intentional_stall_s: 0.0,
            bitrate_switches: 3,
        };
        let build = |hsdpa_fugu: f64, diurnal_fugu: f64| {
            let mut stats = FleetStats::new(&[PolicyKind::Bba, PolicyKind::Fugu], PolicyKind::Bba);
            stats.fold_cell(&[
                mk("BBA", "hsdpa-700k-s1", 0.5),
                mk("Fugu", "hsdpa-700k-s1", hsdpa_fugu),
            ]);
            stats.fold_cell(&[
                mk("BBA", "diurnal-003-900k@x0.80", 0.4),
                mk("Fugu", "diurnal-003-900k@x0.80", diurnal_fugu),
            ]);
            FleetReport {
                stats,
                workers: 1,
                wall_time_s: 1.0,
                sessions_per_sec: 4.0,
                phases: RunPhases::default(),
                telemetry: None,
                shard: None,
            }
        };
        let baseline = build(0.6, 0.5);
        // Families keyed by trace-name prefix, perturbation suffixes and
        // all, kept sorted by key (merge-order-free, unlike the fold
        // order: hsdpa folded first here but sorts second).
        assert_eq!(baseline.stats.per_family.len(), 2);
        assert_eq!(baseline.stats.per_family[0].family, "diurnal");
        assert_eq!(baseline.stats.per_family[1].family, "hsdpa");
        let hsdpa = baseline.stats.family("hsdpa").unwrap();
        assert_eq!(hsdpa.per_policy[1].sessions, 1);
        assert!((hsdpa.per_policy[1].qoe.mean() - 0.6).abs() < 1e-12);
        // Round trip carries the family aggregates bit for bit.
        let back = FleetReport::from_json(&baseline.to_json()).unwrap();
        assert_eq!(back.stats, baseline.stats);
        // Only the diurnal family moves: the policy-level Fugu mean
        // drifts, and the diff attributes it to `diurnal` while `hsdpa`
        // stays quiet.
        let current = build(0.6, 0.3);
        let diff = current.diff(&baseline);
        assert!(!diff.is_clean(0.01));
        let moved = diff.drifted_families(0.01);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].family, "diurnal");
        assert_eq!(moved[0].policy, PolicyKind::Fugu);
        assert!(moved[0].delta() < 0.0);
        let text = diff.summary(0.01);
        assert!(text.contains("family `diurnal` moved Fugu"), "{text}");
        assert!(!text.contains("family `hsdpa`"), "{text}");
        // Compensating family drift is caught even when the global means
        // agree: +0.1 on hsdpa, −0.1 on diurnal cancels exactly.
        let compensating = build(0.7, 0.4);
        let diff = compensating.diff(&baseline);
        assert!(diff.drifted(0.01).is_empty(), "global means cancel");
        assert_eq!(diff.drifted_families(0.01).len(), 2);
        assert!(!diff.is_clean(0.01));
        // A family present on one side only is structural.
        let mut reshaped = FleetReport::from_json(&baseline.to_json()).unwrap();
        reshaped.stats.per_family.pop();
        let diff = reshaped.diff(&baseline);
        assert_eq!(diff.families_only_in_baseline, vec!["hsdpa".to_string()]);
        assert!(!diff.is_clean(f64::INFINITY));
        assert!(diff.summary(0.0).contains("trace family `hsdpa` missing"));
    }

    #[test]
    fn family_keys_strip_at_the_first_dash() {
        assert_eq!(family_of("hsdpa-700k-s12"), "hsdpa");
        assert_eq!(family_of("cell4-003-900k"), "cell4");
        assert_eq!(family_of("diurnal-003-900k@x0.80+n200"), "diurnal");
        assert_eq!(family_of("t"), "t");
    }

    #[test]
    fn fold_cell_computes_gains_and_skips_zero_baseline() {
        let mk = |policy: &'static str, qoe01: f64| CellResult {
            video: "v".into(),
            genre: "Sports",
            trace: "t".into(),
            trace_mean_kbps: 1000.0,
            policy,
            qoe01,
            avg_bitrate_kbps: 1500.0,
            rebuffer_ratio: 0.05,
            delivered_bits: 1e8,
            intentional_stall_s: 0.5,
            bitrate_switches: 3,
        };
        let mut stats = FleetStats::new(&[PolicyKind::Bba, PolicyKind::Fugu], PolicyKind::Bba);
        stats.fold_cell(&[mk("BBA", 0.5), mk("Fugu", 0.6)]);
        stats.fold_cell(&[mk("BBA", 0.0), mk("Fugu", 0.4)]);
        assert_eq!(stats.sessions, 4);
        let fugu = stats.policy(PolicyKind::Fugu).unwrap();
        let gain = fugu.gain_vs_baseline.as_ref().unwrap();
        // Only the first cell contributes a gain (+20%); the zero-QoE
        // baseline cell is skipped, matching `qoe_gains_over`.
        assert_eq!(gain.stats.count(), 1);
        assert!((gain.stats.mean() - 20.0).abs() < 1e-9);
        assert!(stats
            .policy(PolicyKind::Bba)
            .unwrap()
            .gain_vs_baseline
            .is_none());
        assert!((fugu.intentional_stall_s() - 1.0).abs() < 1e-9);
        assert_eq!(fugu.switch_hist.total(), 2);
    }

    /// Splits the sample report's fold into two tile partials and checks
    /// the merged aggregates are bit-identical to the sequential fold.
    #[test]
    fn fleet_stats_merge_matches_sequential_fold() {
        let mk = |policy: &'static str, trace: &str, qoe01: f64| CellResult {
            video: "v".into(),
            genre: "Sports",
            trace: trace.into(),
            trace_mean_kbps: 1000.0,
            policy,
            qoe01,
            avg_bitrate_kbps: 1500.0,
            rebuffer_ratio: 0.05,
            delivered_bits: 1e8,
            intentional_stall_s: 0.5,
            bitrate_switches: 3,
        };
        let axes = [PolicyKind::Bba, PolicyKind::SenseiFugu];
        let cells = [
            [mk("BBA", "hsdpa-1", 0.5), mk("SENSEI", "hsdpa-1", 0.6)],
            [mk("BBA", "fcc-7", 0.4), mk("SENSEI", "fcc-7", 0.55)],
            [mk("BBA", "hsdpa-2", 0.0), mk("SENSEI", "hsdpa-2", 0.4)],
        ];
        let mut sequential = FleetStats::new(&axes, PolicyKind::Bba);
        for group in &cells {
            sequential.fold_cell(group);
        }
        // Two tiles (split 2 + 1), merged in both orders.
        let mut a = TileStats::new(&axes, PolicyKind::Bba);
        a.fold_cell(&cells[0]);
        a.fold_cell(&cells[1]);
        let mut b = TileStats::new(&axes, PolicyKind::Bba);
        b.fold_cell(&cells[2]);
        let mut fwd = FleetStats::new(&axes, PolicyKind::Bba);
        fwd.merge(a.stats()).unwrap();
        fwd.merge(b.stats()).unwrap();
        assert_eq!(fwd, sequential);
        let mut rev = FleetStats::new(&axes, PolicyKind::Bba);
        rev.merge(b.stats()).unwrap();
        rev.merge(a.stats()).unwrap();
        assert_eq!(rev, sequential);
        // A reused (reset) partial behaves like a fresh one.
        a.reset();
        a.fold_cell(&cells[2]);
        assert_eq!(a.stats(), b.stats());
        // Mismatched axes are rejected.
        let mut other = FleetStats::new(&axes, PolicyKind::SenseiFugu);
        assert!(matches!(
            other.merge(&sequential),
            Err(FleetError::Shard(_))
        ));
        let mut short = FleetStats::new(&[PolicyKind::Bba], PolicyKind::Bba);
        assert!(matches!(
            short.merge(&sequential),
            Err(FleetError::Shard(_))
        ));
    }

    #[test]
    fn merge_reports_validates_and_combines_partials() {
        // Three partials over a 6-tile matrix, each carrying a slice of
        // the sample fold.
        let partial = |index: u64, lo: u64, hi: u64| {
            let mut r = sample_report();
            r.shard = Some(ShardSlice {
                index,
                count: 3,
                tile_lo: lo,
                tile_hi: hi,
                total_tiles: 6,
            });
            r
        };
        let parts = [partial(0, 0, 2), partial(1, 2, 4), partial(2, 4, 6)];
        let merged = merge_reports(&parts).unwrap();
        assert!(merged.shard.is_none());
        assert_eq!(merged.stats.sessions, 3 * parts[0].stats.sessions);
        assert_eq!(merged.workers, 12);
        assert!((merged.wall_time_s - 1.5).abs() < 1e-12);
        // Shard sections round-trip through JSON, and merging the parsed
        // partials gives bit-identical aggregates.
        let reparsed: Vec<FleetReport> = parts
            .iter()
            .map(|p| FleetReport::from_json(&p.to_json()).unwrap())
            .collect();
        assert_eq!(reparsed[1].shard, parts[1].shard);
        assert_eq!(merge_reports(&reparsed).unwrap().stats, merged.stats);
        // Validation: empty input, unsharded report, wrong count, a
        // duplicate index, and ranges that do not partition the matrix.
        assert!(matches!(merge_reports(&[]), Err(FleetError::Shard(_))));
        assert!(matches!(
            merge_reports(&[sample_report()]),
            Err(FleetError::Shard(_))
        ));
        assert!(matches!(
            merge_reports(&parts[..2]),
            Err(FleetError::Shard(_))
        ));
        let dup = [partial(0, 0, 2), partial(0, 0, 2), partial(2, 4, 6)];
        assert!(matches!(merge_reports(&dup), Err(FleetError::Shard(_))));
        let gap = [partial(0, 0, 2), partial(1, 3, 4), partial(2, 4, 6)];
        assert!(matches!(merge_reports(&gap), Err(FleetError::Shard(_))));
        let truncated = [partial(0, 0, 2), partial(1, 2, 4), partial(2, 4, 5)];
        assert!(matches!(
            merge_reports(&truncated),
            Err(FleetError::Shard(_))
        ));
    }
}
