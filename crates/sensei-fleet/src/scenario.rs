//! The enumerable scenario space of a fleet run.
//!
//! A **scenario** is one streaming session to simulate: a video, a base
//! trace, a network perturbation applied to that trace, a player
//! configuration, and a policy. The matrix enumerates the full cross
//! product in one canonical order and assigns every scenario a stable ID
//! (its position) plus a per-tile network RNG seed derived from the
//! master seed — so any scenario can be regenerated in isolation, on any
//! worker, in any order, and always yields the same session.

use crate::{splitmix64, FleetError};
use sensei_core::{Experiment, PolicyKind};
use sensei_sim::PlayerConfig;
use sensei_trace::{ThroughputTrace, TraceError};
use std::borrow::Cow;

/// Lossless axis-index → ID-arithmetic widening. `usize` always fits in
/// `u64` on supported targets, but `try_from` keeps that claim checked
/// instead of assumed — a silent truncation here would re-seed every
/// scenario (sensei-lint: `no-lossy-cast`).
fn axis_u64(i: usize) -> u64 {
    u64::try_from(i).expect("axis index fits in u64")
}

/// Checked inverse of [`axis_u64`]: decoded axis coordinates index
/// in-memory tables, so they must fit `usize` or fail loudly.
fn axis_usize(v: u64) -> usize {
    usize::try_from(v).expect("decoded axis index fits in usize")
}

/// A deterministic transformation of a base throughput trace into a
/// network scenario: a bandwidth scale factor (trace scaling) composed
/// with zero-mean Gaussian jitter (both from `sensei-trace`'s operator
/// set). The identity perturbation reproduces the base trace untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePerturbation {
    /// Multiplier applied to every throughput sample (1.0 = unchanged).
    pub scale: f64,
    /// Standard deviation of the added zero-mean Gaussian noise in kbps
    /// (0.0 = no jitter). The noise stream is drawn from the scenario's
    /// network seed ([`Scenario::seed`]), so it is reproducible and
    /// shared by every lane of the tile replaying it.
    pub jitter_std_kbps: f64,
}

impl TracePerturbation {
    /// The identity perturbation: the base trace as-is.
    #[must_use]
    pub fn identity() -> Self {
        Self {
            scale: 1.0,
            jitter_std_kbps: 0.0,
        }
    }

    /// Pure bandwidth scaling.
    #[must_use]
    pub fn scaled(scale: f64) -> Self {
        Self {
            scale,
            jitter_std_kbps: 0.0,
        }
    }

    /// Pure Gaussian jitter (the Fig. 17 variance operator).
    #[must_use]
    pub fn jittered(jitter_std_kbps: f64) -> Self {
        Self {
            scale: 1.0,
            jitter_std_kbps,
        }
    }

    /// Whether this perturbation leaves traces untouched.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.scale == 1.0 && self.jitter_std_kbps == 0.0
    }

    /// Whether the fields are in range: positive finite scale,
    /// non-negative finite jitter.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.scale.is_finite()
            && self.scale > 0.0
            && self.jitter_std_kbps.is_finite()
            && self.jitter_std_kbps >= 0.0
    }

    /// Applies the perturbation to a base trace, drawing jitter from
    /// `seed`. The identity perturbation borrows the base trace (no
    /// allocation on the hot path).
    ///
    /// Non-identity perturbations go through
    /// [`ThroughputTrace::perturbed_into`] — the same single sample path
    /// the per-worker trace caches use, so cached and freshly-applied
    /// perturbations are value-identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates trace-algebra failures (e.g. jitter so extreme the
    /// perturbed trace would be all-zero).
    pub fn apply<'a>(
        &self,
        base: &'a ThroughputTrace,
        seed: u64,
    ) -> Result<Cow<'a, ThroughputTrace>, TraceError> {
        if self.is_identity() {
            return Ok(Cow::Borrowed(base));
        }
        Ok(Cow::Owned(base.perturbed_into(
            self.scale,
            self.jitter_std_kbps,
            seed,
            base.perturbed_name(self.scale, self.jitter_std_kbps),
            Vec::new(),
        )?))
    }
}

/// One fully-resolved scenario: indices into the experiment/matrix axes,
/// the policy to run, and the cell's RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Stable ID — the scenario's position in the canonical enumeration.
    pub id: u64,
    /// Index into `Experiment::assets`.
    pub video_idx: usize,
    /// Index into `Experiment::traces`.
    pub trace_idx: usize,
    /// Index into the matrix's perturbation axis.
    pub perturbation_idx: usize,
    /// Index into the matrix's player-variant axis.
    pub player_idx: usize,
    /// The policy to run.
    pub policy: PolicyKind,
    /// RNG seed of this scenario's perturbed **network** — a pure
    /// function of `(master seed, video, trace, perturbation)`, i.e. of
    /// the tile. Every lane of a tile (all policies × player variants)
    /// replays the identical samples, so within-cell comparisons and
    /// gain CDFs are paired on the same network and a worker's trace
    /// cache materializes the network **once per tile** instead of once
    /// per session. Distinct videos draw *independent* jitter
    /// realizations, so fleet aggregates average over one network draw
    /// per tile rather than thousands of correlated replays of a single
    /// realization.
    pub seed: u64,
}

/// The player-variant axis: either the single player config the bound
/// experiment itself deploys (the default — what `run_grid` uses), or an
/// explicit list of variants to sweep.
#[derive(Debug, Clone, PartialEq)]
enum PlayerAxis {
    /// One variant: the experiment's own `player` field, resolved at run
    /// time against whichever experiment the matrix is bound to.
    ExperimentDefault,
    /// An explicit sweep (non-empty, each validated at build time).
    Explicit(Vec<PlayerConfig>),
}

/// The scenario space of a fleet run: `videos × traces × perturbations ×
/// player variants × policies`, enumerated with the video axis outermost
/// and the policy axis innermost.
///
/// Policy-innermost ordering is load-bearing: all policies competing on
/// one cell are adjacent in the enumeration, which lets the streaming
/// aggregator compute QoE gains against a baseline while holding only one
/// cell's worth of results in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMatrix {
    policies: Vec<PolicyKind>,
    players: PlayerAxis,
    perturbations: Vec<TracePerturbation>,
    master_seed: u64,
}

impl ScenarioMatrix {
    /// Starts a builder. Defaults: the bound experiment's own player, the
    /// identity perturbation, master seed 2021.
    #[must_use]
    pub fn builder() -> ScenarioMatrixBuilder {
        ScenarioMatrixBuilder::default()
    }

    /// The matrix spanning exactly `Experiment::run_grid`'s scenario
    /// space: the given policies over unperturbed traces with the
    /// experiment's own player config — for *any* experiment, including
    /// ones with a custom `player`, since the default player axis
    /// resolves against the bound experiment at run time.
    ///
    /// # Errors
    ///
    /// Returns an error when `policies` is empty.
    pub fn grid(policies: &[PolicyKind]) -> Result<Self, FleetError> {
        Self::builder().policies(policies.iter().copied()).build()
    }

    /// The policy axis.
    #[must_use]
    pub fn policies(&self) -> &[PolicyKind] {
        &self.policies
    }

    /// Length of the player-variant axis.
    #[must_use]
    pub fn num_players(&self) -> usize {
        match &self.players {
            PlayerAxis::ExperimentDefault => 1,
            PlayerAxis::Explicit(v) => v.len(),
        }
    }

    /// The player config at `player_idx`, resolved against `experiment`
    /// (the default axis is the experiment's own player).
    #[must_use]
    pub fn player<'a>(&'a self, experiment: &'a Experiment, player_idx: usize) -> &'a PlayerConfig {
        match &self.players {
            PlayerAxis::ExperimentDefault => &experiment.player,
            PlayerAxis::Explicit(v) => &v[player_idx],
        }
    }

    /// The perturbation axis.
    #[must_use]
    pub fn perturbations(&self) -> &[TracePerturbation] {
        &self.perturbations
    }

    /// The master seed all per-cell seeds derive from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Total scenarios when run against `experiment`.
    #[must_use]
    pub fn num_scenarios(&self, experiment: &Experiment) -> u64 {
        self.num_cells(experiment) * axis_u64(self.policies.len())
    }

    /// Total cells (scenario groups sharing a network + player but
    /// differing in policy).
    #[must_use]
    pub fn num_cells(&self, experiment: &Experiment) -> u64 {
        axis_u64(experiment.assets.len())
            * axis_u64(experiment.traces.len())
            * axis_u64(self.perturbations.len())
            * axis_u64(self.num_players())
    }

    /// Decodes scenario `id` into its axis coordinates and cell seed.
    /// Pure arithmetic on the ID — independent of which worker asks, and
    /// of every other scenario.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range for this matrix × experiment.
    #[must_use]
    pub fn scenario(&self, experiment: &Experiment, id: u64) -> Scenario {
        let total = self.num_scenarios(experiment);
        assert!(id < total, "scenario id {id} out of range ({total})");
        let mut idx = id;
        let policy_idx = axis_usize(idx % axis_u64(self.policies.len()));
        idx /= axis_u64(self.policies.len());
        let player_idx = axis_usize(idx % axis_u64(self.num_players()));
        idx /= axis_u64(self.num_players());
        let perturbation_idx = axis_usize(idx % axis_u64(self.perturbations.len()));
        idx /= axis_u64(self.perturbations.len());
        let trace_idx = axis_usize(idx % axis_u64(experiment.traces.len()));
        idx /= axis_u64(experiment.traces.len());
        let video_idx = axis_usize(idx);
        Scenario {
            id,
            video_idx,
            trace_idx,
            perturbation_idx,
            player_idx,
            policy: self.policies[policy_idx],
            seed: self.network_seed(video_idx, trace_idx, perturbation_idx),
        }
    }

    /// The RNG seed of the `(video, trace, perturbation)` tile's network,
    /// derived from the master seed by SplitMix64 rounds over the tile
    /// coordinate. Stable across worker counts, execution order, and the
    /// player/policy axes by construction: adding players or policies
    /// never changes which network a scenario replays.
    #[must_use]
    pub fn network_seed(&self, video_idx: usize, trace_idx: usize, perturbation_idx: usize) -> u64 {
        let pair = (axis_u64(trace_idx) << 32) | axis_u64(perturbation_idx);
        splitmix64(self.master_seed ^ splitmix64(pair) ^ splitmix64(!axis_u64(video_idx)))
    }

    /// Scenarios per **tile** — the contiguous ID range sharing one
    /// `(video, trace, perturbation)` triple (all player variants ×
    /// policies). Tiles are the executor's scheduling unit: one tile runs
    /// through one structure-of-arrays session batch.
    #[must_use]
    pub fn tile_size(&self) -> u64 {
        axis_u64(self.num_players()) * axis_u64(self.policies.len())
    }

    /// Total tiles when run against `experiment`.
    #[must_use]
    pub fn num_tiles(&self, experiment: &Experiment) -> u64 {
        axis_u64(experiment.assets.len())
            * axis_u64(experiment.traces.len())
            * axis_u64(self.perturbations.len())
    }
}

/// A balanced split of a matrix's tile range into N contiguous shard
/// slices — the pure arithmetic behind multi-process fleet sharding.
///
/// Pure in `(total_tiles, num_shards)`: every process computes the same
/// plan from the same inputs, with no coordination. Shard `i` gets a
/// contiguous range of `total_tiles / num_shards` tiles, with the first
/// `total_tiles % num_shards` shards taking one extra — so slice sizes
/// differ by at most one, and the ranges partition `0..total_tiles` in
/// index order. More shards than tiles is legal: the tail shards get
/// empty ranges (and contribute identity partials to the merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    total_tiles: u64,
    num_shards: u64,
}

impl ShardPlan {
    /// Builds the plan.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Shard`] when `num_shards` is zero.
    pub fn new(total_tiles: u64, num_shards: u64) -> Result<Self, FleetError> {
        if num_shards == 0 {
            return Err(FleetError::Shard(
                "shard plan needs at least one shard".into(),
            ));
        }
        Ok(Self {
            total_tiles,
            num_shards,
        })
    }

    /// Tiles in the whole (unsharded) matrix.
    #[must_use]
    pub fn total_tiles(&self) -> u64 {
        self.total_tiles
    }

    /// Shards in the split.
    #[must_use]
    pub fn num_shards(&self) -> u64 {
        self.num_shards
    }

    /// Shard `index`'s contiguous tile range (`lo..hi`, possibly empty).
    ///
    /// # Panics
    ///
    /// Panics when `index >= num_shards`.
    #[must_use]
    pub fn range(&self, index: u64) -> std::ops::Range<u64> {
        assert!(
            index < self.num_shards,
            "shard index {index} out of range ({})",
            self.num_shards
        );
        let base = self.total_tiles / self.num_shards;
        let extra = self.total_tiles % self.num_shards;
        let lo = index * base + index.min(extra);
        let hi = lo + base + u64::from(index < extra);
        lo..hi
    }
}

/// Builder for [`ScenarioMatrix`].
#[derive(Debug, Clone)]
pub struct ScenarioMatrixBuilder {
    policies: Vec<PolicyKind>,
    players: Option<Vec<PlayerConfig>>,
    perturbations: Vec<TracePerturbation>,
    master_seed: u64,
}

impl Default for ScenarioMatrixBuilder {
    fn default() -> Self {
        Self {
            policies: Vec::new(),
            players: None,
            perturbations: vec![TracePerturbation::identity()],
            master_seed: 2021,
        }
    }
}

impl ScenarioMatrixBuilder {
    /// Sets the policy axis (required, at least one).
    #[must_use]
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Replaces the player-variant axis with an explicit sweep (default:
    /// the single player config of whichever experiment the matrix is
    /// bound to at run time).
    #[must_use]
    pub fn players(mut self, players: impl IntoIterator<Item = PlayerConfig>) -> Self {
        self.players = Some(players.into_iter().collect());
        self
    }

    /// Replaces the perturbation axis (default: identity only).
    #[must_use]
    pub fn perturbations(
        mut self,
        perturbations: impl IntoIterator<Item = TracePerturbation>,
    ) -> Self {
        self.perturbations = perturbations.into_iter().collect();
        self
    }

    /// Sets the master seed per-cell seeds derive from.
    #[must_use]
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Validates the axes and builds the matrix.
    ///
    /// # Errors
    ///
    /// Returns an error when an axis is empty, a player variant fails
    /// [`PlayerConfig::validate`], or a perturbation is out of range.
    pub fn build(self) -> Result<ScenarioMatrix, FleetError> {
        if self.policies.is_empty() {
            return Err(FleetError::EmptyAxis("policies"));
        }
        for (i, &policy) in self.policies.iter().enumerate() {
            if self.policies[..i].contains(&policy) {
                return Err(FleetError::DuplicatePolicy(policy));
            }
        }
        let players = match self.players {
            None => PlayerAxis::ExperimentDefault,
            Some(v) if v.is_empty() => return Err(FleetError::EmptyAxis("players")),
            Some(v) => {
                for player in &v {
                    player.validate().map_err(FleetError::Player)?;
                }
                PlayerAxis::Explicit(v)
            }
        };
        if self.perturbations.is_empty() {
            return Err(FleetError::EmptyAxis("perturbations"));
        }
        for (index, p) in self.perturbations.iter().enumerate() {
            if !p.is_valid() {
                return Err(FleetError::Perturbation {
                    index,
                    scale: p.scale,
                    jitter_std_kbps: p.jitter_std_kbps,
                });
            }
        }
        Ok(ScenarioMatrix {
            policies: self.policies,
            players,
            perturbations: self.perturbations,
            master_seed: self.master_seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensei_core::ExperimentConfig;

    fn quick_experiment() -> Experiment {
        Experiment::build(&ExperimentConfig::quick(7)).unwrap()
    }

    #[test]
    fn builder_validates_axes() {
        assert!(matches!(
            ScenarioMatrix::builder().build(),
            Err(FleetError::EmptyAxis("policies"))
        ));
        assert!(matches!(
            ScenarioMatrix::builder()
                .policies([PolicyKind::Bba])
                .players([])
                .build(),
            Err(FleetError::EmptyAxis("players"))
        ));
        assert!(matches!(
            ScenarioMatrix::builder()
                .policies([PolicyKind::Bba])
                .players([PlayerConfig {
                    max_buffer_s: -1.0,
                    ..PlayerConfig::default()
                }])
                .build(),
            Err(FleetError::Player(_))
        ));
        assert!(matches!(
            ScenarioMatrix::builder()
                .policies([PolicyKind::Bba])
                .perturbations([TracePerturbation::scaled(0.0)])
                .build(),
            Err(FleetError::Perturbation { index: 0, .. })
        ));
        assert!(matches!(
            ScenarioMatrix::builder()
                .policies([PolicyKind::Bba, PolicyKind::Fugu, PolicyKind::Bba])
                .build(),
            Err(FleetError::DuplicatePolicy(PolicyKind::Bba))
        ));
    }

    #[test]
    fn enumeration_is_policy_innermost_and_roundtrips() {
        let env = quick_experiment();
        let matrix = ScenarioMatrix::builder()
            .policies([PolicyKind::Bba, PolicyKind::Fugu])
            .perturbations([
                TracePerturbation::identity(),
                TracePerturbation::scaled(0.8),
            ])
            .players([
                PlayerConfig::default(),
                PlayerConfig {
                    max_buffer_s: 12.0,
                    ..PlayerConfig::default()
                },
            ])
            .build()
            .unwrap();
        let total = matrix.num_scenarios(&env);
        assert_eq!(total, 3 * 10 * 2 * 2 * 2);
        assert_eq!(matrix.num_cells(&env), 3 * 10 * 2 * 2);
        // Policy is the innermost axis: consecutive IDs differ only in
        // policy and share the cell seed.
        let a = matrix.scenario(&env, 0);
        let b = matrix.scenario(&env, 1);
        assert_eq!(a.policy, PolicyKind::Bba);
        assert_eq!(b.policy, PolicyKind::Fugu);
        assert_eq!(
            (a.video_idx, a.trace_idx, a.perturbation_idx, a.player_idx),
            (b.video_idx, b.trace_idx, b.perturbation_idx, b.player_idx)
        );
        assert_eq!(a.seed, b.seed);
        // The network seed is a pure function of the tile (video, trace,
        // perturbation): player variants share it, a different
        // perturbation or video does not.
        let c = matrix.scenario(&env, 2);
        assert_eq!(a.seed, c.seed, "player variants share the network");
        let other_pert = matrix.scenario(&env, 4);
        assert_eq!(other_pert.perturbation_idx, 1);
        assert_ne!(a.seed, other_pert.seed);
        let other_video = matrix.scenario(&env, total / 3);
        assert_eq!(other_video.video_idx, 1);
        assert_eq!(
            (other_video.trace_idx, other_video.perturbation_idx),
            (0, 0)
        );
        assert_ne!(
            a.seed, other_video.seed,
            "videos draw independent network realizations"
        );
        // Tile accounting: one tile spans players × policies.
        assert_eq!(matrix.tile_size(), 4);
        assert_eq!(matrix.num_tiles(&env), 3 * 10 * 2);
        assert_eq!(matrix.num_tiles(&env) * matrix.tile_size(), total);
        // Every ID decodes to in-range coordinates and the last scenario
        // hits the last coordinate of every axis.
        let last = matrix.scenario(&env, total - 1);
        assert_eq!(last.video_idx, 2);
        assert_eq!(last.trace_idx, 9);
        assert_eq!(last.perturbation_idx, 1);
        assert_eq!(last.player_idx, 1);
        assert_eq!(last.policy, PolicyKind::Fugu);
    }

    #[test]
    fn network_seeds_depend_on_master_seed_and_tile_only() {
        let m1 = ScenarioMatrix::builder()
            .policies([PolicyKind::Bba])
            .master_seed(1)
            .build()
            .unwrap();
        let m2 = ScenarioMatrix::builder()
            .policies([PolicyKind::Bba])
            .master_seed(1)
            .build()
            .unwrap();
        let m3 = ScenarioMatrix::builder()
            .policies([PolicyKind::Bba])
            .master_seed(2)
            .build()
            .unwrap();
        assert_eq!(m1.network_seed(0, 3, 1), m2.network_seed(0, 3, 1));
        assert_ne!(m1.network_seed(0, 3, 1), m3.network_seed(0, 3, 1));
        // Distinct tiles draw distinct streams (the pair coordinate is
        // collision-free below 2^32 axis lengths).
        assert_ne!(m1.network_seed(0, 3, 1), m1.network_seed(0, 1, 3));
        assert_ne!(m1.network_seed(0, 0, 0), m1.network_seed(0, 0, 1));
        assert_ne!(m1.network_seed(0, 0, 0), m1.network_seed(1, 0, 0));
    }

    #[test]
    fn shard_plan_partitions_any_tile_count() {
        assert!(matches!(ShardPlan::new(10, 0), Err(FleetError::Shard(_))));
        for total in [0u64, 1, 5, 30, 31, 97] {
            for shards in [1u64, 2, 3, 7, 8, 40] {
                let plan = ShardPlan::new(total, shards).unwrap();
                // Ranges are contiguous in index order, cover exactly
                // 0..total, and differ in size by at most one.
                let mut next = 0;
                let (mut min_len, mut max_len) = (u64::MAX, 0);
                for i in 0..shards {
                    let r = plan.range(i);
                    assert_eq!(r.start, next, "total {total} × {shards} @ {i}");
                    assert!(r.end >= r.start);
                    min_len = min_len.min(r.end - r.start);
                    max_len = max_len.max(r.end - r.start);
                    next = r.end;
                }
                assert_eq!(next, total);
                assert!(max_len - min_len <= 1, "unbalanced: {min_len}..{max_len}");
            }
        }
        // More shards than tiles: the tail ranges are empty.
        let plan = ShardPlan::new(2, 5).unwrap();
        assert_eq!(plan.range(0), 0..1);
        assert_eq!(plan.range(1), 1..2);
        assert_eq!(plan.range(4), 2..2);
    }

    #[test]
    fn perturbation_apply_is_deterministic_and_lazy() {
        let base = ThroughputTrace::constant("c", 2000.0, 60.0).unwrap();
        let id = TracePerturbation::identity();
        assert!(matches!(id.apply(&base, 9).unwrap(), Cow::Borrowed(_)));
        let p = TracePerturbation {
            scale: 0.5,
            jitter_std_kbps: 200.0,
        };
        let a = p.apply(&base, 9).unwrap();
        let b = p.apply(&base, 9).unwrap();
        assert_eq!(a.samples(), b.samples());
        let c = p.apply(&base, 10).unwrap();
        assert_ne!(a.samples(), c.samples());
        // Scaling shifts the mean before jitter.
        assert!((a.mean_kbps() - 1000.0).abs() < 100.0, "{}", a.mean_kbps());
    }
}
