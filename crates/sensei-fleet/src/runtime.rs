//! Per-worker runtime state: reused policies, scratch buffers, and the
//! trace-perturbation cache.
//!
//! `Fleet::execute` gives every worker thread one [`WorkerRuntime`] for the
//! whole run. Policies and simulator buffers are reused through the
//! embedded [`SessionRuntime`]; perturbed traces are the fleet-specific
//! part, handled by one materialize-once cache:
//!
//! * **Deterministic perturbations** (bandwidth scaling, no jitter) do not
//!   depend on any seed, so the perturbed trace is materialized once per
//!   `(trace, perturbation)` pair and shared by every scenario the worker
//!   runs against it.
//! * **Jittered perturbations** are a pure function of their seed — and
//!   since the matrix derives that seed from the tile (see
//!   `Scenario::seed`), a jittered network is materialized **once per
//!   tile** and shared by every lane (player variant × policy) replaying
//!   it, with each pair's slot holding one trace whose sample buffer and
//!   interned name are recycled across regenerations. The pre-batch
//!   fleet regenerated the jitter stream per *cell*, which profiling
//!   showed was the single largest cost of a cheap-policy fleet run
//!   (~24 µs of a ~31 µs BBA session on the 600-second traces); now the
//!   cost is one regeneration per tile's worth of sessions, and memory
//!   stays bounded at one trace per jittered pair however many videos
//!   the corpus has.
//!
//! Caching never changes results: cached and freshly-applied perturbations
//! are value-identical (asserted by the tests below), and which worker's
//! cache served a scenario is invisible to the merge-based aggregates.

use crate::scenario::TracePerturbation;
use sensei_core::SessionRuntime;
use sensei_telemetry as telemetry;
use sensei_trace::{ThroughputTrace, TraceError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything one executor worker owns across its scenarios.
pub struct WorkerRuntime {
    /// Per-worker policy table and simulator scratch (see
    /// [`sensei_core::SessionRuntime`]).
    pub session: SessionRuntime,
    /// Perturbed-trace cache.
    pub traces: TraceCache,
}

impl WorkerRuntime {
    /// An empty runtime; everything materializes on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            session: SessionRuntime::new(),
            traces: TraceCache::new(),
        }
    }
}

impl Default for WorkerRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// Key of a perturbed trace: indices into the experiment's trace table and
/// the matrix's perturbation axis.
type PairKey = (usize, usize);

/// The per-worker perturbed-trace cache.
///
/// The maps are `BTreeMap`s, not `HashMap`s: the cache is keyed-lookup
/// only today, but an ordered map makes that deterministic by
/// construction instead of by discipline, so no future iteration over
/// it can ever feed aggregate state in an unspecified order
/// (sensei-lint: `no-unordered-iteration`).
pub struct TraceCache {
    /// Seed-independent perturbations, materialized once per pair.
    deterministic: BTreeMap<PairKey, ThroughputTrace>,
    /// Interned names of jittered perturbations (seed-independent even
    /// when the samples are not).
    jitter_names: BTreeMap<PairKey, Arc<str>>,
    /// Jittered perturbations: one slot per pair holding the most
    /// recently requested seed's trace. Within a tile every lane shares
    /// one seed, so a slot serves the whole tile from one regeneration;
    /// when the next tile brings a new seed the slot regenerates **into
    /// the same recycled sample buffer** (and re-attaches the interned
    /// name), so memory stays hard-bounded at one trace per jittered
    /// pair no matter how many videos or seeds a run sweeps.
    jittered: BTreeMap<PairKey, (u64, ThroughputTrace)>,
}

impl TraceCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            deterministic: BTreeMap::new(),
            jitter_names: BTreeMap::new(),
            jittered: BTreeMap::new(),
        }
    }

    /// Resolves the perturbed trace for one scenario, value-identical to
    /// `perturbation.apply(base, seed)` but served from the cache when
    /// the pair's slot already holds this seed's trace (the whole-tile
    /// case), and regenerated into the slot's recycled buffer otherwise.
    ///
    /// # Errors
    ///
    /// Propagates trace-algebra failures, exactly as the uncached path
    /// does.
    pub fn resolve<'a>(
        &'a mut self,
        base: &'a ThroughputTrace,
        perturbation: &TracePerturbation,
        trace_idx: usize,
        perturbation_idx: usize,
        seed: u64,
    ) -> Result<&'a ThroughputTrace, TraceError> {
        use std::collections::btree_map::Entry;
        if perturbation.is_identity() {
            return Ok(base);
        }
        let pair = (trace_idx, perturbation_idx);
        if perturbation.jitter_std_kbps == 0.0 {
            // Seed-independent: materialize once (the seed passed to
            // `apply` is unused without jitter), reuse forever.
            return Ok(match self.deterministic.entry(pair) {
                Entry::Occupied(e) => {
                    telemetry::count(telemetry::Counter::TraceCacheHits, 1);
                    e.into_mut()
                }
                Entry::Vacant(v) => {
                    telemetry::count(telemetry::Counter::TraceMaterializations, 1);
                    v.insert(perturbation.apply(base, seed)?.into_owned())
                }
            });
        }
        // The perturbed name depends on the pair but not the seed, so it
        // is interned once and re-attached by handle on regeneration.
        let name = Arc::clone(self.jitter_names.entry(pair).or_insert_with(|| {
            Arc::from(base.perturbed_name(perturbation.scale, perturbation.jitter_std_kbps))
        }));
        // Fast path: the slot already holds this seed's trace (every lane
        // of a tile, and every sub-batch within it, shares one seed).
        let hit = self
            .jittered
            .get(&pair)
            .is_some_and(|(cached_seed, _)| *cached_seed == seed);
        if hit {
            telemetry::count(telemetry::Counter::TraceCacheHits, 1);
            return Ok(&self.jittered.get(&pair).expect("checked above").1);
        }
        telemetry::count(telemetry::Counter::TraceMaterializations, 1);
        // Regeneration goes through the one shared sample path
        // (`ThroughputTrace::perturbed_into` — the same code
        // `TracePerturbation::apply` runs), so cached and fresh traces
        // can never drift; the evicted trace's sample buffer is recycled
        // into the new one.
        let buf = self
            .jittered
            .remove(&pair)
            .map_or_else(Vec::new, |(_, trace)| trace.into_samples());
        let trace = base.perturbed_into(
            perturbation.scale,
            perturbation.jitter_std_kbps,
            seed,
            name,
            buf,
        )?;
        Ok(&self.jittered.entry(pair).or_insert((seed, trace)).1)
    }
}

impl Default for TraceCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ThroughputTrace {
        sensei_trace::generate::hsdpa_like(1500.0, 120, 7)
    }

    #[test]
    fn identity_borrows_the_base_trace() {
        let base = base();
        let mut cache = TraceCache::new();
        let resolved = cache
            .resolve(&base, &TracePerturbation::identity(), 0, 0, 99)
            .unwrap();
        assert!(std::ptr::eq(resolved, &base));
    }

    #[test]
    fn deterministic_perturbations_are_cached_and_value_identical() {
        let base = base();
        let p = TracePerturbation::scaled(0.7);
        let fresh = p.apply(&base, 1).unwrap().into_owned();
        let mut cache = TraceCache::new();
        let first_ptr = {
            let t = cache.resolve(&base, &p, 2, 3, 1).unwrap();
            assert_eq!(*t, fresh, "cached build must equal a fresh apply");
            t.samples().as_ptr()
        };
        // A different seed (different cell, same pair) hits the same entry:
        // deterministic perturbations are seed-independent.
        let second = cache.resolve(&base, &p, 2, 3, 42).unwrap();
        assert_eq!(*second, fresh);
        assert!(
            std::ptr::eq(second.samples().as_ptr(), first_ptr),
            "second resolve must reuse the cached trace, not rebuild it"
        );
    }

    #[test]
    fn jittered_perturbations_are_a_pure_function_of_the_seed() {
        let base = base();
        let p = TracePerturbation {
            scale: 0.8,
            jitter_std_kbps: 250.0,
        };
        let mut cache = TraceCache::new();
        // Cache output equals the uncached path, name included.
        let fresh_a = p.apply(&base, 11).unwrap().into_owned();
        let a = cache.resolve(&base, &p, 0, 1, 11).unwrap().clone();
        assert_eq!(a, fresh_a);
        // Same seed → same trace, even after the scratch held another cell.
        let b = cache.resolve(&base, &p, 0, 1, 12).unwrap().clone();
        assert_ne!(a.samples(), b.samples(), "different seeds must differ");
        assert_eq!(a.name(), b.name(), "the interned name is seed-independent");
        let a_again = cache.resolve(&base, &p, 0, 1, 11).unwrap().clone();
        assert_eq!(a, a_again);
        // And the regenerated trace still matches a fresh apply.
        assert_eq!(b, p.apply(&base, 12).unwrap().into_owned());
    }

    #[test]
    fn jittered_slot_serves_a_tile_and_recycles_across_tiles() {
        let base = base();
        let p = TracePerturbation::jittered(300.0);
        let mut cache = TraceCache::new();
        let first_ptr = cache
            .resolve(&base, &p, 0, 0, 5)
            .unwrap()
            .samples()
            .as_ptr();
        // The same network again (every lane and sub-batch of a tile
        // shares one seed): no regeneration, the cached trace itself is
        // handed back.
        let again_ptr = cache
            .resolve(&base, &p, 0, 0, 5)
            .unwrap()
            .samples()
            .as_ptr();
        assert!(std::ptr::eq(first_ptr, again_ptr));
        // The next tile's seed regenerates — into the very same recycled
        // buffer, so the cache's footprint stays one trace per pair.
        let other_ptr = cache
            .resolve(&base, &p, 0, 0, 6)
            .unwrap()
            .samples()
            .as_ptr();
        assert!(std::ptr::eq(first_ptr, other_ptr));
        // A different pair gets its own slot; the first pair's slot and
        // seed are untouched by it.
        let pair_b_ptr = cache
            .resolve(&base, &p, 0, 1, 7)
            .unwrap()
            .samples()
            .as_ptr();
        assert!(!std::ptr::eq(first_ptr, pair_b_ptr));
        // Regenerated values always equal a fresh apply, wherever the
        // slot has been in between.
        let back = cache.resolve(&base, &p, 0, 0, 5).unwrap().clone();
        assert_eq!(back, p.apply(&base, 5).unwrap().into_owned());
    }
}
