//! Per-worker runtime state: reused policies, scratch buffers, and the
//! trace-perturbation cache.
//!
//! `Fleet::execute` gives every worker thread one [`WorkerRuntime`] for the
//! whole run. Policies and simulator buffers are reused through the
//! embedded [`SessionRuntime`]; perturbed traces are the fleet-specific
//! part, handled by a two-tier cache:
//!
//! * **Deterministic perturbations** (bandwidth scaling, no jitter) do not
//!   depend on the cell seed, so the perturbed trace is materialized once
//!   per `(trace, perturbation)` pair and shared by every scenario the
//!   worker runs against it.
//! * **Jittered perturbations** are a pure function of the cell seed and
//!   must be regenerated per cell — but into a single scratch trace whose
//!   sample buffer and interned name are recycled, so regeneration costs
//!   the RNG draws and nothing else. Consecutive scenarios of the same
//!   cell (the policy axis is innermost) reuse the scratch without
//!   regenerating at all.
//!
//! Caching never changes results: cached and freshly-applied perturbations
//! are value-identical (asserted by the tests below), and which worker's
//! cache served a scenario is invisible to the deterministic collector.

use crate::scenario::TracePerturbation;
use sensei_core::SessionRuntime;
use sensei_trace::{ThroughputTrace, TraceError};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything one executor worker owns across its scenarios.
pub struct WorkerRuntime {
    /// Per-worker policy table and simulator scratch (see
    /// [`sensei_core::SessionRuntime`]).
    pub session: SessionRuntime,
    /// Perturbed-trace cache.
    pub traces: TraceCache,
}

impl WorkerRuntime {
    /// An empty runtime; everything materializes on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            session: SessionRuntime::new(),
            traces: TraceCache::new(),
        }
    }
}

impl Default for WorkerRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// Key of a perturbed trace: indices into the experiment's trace table and
/// the matrix's perturbation axis.
type PairKey = (usize, usize);

/// The per-worker perturbed-trace cache.
pub struct TraceCache {
    /// Seed-independent perturbations, materialized once per pair.
    deterministic: HashMap<PairKey, ThroughputTrace>,
    /// Interned names of jittered perturbations (seed-independent even
    /// when the samples are not).
    jitter_names: HashMap<PairKey, Arc<str>>,
    /// The cell key the jitter scratch currently holds.
    jitter_key: Option<(usize, usize, u64)>,
    /// The reusable jittered scratch trace.
    jitter: Option<ThroughputTrace>,
}

impl TraceCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            deterministic: HashMap::new(),
            jitter_names: HashMap::new(),
            jitter_key: None,
            jitter: None,
        }
    }

    /// Resolves the perturbed trace for one scenario, value-identical to
    /// `perturbation.apply(base, seed)` but served from the cache when the
    /// perturbation is deterministic (or the jitter scratch already holds
    /// this cell's trace).
    ///
    /// # Errors
    ///
    /// Propagates trace-algebra failures, exactly as the uncached path
    /// does.
    pub fn resolve<'a>(
        &'a mut self,
        base: &'a ThroughputTrace,
        perturbation: &TracePerturbation,
        trace_idx: usize,
        perturbation_idx: usize,
        seed: u64,
    ) -> Result<&'a ThroughputTrace, TraceError> {
        if perturbation.is_identity() {
            return Ok(base);
        }
        let pair = (trace_idx, perturbation_idx);
        if perturbation.jitter_std_kbps == 0.0 {
            // Seed-independent: materialize once (the seed passed to
            // `apply` is unused without jitter), reuse forever.
            use std::collections::hash_map::Entry;
            return Ok(match self.deterministic.entry(pair) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(v) => v.insert(perturbation.apply(base, seed)?.into_owned()),
            });
        }
        let key = (trace_idx, perturbation_idx, seed);
        if self.jitter_key == Some(key) {
            return Ok(self.jitter.as_ref().expect("key implies scratch"));
        }
        self.jitter_key = None;
        // The perturbed name depends on the pair but not the seed, so it is
        // interned once and re-attached to the scratch by handle.
        let name = Arc::clone(self.jitter_names.entry(pair).or_insert_with(|| {
            Arc::from(base.perturbed_name(perturbation.scale, perturbation.jitter_std_kbps))
        }));
        // Regenerate through the one shared sample path
        // (`ThroughputTrace::perturbed_into` — the same code
        // `TracePerturbation::apply` runs), into the recycled buffer.
        let buf = self
            .jitter
            .take()
            .map_or_else(Vec::new, ThroughputTrace::into_samples);
        let trace = base.perturbed_into(
            perturbation.scale,
            perturbation.jitter_std_kbps,
            seed,
            name,
            buf,
        )?;
        self.jitter = Some(trace);
        self.jitter_key = Some(key);
        Ok(self.jitter.as_ref().expect("just stored"))
    }
}

impl Default for TraceCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ThroughputTrace {
        sensei_trace::generate::hsdpa_like(1500.0, 120, 7)
    }

    #[test]
    fn identity_borrows_the_base_trace() {
        let base = base();
        let mut cache = TraceCache::new();
        let resolved = cache
            .resolve(&base, &TracePerturbation::identity(), 0, 0, 99)
            .unwrap();
        assert!(std::ptr::eq(resolved, &base));
    }

    #[test]
    fn deterministic_perturbations_are_cached_and_value_identical() {
        let base = base();
        let p = TracePerturbation::scaled(0.7);
        let fresh = p.apply(&base, 1).unwrap().into_owned();
        let mut cache = TraceCache::new();
        let first_ptr = {
            let t = cache.resolve(&base, &p, 2, 3, 1).unwrap();
            assert_eq!(*t, fresh, "cached build must equal a fresh apply");
            t.samples().as_ptr()
        };
        // A different seed (different cell, same pair) hits the same entry:
        // deterministic perturbations are seed-independent.
        let second = cache.resolve(&base, &p, 2, 3, 42).unwrap();
        assert_eq!(*second, fresh);
        assert!(
            std::ptr::eq(second.samples().as_ptr(), first_ptr),
            "second resolve must reuse the cached trace, not rebuild it"
        );
    }

    #[test]
    fn jittered_perturbations_are_a_pure_function_of_the_seed() {
        let base = base();
        let p = TracePerturbation {
            scale: 0.8,
            jitter_std_kbps: 250.0,
        };
        let mut cache = TraceCache::new();
        // Cache output equals the uncached path, name included.
        let fresh_a = p.apply(&base, 11).unwrap().into_owned();
        let a = cache.resolve(&base, &p, 0, 1, 11).unwrap().clone();
        assert_eq!(a, fresh_a);
        // Same seed → same trace, even after the scratch held another cell.
        let b = cache.resolve(&base, &p, 0, 1, 12).unwrap().clone();
        assert_ne!(a.samples(), b.samples(), "different seeds must differ");
        assert_eq!(a.name(), b.name(), "the interned name is seed-independent");
        let a_again = cache.resolve(&base, &p, 0, 1, 11).unwrap().clone();
        assert_eq!(a, a_again);
        // And the regenerated trace still matches a fresh apply.
        assert_eq!(b, p.apply(&base, 12).unwrap().into_owned());
    }

    #[test]
    fn jitter_scratch_is_reused_for_consecutive_same_cell_scenarios() {
        let base = base();
        let p = TracePerturbation::jittered(300.0);
        let mut cache = TraceCache::new();
        let first_ptr = cache
            .resolve(&base, &p, 0, 0, 5)
            .unwrap()
            .samples()
            .as_ptr();
        // Same cell again (the policy axis walks the same cell repeatedly):
        // no regeneration, the very same scratch is handed back.
        let again_ptr = cache
            .resolve(&base, &p, 0, 0, 5)
            .unwrap()
            .samples()
            .as_ptr();
        assert!(std::ptr::eq(first_ptr, again_ptr));
        // A different cell regenerates, but into the same buffer.
        let other_ptr = cache
            .resolve(&base, &p, 0, 0, 6)
            .unwrap()
            .samples()
            .as_ptr();
        assert!(std::ptr::eq(first_ptr, other_ptr));
    }
}
