//! Procedural scenario families: the bridge between the substrate-level
//! generators (`sensei_video::corpus::generate_family`,
//! `sensei_trace::generate::generate_family`) and a runnable fleet.
//!
//! A [`ScenarioFamilies`] value is a *generated* corpus + trace set —
//! hundreds of distinct, deterministic videos crossed with several
//! admission-filtered trace families — built from a compact seeded spec.
//! It onboards into an [`Experiment`] via `Experiment::from_parts`, after
//! which the usual [`crate::ScenarioMatrix`] axes (perturbations, player
//! variants, policies) apply on top, exactly as they do for the Table-1
//! corpus. The same spec + seed always reproduces the same scenario
//! space, so a `(spec, master seed)` pair is a complete, shareable
//! description of a fleet-scale evaluation.

use crate::{FleetError, ScenarioMatrixBuilder};
use sensei_core::{CoreError, Experiment, ExperimentConfig};
use sensei_trace::generate::{self as trace_gen, TraceFamily};
use sensei_trace::ThroughputTrace;
use sensei_video::corpus::{generate_family as video_family, CorpusEntry, GenreMix};

/// A generated scenario-family bundle: the procedural corpus and the
/// admission-filtered traces of every requested family.
#[derive(Debug, Clone)]
pub struct ScenarioFamilies {
    /// The procedural video corpus.
    pub corpus: Vec<CorpusEntry>,
    /// All generated traces, family by family in spec order.
    pub traces: Vec<ThroughputTrace>,
    /// The seed the families were generated from.
    seed: u64,
}

impl ScenarioFamilies {
    /// Starts a spec builder. Defaults: a uniform genre mix, 100 videos,
    /// the diurnal/burst/shared-cell families at 3 traces each, 600-second
    /// traces, seed 2021.
    #[must_use]
    pub fn builder() -> ScenarioFamiliesBuilder {
        ScenarioFamiliesBuilder::default()
    }

    /// The generation seed (doubles as a natural master seed for the
    /// scenario matrix, see [`Self::matrix_builder`]).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Onboards the generated families into an experiment environment
    /// (encoding, weights, optional RL training — everything
    /// `Experiment::from_parts` does), consuming the bundle.
    ///
    /// # Errors
    ///
    /// Propagates onboarding failures.
    pub fn into_experiment(self, config: &ExperimentConfig) -> Result<Experiment, CoreError> {
        Experiment::from_parts(config, self.corpus, self.traces)
    }

    /// A [`crate::ScenarioMatrix`] builder pre-seeded with the family
    /// seed, so the perturbation/jitter streams of the matrix derive from
    /// the same master seed as the families themselves.
    #[must_use]
    pub fn matrix_builder(&self) -> ScenarioMatrixBuilder {
        ScenarioMatrixBuilder::default().master_seed(self.seed)
    }
}

/// Builder for [`ScenarioFamilies`].
#[derive(Debug, Clone)]
pub struct ScenarioFamiliesBuilder {
    genre_mix: GenreMix,
    videos: usize,
    trace_families: Vec<TraceFamily>,
    traces_per_family: usize,
    trace_duration_s: usize,
    seed: u64,
}

impl Default for ScenarioFamiliesBuilder {
    fn default() -> Self {
        Self {
            genre_mix: GenreMix::uniform(),
            videos: 100,
            trace_families: vec![
                TraceFamily::Diurnal,
                TraceFamily::CrossTrafficBursts,
                TraceFamily::SharedCell { users: 4 },
            ],
            traces_per_family: 3,
            trace_duration_s: 600,
            seed: 2021,
        }
    }
}

impl ScenarioFamiliesBuilder {
    /// Sets the genre mix videos are drawn from.
    #[must_use]
    pub fn genre_mix(mut self, mix: GenreMix) -> Self {
        self.genre_mix = mix;
        self
    }

    /// Sets the corpus size (must be ≥ 1).
    #[must_use]
    pub fn videos(mut self, count: usize) -> Self {
        self.videos = count;
        self
    }

    /// Replaces the trace-family list (must end up non-empty).
    #[must_use]
    pub fn trace_families(mut self, families: impl IntoIterator<Item = TraceFamily>) -> Self {
        self.trace_families = families.into_iter().collect();
        self
    }

    /// Sets how many traces each family contributes (must be ≥ 1).
    #[must_use]
    pub fn traces_per_family(mut self, count: usize) -> Self {
        self.traces_per_family = count;
        self
    }

    /// Sets the generated trace duration in seconds (must be ≥ 1; keep it
    /// longer than the videos so sessions never wrap mid-chunk more than
    /// the paper's replay semantics intend).
    #[must_use]
    pub fn trace_duration_s(mut self, seconds: usize) -> Self {
        self.trace_duration_s = seconds;
        self
    }

    /// Sets the generation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the spec and generates the families. Deterministic: the
    /// same spec and seed produce byte-identical corpus entries and
    /// traces.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Family`] on zero counts, an empty family
    /// list, or an invalid genre mix.
    pub fn build(self) -> Result<ScenarioFamilies, FleetError> {
        if self.videos == 0 {
            return Err(FleetError::Family("video count must be >= 1".into()));
        }
        if self.trace_families.is_empty() {
            return Err(FleetError::Family("trace-family list is empty".into()));
        }
        if self.traces_per_family == 0 {
            return Err(FleetError::Family("traces per family must be >= 1".into()));
        }
        if self.trace_duration_s == 0 {
            return Err(FleetError::Family("trace duration must be >= 1 s".into()));
        }
        let corpus = video_family(&self.genre_mix, self.videos, self.seed)
            .map_err(|e| FleetError::Family(e.to_string()))?;
        let mut traces = Vec::with_capacity(self.trace_families.len() * self.traces_per_family);
        for (i, family) in self.trace_families.iter().enumerate() {
            // Family-indexed derived seeds keep each family's stream
            // independent of its position-mates while staying a pure
            // function of the spec seed.
            let family_seed = crate::splitmix64(self.seed ^ (0xFA_0000 + i as u64));
            traces.extend(trace_gen::generate_family(
                family,
                self.traces_per_family,
                self.trace_duration_s,
                family_seed,
            ));
        }
        Ok(ScenarioFamilies {
            corpus,
            traces,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_the_spec() {
        assert!(matches!(
            ScenarioFamilies::builder().videos(0).build(),
            Err(FleetError::Family(_))
        ));
        assert!(matches!(
            ScenarioFamilies::builder().trace_families([]).build(),
            Err(FleetError::Family(_))
        ));
        assert!(matches!(
            ScenarioFamilies::builder().traces_per_family(0).build(),
            Err(FleetError::Family(_))
        ));
        assert!(matches!(
            ScenarioFamilies::builder().trace_duration_s(0).build(),
            Err(FleetError::Family(_))
        ));
        let bad_mix = GenreMix {
            sports: -1.0,
            ..GenreMix::uniform()
        };
        assert!(matches!(
            ScenarioFamilies::builder().genre_mix(bad_mix).build(),
            Err(FleetError::Family(_))
        ));
    }

    #[test]
    fn generation_is_deterministic_and_admitted() {
        let spec = || {
            ScenarioFamilies::builder()
                .videos(12)
                .traces_per_family(2)
                .trace_duration_s(300)
                .seed(7)
        };
        let a = spec().build().unwrap();
        let b = spec().build().unwrap();
        assert_eq!(a.corpus.len(), 12);
        assert_eq!(a.traces.len(), 3 * 2);
        for (x, y) in a.corpus.iter().zip(&b.corpus) {
            assert_eq!(x.video, y.video);
        }
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x, y);
        }
        for t in &a.traces {
            assert!(
                trace_gen::in_admission_band(t.mean_kbps()),
                "{} mean {}",
                t.name(),
                t.mean_kbps()
            );
        }
        // Different seed, different scenario space.
        let c = spec().seed(8).build().unwrap();
        assert!(a
            .corpus
            .iter()
            .zip(&c.corpus)
            .any(|(x, y)| x.video != y.video));
    }

    #[test]
    fn families_onboard_into_an_experiment() {
        let families = ScenarioFamilies::builder()
            .videos(4)
            .traces_per_family(1)
            .trace_duration_s(300)
            .seed(3)
            .build()
            .unwrap();
        let seed = families.seed();
        let mut config = ExperimentConfig::quick(seed);
        config.videos = None; // the filter targets Table 1, not families
        let env = families.into_experiment(&config).unwrap();
        assert_eq!(env.assets.len(), 4);
        assert_eq!(env.traces.len(), 3);
        assert!(env.assets.iter().all(|a| a.dataset == "procedural"));
    }
}
