//! Sharded, deterministic fleet-simulation engine.
//!
//! The evaluation harness in `sensei-core` runs its `(policy × video ×
//! trace)` grid one session at a time — fine for regenerating a paper
//! figure, a dead end for the ROADMAP's million-user ambitions. This crate
//! scales that same harness to very large session populations while keeping
//! the one property a simulation study cannot give up: **bit-for-bit
//! reproducible results, independent of worker count and scheduling**.
//!
//! Three layers:
//!
//! * [`ScenarioMatrix`] — expands `videos × traces × network perturbations ×
//!   player variants × policies` into an enumerable scenario space. Every
//!   scenario has a stable ID (its position in the canonical enumeration)
//!   and a per-scenario RNG seed derived from the master seed by SplitMix64,
//!   so any scenario can be regenerated in isolation and nothing depends on
//!   execution order.
//! * [`Fleet`] — a std-only sharded executor (`std::thread::scope`; no new
//!   external dependencies, consistent with the offline `shims/` policy).
//!   Workers pull tiles from a shared atomic cursor and fold their own
//!   results into **shard-local partials**; the channel carries only
//!   tile-completion ticks, and the collector merges the O(workers)
//!   partials at the end. The aggregates are *defined* as the reduction of
//!   per-tile partials in canonical tile order, and every accumulator
//!   merges as exact integer sums — so 1, 2, or 64 workers (or processes,
//!   via [`merge_reports`]) produce bit-identical results.
//! * [`FleetReport`] — streaming per-policy accumulators: QoE mean/variance
//!   from exact quantized moment sums ([`Moments`]), fixed-bin stall-rate
//!   and bitrate-switch histograms, a fixed-bin QoE-gain CDF against a
//!   baseline policy, and sessions/sec throughput. Memory stays
//!   `O(policies × bins)`, not `O(sessions)`.
//!
//! Cross-process sharding rides the same merge law: a [`ShardPlan`] splits
//! the tile range into N contiguous slices, `FleetConfig::with_shard` runs
//! one slice and stamps the partial report with a [`ShardSlice`], and
//! [`merge_reports`] combines N partials bit-identically to the
//! single-process run.
//!
//! `sensei_core::Experiment::run_grid` is the degenerate fleet run: one
//! worker, no perturbations, one player config. [`ScenarioMatrix::grid`]
//! spans exactly that space and [`Fleet::run_cells`] reproduces `run_grid`'s
//! output cell for cell (asserted in this crate's tests).
//!
//! Two layers on top of the executor open the scenario-diversity axis:
//!
//! * [`ScenarioFamilies`] — procedurally generated corpora and trace
//!   families (`sensei-video`/`sensei-trace` generators behind one seeded
//!   spec), so the matrix can span hundreds of distinct videos and
//!   admission-filtered network families instead of the fixed Table-1
//!   sixteen.
//! * [`FleetReport::to_json`] / [`FleetReport::from_json`] /
//!   [`FleetReport::diff`] — lossless persistence of the deterministic
//!   aggregates (via the serde-free [`json`] module) and per-policy
//!   QoE-mean drift detection, the mechanism behind the checked-in
//!   `BASELINE_fleet.json` CI gate.

// Aggregates accumulate and merge in the quantized-integer domain
// (report.rs `Moments`); u64/i128 → f64 happens only when *reading*
// a finished aggregate out for display or JSON. Truncating casts
// are policed per-site: sensei-lint's `no-lossy-cast` plus
// fn-level allows carrying the soundness argument.
#![allow(clippy::cast_precision_loss)]

pub mod executor;
pub mod families;
pub mod json;
pub mod report;
pub mod runtime;
pub mod scenario;

pub use executor::{Fleet, FleetConfig};
pub use families::{ScenarioFamilies, ScenarioFamiliesBuilder};
pub use report::{
    family_of, merge_reports, FamilyDrift, FamilyPolicyStats, FamilyStats, FleetDiff, FleetReport,
    FleetStats, GainCdf, Histogram, Moments, PolicyDrift, PolicyStats, RunPhases, ShardSlice,
    TileStats,
};
pub use runtime::{TraceCache, WorkerRuntime};
pub use scenario::{Scenario, ScenarioMatrix, ScenarioMatrixBuilder, ShardPlan, TracePerturbation};
// Re-exported so fleet consumers (benches, integration tests, downstream
// binaries) can name the metric catalog and snapshot types without
// depending on the telemetry crate directly.
pub use sensei_telemetry as telemetry;
pub use sensei_telemetry::{TelemetryShard, TelemetrySnapshot};

use sensei_core::CoreError;

/// Errors produced by the fleet engine.
#[derive(Debug)]
pub enum FleetError {
    /// A scenario axis (policies, players, perturbations — or the
    /// experiment's videos/traces at run time) has no entries.
    EmptyAxis(&'static str),
    /// The executor was configured with zero workers.
    NoWorkers,
    /// The gain baseline policy is not one of the matrix's policies.
    BaselineNotInMatrix(sensei_core::PolicyKind),
    /// A policy appears more than once on the policy axis; the per-policy
    /// aggregates and gain baseline are keyed by policy, so duplicates
    /// would silently merge or shadow each other.
    DuplicatePolicy(sensei_core::PolicyKind),
    /// A player-config variant in the matrix is invalid.
    Player(sensei_sim::SimError),
    /// A trace perturbation in the matrix is invalid (non-positive or
    /// non-finite scale, or negative/non-finite jitter).
    Perturbation {
        /// Index into the perturbation axis.
        index: usize,
        /// The offending scale factor.
        scale: f64,
        /// The offending jitter standard deviation in kbps.
        jitter_std_kbps: f64,
    },
    /// One scenario failed; the run was aborted.
    Scenario {
        /// Stable ID of the failing scenario.
        id: u64,
        /// The underlying failure.
        source: Box<CoreError>,
    },
    /// A persisted fleet report could not be parsed or validated.
    Persist(String),
    /// A procedural scenario-family spec is invalid (zero counts, an
    /// empty family list, or a bad genre mix).
    Family(String),
    /// A shard split is invalid, or partial aggregates could not be
    /// merged (mismatched axes, an incomplete shard set, ranges that do
    /// not partition the tile space).
    Shard(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::EmptyAxis(axis) => write!(f, "scenario axis `{axis}` is empty"),
            FleetError::NoWorkers => write!(f, "fleet configured with zero workers"),
            FleetError::BaselineNotInMatrix(kind) => {
                write!(f, "baseline policy {} is not in the matrix", kind.label())
            }
            FleetError::DuplicatePolicy(kind) => {
                write!(
                    f,
                    "policy {} appears twice on the policy axis",
                    kind.label()
                )
            }
            FleetError::Player(e) => write!(f, "invalid player variant: {e}"),
            FleetError::Perturbation {
                index,
                scale,
                jitter_std_kbps,
            } => write!(
                f,
                "perturbation {index} is invalid: scale {scale}, jitter {jitter_std_kbps} kbps"
            ),
            FleetError::Scenario { id, source } => {
                write!(f, "scenario {id} failed: {source}")
            }
            FleetError::Persist(msg) => write!(f, "persisted fleet report is invalid: {msg}"),
            FleetError::Family(msg) => write!(f, "invalid scenario-family spec: {msg}"),
            FleetError::Shard(msg) => write!(f, "invalid fleet shard: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Player(e) => Some(e),
            FleetError::Scenario { source, .. } => Some(&**source),
            _ => None,
        }
    }
}

/// Fleet errors unify into the workspace-wide error type like every other
/// subsystem error. The conversion lives here (not in `sensei-core`, as the
/// PR-1 `from_error!` impls do) because this crate sits *above* the core in
/// the DAG; `CoreError::Fleet` is type-erased for the same reason.
impl From<FleetError> for CoreError {
    fn from(e: FleetError) -> Self {
        CoreError::Fleet(Box::new(e))
    }
}

/// SplitMix64 — the per-scenario seed derivation. Statistically independent
/// outputs for consecutive inputs, so scenario `id` and scenario `id + 1`
/// get unrelated RNG streams from the same master seed.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Consecutive inputs give wildly different outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8);
    }

    #[test]
    fn fleet_error_displays_and_sources() {
        let e = FleetError::Scenario {
            id: 42,
            source: Box::new(CoreError::BadConfig("boom".into())),
        };
        assert!(e.to_string().contains("scenario 42"));
        assert!(std::error::Error::source(&e).is_some());
        let core: CoreError = FleetError::NoWorkers.into();
        assert!(core.to_string().contains("fleet error"));
    }
}
