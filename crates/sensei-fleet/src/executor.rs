//! The std-only tile-scheduled executor.
//!
//! The scheduling unit is a **tile** — the contiguous scenario-ID range
//! sharing one `(video, trace, perturbation)` triple (every player variant
//! × policy of that cell group). Workers pull tile IDs from a shared
//! atomic cursor (dynamic load balancing — an expensive MPC tile on one
//! worker doesn't idle the rest), run each tile through one
//! structure-of-arrays session batch (`Experiment::run_batch_in`), and
//! **fold the tile's cells into a shard-local partial on the spot**
//! ([`TileStats`] → worker-local [`FleetStats`]). Tiling is what
//! amortizes the per-network work: the perturbed trace is materialized
//! once per worker (`TraceCache`), policies rebind once per tile instead
//! of once per session, and the batch engine replaces per-session policy
//! dispatch with one `select_batch` call per chunk.
//!
//! Collection is merge-based, not stream-based. The deterministic result
//! is *defined* as the reduction of per-tile partials in canonical tile
//! order, and every accumulator merges as an exact integer sum — so the
//! reduction is associative and commutative and can be evaluated in any
//! grouping. Each worker keeps one shard-local partial, the channel
//! carries only tile-completion ticks (progress + error attribution),
//! and the collector merges the O(workers) fixed-shape partials after
//! the scope joins. No per-cell sends, no reorder buffer, no admission
//! window: collector time is independent of session count, and nothing
//! serializes the workers.
//!
//! The same merge law spans processes: [`FleetConfig::with_shard`]
//! restricts a run to one of `n` contiguous tile slices (from
//! [`ShardPlan`]), the partial report carries a [`ShardSlice`] stamp,
//! and [`crate::merge_reports`] combines the N partials bit-identically
//! to the single-process run.

use crate::report::{FleetReport, FleetStats, RunPhases, ShardSlice, TileStats};
use crate::runtime::WorkerRuntime;
use crate::scenario::{ScenarioMatrix, ShardPlan};
use crate::FleetError;
use sensei_core::{CellResult, CoreError, Experiment, PolicyKind};
use sensei_sim::PlayerConfig;
use sensei_telemetry as telemetry;
use sensei_telemetry::{TelemetryShard, TelemetrySnapshot};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads to shard tiles across (must be ≥ 1).
    pub workers: usize,
    /// Baseline policy for the QoE-gain CDFs; defaults to the matrix's
    /// first policy.
    pub baseline: Option<PolicyKind>,
    /// Maximum lanes per session batch — the lane-width knob. `0` (the
    /// default) runs each tile as one full-width batch; `1` degenerates
    /// to per-session scalar execution. Results are identical for every
    /// width; the knob only trades batch-state footprint against
    /// amortization.
    pub batch_width: usize,
    /// Run only this `(index, count)` process shard — the `index`-th of
    /// `count` contiguous tile slices from [`ShardPlan`] — and stamp the
    /// report with the covered [`ShardSlice`]. `None` (the default) runs
    /// the whole matrix. The `count` partial reports merge
    /// bit-identically to the unsharded run via [`crate::merge_reports`].
    pub shard: Option<(u64, u64)>,
    /// Collect per-worker telemetry shards (counters, phase timers,
    /// histograms) and attach the merged [`TelemetrySnapshot`] to the
    /// report. Recording is simulation-invisible: aggregates are
    /// bit-identical with this on or off (test-enforced). Also
    /// switchable per run via `SENSEI_FLEET_TELEMETRY=1`.
    pub telemetry: bool,
    /// Emit a live `\r`-rewritten progress line on stderr (tiles done,
    /// sessions/s, ETA), driven by the tile-completion ticks. Also
    /// switchable per run via `SENSEI_FLEET_PROGRESS=1`.
    pub progress: bool,
}

impl FleetConfig {
    /// A config with `workers` threads, the default baseline, and
    /// full-tile batches.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            baseline: None,
            batch_width: 0,
            shard: None,
            telemetry: false,
            progress: false,
        }
    }

    /// Sets the gain baseline policy.
    #[must_use]
    pub fn with_baseline(mut self, baseline: PolicyKind) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Caps session batches at `width` lanes (`0` = full tile).
    #[must_use]
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width;
        self
    }

    /// Restricts the run to shard `index` of `count` contiguous tile
    /// slices.
    #[must_use]
    pub fn with_shard(mut self, index: u64, count: u64) -> Self {
        self.shard = Some((index, count));
        self
    }

    /// Turns telemetry collection on or off.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Turns the live stderr progress line on or off.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }
}

/// Whether an environment flag is set to a truthy value (anything but
/// empty or `0`).
fn env_flag(name: &str) -> bool {
    // sensei-lint: allow(no-env-outside-config) — Fleet::new's documented opt-in flags (SENSEI_FLEET_*), read once at config construction
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

impl Default for FleetConfig {
    /// One worker per available core.
    fn default() -> Self {
        Self::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }
}

/// A fleet run bound to an experiment environment and a scenario matrix.
#[derive(Clone, Copy)]
pub struct Fleet<'a> {
    experiment: &'a Experiment,
    matrix: &'a ScenarioMatrix,
    workers: usize,
    baseline: PolicyKind,
    batch_width: usize,
    shard: Option<(u64, u64)>,
    telemetry: bool,
    progress: bool,
}

impl<'a> Fleet<'a> {
    /// Binds `matrix` to `experiment` under `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the config asks for zero workers, names a
    /// baseline policy outside the matrix, or carries an out-of-range
    /// shard split.
    pub fn new(
        experiment: &'a Experiment,
        matrix: &'a ScenarioMatrix,
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        if config.workers == 0 {
            return Err(FleetError::NoWorkers);
        }
        let baseline = config.baseline.unwrap_or(matrix.policies()[0]);
        if !matrix.policies().contains(&baseline) {
            return Err(FleetError::BaselineNotInMatrix(baseline));
        }
        if let Some((index, count)) = config.shard {
            if count == 0 {
                return Err(FleetError::Shard("shard count must be at least 1".into()));
            }
            if index >= count {
                return Err(FleetError::Shard(format!(
                    "shard index {index} out of range for {count} shards"
                )));
            }
        }
        Ok(Self {
            experiment,
            matrix,
            workers: config.workers,
            baseline,
            batch_width: config.batch_width,
            shard: config.shard,
            // Environment flags OR into the config so any fleet entry
            // point (examples, benches, downstream binaries) can be
            // observed without a code change.
            telemetry: config.telemetry || env_flag("SENSEI_FLEET_TELEMETRY"),
            progress: config.progress || env_flag("SENSEI_FLEET_PROGRESS"),
        })
    }

    /// Total scenarios in the whole (unsharded) matrix.
    #[must_use]
    pub fn num_scenarios(&self) -> u64 {
        self.matrix.num_scenarios(self.experiment)
    }

    /// The tile range this run covers — the whole matrix, or this
    /// shard's contiguous slice of it — plus the [`ShardSlice`] stamp
    /// for partial reports.
    fn tile_range(&self) -> (Range<u64>, Option<ShardSlice>) {
        let total_tiles = self.matrix.num_tiles(self.experiment);
        match self.shard {
            None => (0..total_tiles, None),
            Some((index, count)) => {
                let plan = ShardPlan::new(total_tiles, count)
                    .expect("shard count was validated at construction");
                let range = plan.range(index);
                let slice = ShardSlice {
                    index,
                    count,
                    tile_lo: range.start,
                    tile_hi: range.end,
                    total_tiles,
                };
                (range, Some(slice))
            }
        }
    }

    /// Runs the matrix (or this fleet's shard of it) and streams every
    /// session into the `O(bins)`-memory aggregates. This is the
    /// fleet-scale entry point: per-session results are folded into
    /// shard-local partials where they are produced, never collected.
    ///
    /// # Errors
    ///
    /// Aborts on the first scenario failure, identifying the scenario by
    /// its stable ID (re-runnable in isolation via
    /// [`ScenarioMatrix::scenario`]).
    pub fn run(&self) -> Result<FleetReport, FleetError> {
        // sensei-lint: allow(no-wall-clock) — wall_time_s is observability (RunPhases/throughput); diff() ignores it
        let started = Instant::now();
        let mut phases = RunPhases::default();
        let (stats, shard, telemetry) = self.execute_stats(&mut phases)?;
        let wall_time_s = started.elapsed().as_secs_f64();
        let sessions = stats.sessions;
        Ok(FleetReport {
            stats,
            workers: self.workers,
            wall_time_s,
            sessions_per_sec: sessions as f64 / wall_time_s.max(1e-9),
            phases,
            telemetry,
            shard,
        })
    }

    /// Runs the matrix (or this fleet's shard of it) and collects every
    /// per-session result in canonical order — `O(sessions)` memory,
    /// meant for modest matrices (grid-sized runs, tests, figure
    /// regeneration). With the matrix from [`ScenarioMatrix::grid`] and a
    /// default-player experiment this reproduces `Experiment::run_grid`
    /// cell for cell.
    ///
    /// # Errors
    ///
    /// Aborts on the first scenario failure.
    pub fn run_cells(&self) -> Result<Vec<CellResult>, FleetError> {
        self.execute_cells()
    }

    /// Simulates one tile — every `(player, policy)` lane of one
    /// `(video, trace, perturbation)` triple — against a worker's runtime,
    /// appending the tile's cells in canonical lane order to `cells`.
    /// Apart from the runtime's caches (which are result-invisible:
    /// reused policies are reset per session and cached traces are
    /// value-identical to fresh perturbations), this is a pure function
    /// of (experiment, matrix, tile) — which is what makes sharding
    /// trivially sound.
    ///
    /// The lane list every tile shares: `(policy, player)` pairs in
    /// canonical order (player variants outer, policies inner — the
    /// tile's scenario IDs in sequence). Tile-invariant, so workers
    /// build it once per run.
    fn tile_lanes(&self) -> Vec<(PolicyKind, PlayerConfig)> {
        let mut lanes =
            Vec::with_capacity(self.matrix.num_players() * self.matrix.policies().len());
        for player_idx in 0..self.matrix.num_players() {
            let player = *self.matrix.player(self.experiment, player_idx);
            for &policy in self.matrix.policies() {
                lanes.push((policy, player));
            }
        }
        lanes
    }

    /// Errors are attributed to the exact failing scenario ID.
    fn run_tile(
        &self,
        rt: &mut WorkerRuntime,
        tile: u64,
        lanes: &[(PolicyKind, PlayerConfig)],
        cells: &mut Vec<CellResult>,
    ) -> Result<(), (u64, CoreError)> {
        let first_id = tile * self.matrix.tile_size();
        let sc = self.matrix.scenario(self.experiment, first_id);
        let asset = &self.experiment.assets[sc.video_idx];
        let base = &self.experiment.traces[sc.trace_idx];
        let perturbation = &self.matrix.perturbations()[sc.perturbation_idx];
        let WorkerRuntime { session, traces } = rt;
        let trace = {
            let _span = telemetry::span(telemetry::Phase::NetworkMaterialize);
            traces
                .resolve(
                    base,
                    perturbation,
                    sc.trace_idx,
                    sc.perturbation_idx,
                    sc.seed,
                )
                .map_err(|e| (first_id, CoreError::from(e)))?
        };
        let width = if self.batch_width == 0 {
            lanes.len()
        } else {
            self.batch_width
        };
        for (sub, sub_lanes) in lanes.chunks(width).enumerate() {
            self.experiment
                .run_batch_in(session, asset, trace, sub_lanes, cells)
                .map_err(|failure| {
                    (
                        first_id + (sub * width + failure.lane) as u64,
                        failure.error,
                    )
                })?;
        }
        Ok(())
    }

    /// Fans tiles out across the workers, each folding its own tiles
    /// into a shard-local [`FleetStats`] partial, then reduces the
    /// O(workers) partials into one aggregate after the scope joins.
    /// The channel carries only per-tile completion ticks (for the
    /// progress meter and minimum-ID error attribution), so collection
    /// work is independent of session count.
    ///
    /// Records the setup / execute / collect wall-time split into
    /// `phases` (always, with plain `Instant` reads), and returns the
    /// merged telemetry snapshot when the fleet has telemetry on.
    fn execute_stats(
        &self,
        phases: &mut RunPhases,
    ) -> Result<(FleetStats, Option<ShardSlice>, Option<TelemetrySnapshot>), FleetError> {
        // sensei-lint: allow(no-wall-clock) — setup_s phase split is observability; never feeds aggregates
        let entry = Instant::now();
        if self.num_scenarios() == 0 {
            return Err(FleetError::EmptyAxis("scenarios"));
        }
        let tile_size = self.matrix.tile_size();
        let (tiles, shard) = self.tile_range();
        let shard_tiles = tiles.end - tiles.start;
        let cursor = AtomicU64::new(tiles.start);
        let poison = AtomicBool::new(false);
        // Tick payload: the completed tile ID, or the failing scenario.
        // The channel is unbounded because ticks are O(1) each and their
        // total is bounded by the tile count — no backpressure needed.
        type Tick = Result<u64, (u64, CoreError)>;
        let (tx, rx) = mpsc::channel::<Tick>();
        // Shard-local partials, pushed once per worker at exit. Push
        // order (and therefore merge order) is scheduling-dependent —
        // which is fine, because `FleetStats::merge` is exact, so any
        // merge grouping reproduces the canonical tile-order reduction
        // bit for bit.
        let partials: Mutex<Vec<FleetStats>> = Mutex::new(Vec::with_capacity(self.workers));
        // Harvested per-worker telemetry shards (merge order is
        // irrelevant — the merge-law tests pin that down).
        let shards: Mutex<Vec<TelemetryShard>> = Mutex::new(Vec::new());
        let mut progress = self
            .progress
            .then(|| ProgressMeter::new(shard_tiles, tile_size));
        phases.setup_s = entry.elapsed().as_secs_f64();
        // sensei-lint: allow(no-wall-clock) — execute_s phase split is observability; never feeds aggregates
        let scope_started = Instant::now();
        // The main thread performs the final merge after the scope, so
        // its shard is begun here and harvested after that merge.
        if self.telemetry {
            telemetry::begin();
        }
        let scope_result = thread::scope(|scope| {
            for _ in 0..self.workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let poison = &poison;
                let partials = &partials;
                let shards = &shards;
                let tiles_end = tiles.end;
                let fleet = *self;
                scope.spawn(move || {
                    // If this worker panics (a bug deep in a policy or the
                    // simulator), poison the run on unwind so the other
                    // workers stop pulling tiles; `thread::scope` then
                    // propagates the panic.
                    let _guard = PoisonOnPanic { poison };
                    // One runtime per worker for the whole run: policies,
                    // batch scratch, and perturbed traces are reused
                    // across every tile this worker executes. The lane
                    // list is tile-invariant, so it is built once here —
                    // as are the reusable tile partial, the shard-local
                    // partial, and the cell buffer.
                    let mut runtime = WorkerRuntime::new();
                    let lanes = fleet.tile_lanes();
                    let policies = fleet.matrix.policies();
                    let mut partial = FleetStats::new(policies, fleet.baseline);
                    let mut tile_stats = TileStats::new(policies, fleet.baseline);
                    let mut cells: Vec<CellResult> =
                        Vec::with_capacity(usize::try_from(tile_size).unwrap_or(0));
                    if fleet.telemetry {
                        telemetry::begin();
                    }
                    loop {
                        if poison.load(Ordering::Relaxed) {
                            break;
                        }
                        let tile = cursor.fetch_add(1, Ordering::Relaxed);
                        if tile >= tiles_end {
                            break;
                        }
                        cells.clear();
                        let tile_started = telemetry::stopwatch();
                        let tick = match fleet.run_tile(&mut runtime, tile, &lanes, &mut cells) {
                            Err((id, e)) => {
                                poison.store(true, Ordering::Relaxed);
                                Err((id, e))
                            }
                            Ok(()) => {
                                telemetry::count(telemetry::Counter::Tiles, 1);
                                if let Some(started) = tile_started {
                                    let ns = u64::try_from(started.elapsed().as_nanos())
                                        .unwrap_or(u64::MAX);
                                    telemetry::observe(telemetry::Hist::TileNanos, ns);
                                }
                                {
                                    // The canonical reduction's per-tile
                                    // unit, folded where the results were
                                    // produced. Policy is the innermost
                                    // lane axis, so every `policies`
                                    // consecutive cells form one group.
                                    let _span = telemetry::span(telemetry::Phase::ShardFold);
                                    tile_stats.reset();
                                    for group in cells.chunks_exact(policies.len()) {
                                        tile_stats.fold_cell(group);
                                    }
                                    partial
                                        .merge(tile_stats.stats())
                                        .expect("tile partial shares the fleet's axes");
                                }
                                Ok(tile)
                            }
                        };
                        let failed = tick.is_err();
                        // A send error means the collector hung up; either
                        // way a failed worker is done.
                        if tx.send(tick).is_err() || failed {
                            break;
                        }
                    }
                    partials.lock().expect("partials lock").push(partial);
                    if fleet.telemetry {
                        shards.lock().expect("shard lock").push(telemetry::end());
                    }
                });
            }
            drop(tx);

            let mut done: u64 = 0;
            // Lowest failing scenario ID seen. Keeping the minimum (rather
            // than whichever error arrives first) stabilizes the reported
            // scenario across interleavings of the failures that did run;
            // with several failing scenarios, poisoning can still stop a
            // lower one from running at all.
            let mut error: Option<(u64, CoreError)> = None;
            while let Ok(tick) = rx.recv() {
                match tick {
                    Ok(_tile) => {
                        done += 1;
                        if let Some(meter) = progress.as_mut() {
                            meter.tick(done);
                        }
                    }
                    Err((id, e)) => {
                        poison.store(true, Ordering::Relaxed);
                        if error.as_ref().is_none_or(|(worst, _)| id < *worst) {
                            error = Some((id, e));
                        }
                    }
                }
            }
            if let Some(meter) = progress.as_mut() {
                meter.finish(done);
            }
            if let Some((id, e)) = error {
                return Err(FleetError::Scenario {
                    id,
                    source: Box::new(e),
                });
            }
            // A worker panic poisons the run without delivering an error;
            // the partial Ok below is discarded because `thread::scope`
            // re-raises the panic after joining.
            debug_assert!(poison.load(Ordering::Relaxed) || done == shard_tiles);
            Ok(())
        });
        // The whole scope wall is execute time: simulation plus each
        // worker's shard-local folds (the `shard_fold` telemetry phase
        // breaks the latter out).
        phases.execute_s = scope_started.elapsed().as_secs_f64();
        // The final reduce: `workers` fixed-shape merges, independent of
        // how many sessions streamed through the run.
        // sensei-lint: allow(no-wall-clock) — collect_s phase split is observability; never feeds aggregates
        let merge_started = Instant::now();
        let mut stats = FleetStats::new(self.matrix.policies(), self.baseline);
        {
            let _span = telemetry::span(telemetry::Phase::FinalMerge);
            for partial in partials.into_inner().expect("partials lock").iter() {
                stats
                    .merge(partial)
                    .expect("worker partials share the fleet's axes");
            }
        }
        phases.collect_s = merge_started.elapsed().as_secs_f64();
        // Harvest and merge before propagating any scenario error, so
        // the main thread's recording flag never leaks past this call.
        let snapshot = if self.telemetry {
            let mut merged = telemetry::end();
            for shard in shards.into_inner().expect("shard lock") {
                merged.merge(&shard);
            }
            Some(TelemetrySnapshot::from_shard(merged))
        } else {
            None
        };
        scope_result?;
        Ok((stats, shard, snapshot))
    }

    /// The `run_cells` twin of [`Self::execute_stats`]: workers send
    /// whole tile payloads `(tile, cells)` instead of folding them, and
    /// the collector sorts the completed tiles back into canonical order
    /// at the end. `O(sessions)` memory by design.
    fn execute_cells(&self) -> Result<Vec<CellResult>, FleetError> {
        if self.num_scenarios() == 0 {
            return Err(FleetError::EmptyAxis("scenarios"));
        }
        let tile_size = self.matrix.tile_size();
        let (tiles, _shard) = self.tile_range();
        let shard_tiles = tiles.end - tiles.start;
        let cursor = AtomicU64::new(tiles.start);
        let poison = AtomicBool::new(false);
        type TilePayload = Result<(u64, Vec<CellResult>), (u64, CoreError)>;
        let (tx, rx) = mpsc::channel::<TilePayload>();
        let mut progress = self
            .progress
            .then(|| ProgressMeter::new(shard_tiles, tile_size));
        let scope_result = thread::scope(|scope| {
            for _ in 0..self.workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let poison = &poison;
                let tiles_end = tiles.end;
                let fleet = *self;
                scope.spawn(move || {
                    let _guard = PoisonOnPanic { poison };
                    let mut runtime = WorkerRuntime::new();
                    let lanes = fleet.tile_lanes();
                    loop {
                        if poison.load(Ordering::Relaxed) {
                            break;
                        }
                        let tile = cursor.fetch_add(1, Ordering::Relaxed);
                        if tile >= tiles_end {
                            break;
                        }
                        let mut cells = Vec::with_capacity(usize::try_from(tile_size).unwrap_or(0));
                        let payload = match fleet.run_tile(&mut runtime, tile, &lanes, &mut cells) {
                            Err((id, e)) => {
                                poison.store(true, Ordering::Relaxed);
                                Err((id, e))
                            }
                            Ok(()) => Ok((tile, cells)),
                        };
                        let failed = payload.is_err();
                        if tx.send(payload).is_err() || failed {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            let mut completed: Vec<(u64, Vec<CellResult>)> = Vec::new();
            let mut error: Option<(u64, CoreError)> = None;
            while let Ok(payload) = rx.recv() {
                match payload {
                    Ok(pair) if error.is_none() => {
                        completed.push(pair);
                        if let Some(meter) = progress.as_mut() {
                            meter.tick(completed.len() as u64);
                        }
                    }
                    // Error path: keep draining so late payloads cannot
                    // leak into a result; successful tiles are discarded.
                    Ok(_) => {}
                    Err((id, e)) => {
                        poison.store(true, Ordering::Relaxed);
                        if error.as_ref().is_none_or(|(worst, _)| id < *worst) {
                            error = Some((id, e));
                        }
                    }
                }
            }
            if let Some(meter) = progress.as_mut() {
                meter.finish(completed.len() as u64);
            }
            if let Some((id, e)) = error {
                return Err(FleetError::Scenario {
                    id,
                    source: Box::new(e),
                });
            }
            Ok(completed)
        });
        let mut completed = scope_result?;
        // Canonical order is re-established by one sort over tile IDs —
        // each ID appears exactly once, so the sort fully determines the
        // cell order.
        completed.sort_unstable_by_key(|(tile, _)| *tile);
        // Pre-allocation hint with an explicit bound: the scenario count
        // can exceed `usize` only on narrow targets where such a run could
        // never be collected anyway, and even on 64-bit hosts a huge count
        // must not translate into a huge up-front allocation — beyond
        // `MAX_PREALLOC` cells the Vec grows normally instead.
        const MAX_PREALLOC: usize = 1 << 22;
        let hint = usize::try_from(shard_tiles.saturating_mul(tile_size))
            .map_or(MAX_PREALLOC, |n| n.min(MAX_PREALLOC));
        let mut out = Vec::with_capacity(hint);
        for (_, cells) in completed {
            out.extend(cells);
        }
        Ok(out)
    }
}

/// The `SENSEI_FLEET_PROGRESS=1` live progress line: a `\r`-rewritten
/// stderr status driven by tile-completion ticks, throttled so a fast
/// quick-run does not flood the terminal. Session counts are derived
/// from completed tiles (`tiles × tile_size`), so the line needs no
/// extra coordination with the workers.
struct ProgressMeter {
    started: Instant,
    last_print: Option<Instant>,
    printed: bool,
    total_tiles: u64,
    tile_size: u64,
}

impl ProgressMeter {
    /// Minimum interval between reprints.
    const THROTTLE: Duration = Duration::from_millis(200);

    fn new(total_tiles: u64, tile_size: u64) -> Self {
        Self {
            // sensei-lint: allow(no-wall-clock) — progress-line ETA anchor; display only
            started: Instant::now(),
            last_print: None,
            printed: false,
            total_tiles,
            tile_size,
        }
    }

    /// Reports a new completed-tile count.
    fn tick(&mut self, tiles_done: u64) {
        // sensei-lint: allow(no-wall-clock) — progress-line throttling; display only
        let now = Instant::now();
        let due = self
            .last_print
            .is_none_or(|last| now.duration_since(last) >= Self::THROTTLE);
        if due {
            self.last_print = Some(now);
            self.print(tiles_done, now);
        }
    }

    /// Prints the final state and releases the line with a newline.
    fn finish(&mut self, tiles_done: u64) {
        // sensei-lint: allow(no-wall-clock) — final progress-line timestamp; display only
        self.print(tiles_done, Instant::now());
        if self.printed {
            eprintln!();
        }
    }

    fn print(&mut self, tiles_done: u64, now: Instant) {
        self.printed = true;
        let elapsed = now.duration_since(self.started).as_secs_f64().max(1e-9);
        let sessions = tiles_done.saturating_mul(self.tile_size);
        let rate = sessions as f64 / elapsed;
        let eta = if tiles_done == 0 {
            "?".to_string()
        } else {
            let remaining = self.total_tiles.saturating_sub(tiles_done) as f64;
            format!("{:.0}s", elapsed / tiles_done as f64 * remaining)
        };
        eprint!(
            "\r[fleet] tiles {tiles_done}/{} | {sessions} sessions | {rate:.0}/s | ETA {eta}",
            self.total_tiles
        );
    }
}

/// Poisons the run if the owning worker unwinds, so the rest of the fleet
/// stops pulling tiles and `thread::scope` can propagate the panic.
struct PoisonOnPanic<'a> {
    poison: &'a AtomicBool,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.poison.store(true, Ordering::Relaxed);
        }
    }
}
