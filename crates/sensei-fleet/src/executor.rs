//! The std-only sharded executor.
//!
//! Workers pull scenario IDs from a shared atomic cursor (dynamic load
//! balancing — an expensive MPC session on one worker doesn't idle the
//! rest), simulate, and stream `(id, result)` pairs back over a bounded
//! channel. The collector folds results into the aggregates **in canonical
//! ID order** via a small reorder buffer, so the folded floating-point
//! stream — and therefore every aggregate bit — is identical whether the
//! fleet ran on 1 worker or 64.
//!
//! The reorder buffer holds only results that arrived ahead of the next
//! ID to fold, and an admission window keeps it **hard-bounded**: a worker
//! may not start a scenario more than `window` IDs ahead of the fold
//! frontier, so even when one expensive scenario stalls the frontier while
//! the rest of the fleet races ahead, at most `window` results are ever
//! buffered. Collector memory is `O(window)` on top of the `O(bins)`
//! aggregates, independent of fleet size.

use crate::report::{FleetReport, FleetStats};
use crate::runtime::WorkerRuntime;
use crate::scenario::{Scenario, ScenarioMatrix};
use crate::FleetError;
use sensei_core::{CellResult, CoreError, Experiment, PolicyKind};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads to shard scenarios across (must be ≥ 1).
    pub workers: usize,
    /// Baseline policy for the QoE-gain CDFs; defaults to the matrix's
    /// first policy.
    pub baseline: Option<PolicyKind>,
}

impl FleetConfig {
    /// A config with `workers` threads and the default baseline.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            baseline: None,
        }
    }

    /// Sets the gain baseline policy.
    #[must_use]
    pub fn with_baseline(mut self, baseline: PolicyKind) -> Self {
        self.baseline = Some(baseline);
        self
    }
}

impl Default for FleetConfig {
    /// One worker per available core.
    fn default() -> Self {
        Self::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }
}

/// A fleet run bound to an experiment environment and a scenario matrix.
#[derive(Clone, Copy)]
pub struct Fleet<'a> {
    experiment: &'a Experiment,
    matrix: &'a ScenarioMatrix,
    workers: usize,
    baseline: PolicyKind,
}

impl<'a> Fleet<'a> {
    /// Binds `matrix` to `experiment` under `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the config asks for zero workers or names a
    /// baseline policy outside the matrix.
    pub fn new(
        experiment: &'a Experiment,
        matrix: &'a ScenarioMatrix,
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        if config.workers == 0 {
            return Err(FleetError::NoWorkers);
        }
        let baseline = config.baseline.unwrap_or(matrix.policies()[0]);
        if !matrix.policies().contains(&baseline) {
            return Err(FleetError::BaselineNotInMatrix(baseline));
        }
        Ok(Self {
            experiment,
            matrix,
            workers: config.workers,
            baseline,
        })
    }

    /// Total scenarios this fleet will run.
    #[must_use]
    pub fn num_scenarios(&self) -> u64 {
        self.matrix.num_scenarios(self.experiment)
    }

    /// Runs the whole matrix and streams every session into the
    /// `O(bins)`-memory aggregates. This is the fleet-scale entry point:
    /// per-session results are folded and dropped, never collected.
    ///
    /// # Errors
    ///
    /// Aborts on the first scenario failure, identifying the scenario by
    /// its stable ID (re-runnable in isolation via
    /// [`ScenarioMatrix::scenario`]).
    pub fn run(&self) -> Result<FleetReport, FleetError> {
        let policies = self.matrix.policies().len();
        let mut stats = FleetStats::new(self.matrix.policies(), self.baseline);
        let mut cell: Vec<CellResult> = Vec::with_capacity(policies);
        let started = Instant::now();
        self.execute(|_, result| {
            cell.push(result);
            // Policy is the innermost axis, so `policies` consecutive
            // results in canonical order form exactly one cell.
            if cell.len() == policies {
                stats.fold_cell(&cell);
                cell.clear();
            }
        })?;
        let wall_time_s = started.elapsed().as_secs_f64();
        let sessions = stats.sessions;
        Ok(FleetReport {
            stats,
            workers: self.workers,
            wall_time_s,
            sessions_per_sec: sessions as f64 / wall_time_s.max(1e-9),
        })
    }

    /// Runs the whole matrix and collects every per-session result in
    /// canonical order — `O(sessions)` memory, meant for modest matrices
    /// (grid-sized runs, tests, figure regeneration). With the matrix from
    /// [`ScenarioMatrix::grid`] and a default-player experiment this
    /// reproduces `Experiment::run_grid` cell for cell.
    ///
    /// # Errors
    ///
    /// Aborts on the first scenario failure.
    pub fn run_cells(&self) -> Result<Vec<CellResult>, FleetError> {
        // Pre-allocation hint with an explicit bound: the scenario count
        // can exceed `usize` only on narrow targets where such a run could
        // never be collected anyway, and even on 64-bit hosts a huge count
        // must not translate into a huge up-front allocation — beyond
        // `MAX_PREALLOC` cells the Vec grows normally instead.
        const MAX_PREALLOC: usize = 1 << 22;
        let hint =
            usize::try_from(self.num_scenarios()).map_or(MAX_PREALLOC, |n| n.min(MAX_PREALLOC));
        let mut cells = Vec::with_capacity(hint);
        self.execute(|_, result| cells.push(result))?;
        Ok(cells)
    }

    /// Simulates one scenario against a worker's runtime. Apart from the
    /// runtime's caches (which are result-invisible: reused policies are
    /// reset per session and cached traces are value-identical to fresh
    /// perturbations), this is a pure function of (experiment, matrix,
    /// scenario) — which is what makes sharding trivially sound.
    fn run_scenario(&self, rt: &mut WorkerRuntime, sc: &Scenario) -> Result<CellResult, CoreError> {
        let asset = &self.experiment.assets[sc.video_idx];
        let base = &self.experiment.traces[sc.trace_idx];
        let perturbation = &self.matrix.perturbations()[sc.perturbation_idx];
        let WorkerRuntime { session, traces } = rt;
        let trace = traces.resolve(
            base,
            perturbation,
            sc.trace_idx,
            sc.perturbation_idx,
            sc.seed,
        )?;
        let player = self.matrix.player(self.experiment, sc.player_idx);
        self.experiment
            .run_session_in(session, asset, trace, sc.policy, player)
    }

    /// Fans scenarios out across the workers and invokes `sink` for every
    /// result **in canonical scenario order** (`sink(0, …)`, `sink(1, …)`,
    /// …), regardless of completion order.
    fn execute(&self, mut sink: impl FnMut(u64, CellResult)) -> Result<(), FleetError> {
        let total = self.num_scenarios();
        if total == 0 {
            return Err(FleetError::EmptyAxis("scenarios"));
        }
        // Admission window: workers may run at most this many scenarios
        // ahead of the collector's fold frontier, which caps the reorder
        // buffer (and the channel) at `window` entries even when one slow
        // scenario stalls the frontier while the rest of the fleet races
        // ahead. The conversion is checked: `usize` → `u64` is lossless on
        // every supported target (≤ 64-bit), and saturating afterwards
        // bounds even absurd worker counts instead of silently wrapping.
        let window = u64::try_from(self.workers)
            .unwrap_or(u64::MAX)
            .saturating_mul(32)
            .max(64);
        let cursor = AtomicU64::new(0);
        let poison = AtomicBool::new(false);
        let frontier = Frontier::default();
        // Checked back-conversion for the channel bound (the window was
        // computed in u64; saturating keeps narrow targets safe).
        let channel_bound = usize::try_from(window).unwrap_or(usize::MAX);
        let (tx, rx) = mpsc::sync_channel::<(u64, Result<CellResult, CoreError>)>(channel_bound);
        thread::scope(|scope| {
            for _ in 0..self.workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let poison = &poison;
                let frontier = &frontier;
                let fleet = *self;
                scope.spawn(move || {
                    // If this worker panics (a bug deep in a policy or the
                    // simulator), poison the run on unwind so the other
                    // workers and the collector shut down instead of
                    // waiting on a frontier that can no longer advance;
                    // `thread::scope` then propagates the panic.
                    let _guard = PoisonOnPanic { poison, frontier };
                    // One runtime per worker for the whole run: policies,
                    // simulator scratch, and perturbed traces are reused
                    // across every scenario this worker executes.
                    let mut runtime = WorkerRuntime::new();
                    loop {
                        if poison.load(Ordering::Relaxed) {
                            break;
                        }
                        let id = cursor.fetch_add(1, Ordering::Relaxed);
                        if id >= total {
                            break;
                        }
                        if !frontier.wait_until_admitted(id, window, poison) {
                            break;
                        }
                        let scenario = fleet.matrix.scenario(fleet.experiment, id);
                        let result = fleet.run_scenario(&mut runtime, &scenario);
                        let failed = result.is_err();
                        if failed {
                            poison.store(true, Ordering::Relaxed);
                            frontier.release_all();
                        }
                        // A send error means the collector hung up (error
                        // path); either way this worker is done.
                        if tx.send((id, result)).is_err() || failed {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            let mut next: u64 = 0;
            let mut reorder: BTreeMap<u64, CellResult> = BTreeMap::new();
            // Lowest failing scenario ID seen. Keeping the minimum (rather
            // than whichever error arrives first) stabilizes the reported
            // scenario across interleavings of the failures that did run;
            // with several failing scenarios, poisoning can still stop a
            // lower one from running at all.
            let mut error: Option<(u64, CoreError)> = None;
            for (id, result) in &rx {
                match result {
                    Err(e) => {
                        poison.store(true, Ordering::Relaxed);
                        frontier.release_all();
                        if error.as_ref().is_none_or(|(worst, _)| id < *worst) {
                            error = Some((id, e));
                        }
                    }
                    Ok(cell) if error.is_none() => {
                        reorder.insert(id, cell);
                        let before = next;
                        while let Some(cell) = reorder.remove(&next) {
                            sink(next, cell);
                            next += 1;
                        }
                        if next != before {
                            frontier.advance_to(next);
                        }
                    }
                    // Error path: keep draining so no worker blocks on the
                    // bounded channel; successful results are discarded.
                    Ok(_) => {}
                }
            }
            if let Some((id, e)) = error {
                return Err(FleetError::Scenario {
                    id,
                    source: Box::new(e),
                });
            }
            // A worker panic poisons the run without delivering an error;
            // the partial Ok below is discarded because `thread::scope`
            // re-raises the panic after joining.
            debug_assert!(poison.load(Ordering::Relaxed) || (reorder.is_empty() && next == total));
            Ok(())
        })
    }
}

/// Poisons the run if the owning worker unwinds, so the rest of the fleet
/// shuts down cleanly and `thread::scope` can propagate the panic instead
/// of deadlocking on a frontier that will never advance.
struct PoisonOnPanic<'a> {
    poison: &'a AtomicBool,
    frontier: &'a Frontier,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.poison.store(true, Ordering::Relaxed);
            self.frontier.release_all();
        }
    }
}

/// The collector's fold frontier, shared with the workers to bound how
/// far ahead of the in-order fold they may run.
#[derive(Default)]
struct Frontier {
    folded: Mutex<u64>,
    advanced: Condvar,
}

impl Frontier {
    /// Blocks until `id` is within `window` of the fold frontier (all
    /// results below the frontier have been folded, so at most `window`
    /// results can be queued or buffered). Returns `false` when the run
    /// was poisoned in the meantime — including via [`Self::release_all`],
    /// which satisfies the admission condition, so the final poison check
    /// is what keeps released workers from running a doomed scenario.
    fn wait_until_admitted(&self, id: u64, window: u64, poison: &AtomicBool) -> bool {
        let mut folded = self.folded.lock().expect("frontier lock");
        while id >= folded.saturating_add(window) {
            if poison.load(Ordering::Relaxed) {
                return false;
            }
            folded = self.advanced.wait(folded).expect("frontier lock");
        }
        !poison.load(Ordering::Relaxed)
    }

    /// Publishes the collector's new fold frontier.
    fn advance_to(&self, next: u64) {
        *self.folded.lock().expect("frontier lock") = next;
        self.advanced.notify_all();
    }

    /// Wakes every waiting worker (error shutdown — they re-check the
    /// poison flag and exit).
    fn release_all(&self) {
        *self.folded.lock().expect("frontier lock") = u64::MAX;
        self.advanced.notify_all();
    }
}
