//! The std-only tile-scheduled executor.
//!
//! The scheduling unit is a **tile** — the contiguous scenario-ID range
//! sharing one `(video, trace, perturbation)` triple (every player variant
//! × policy of that cell group). Workers pull tile IDs from a shared
//! atomic cursor (dynamic load balancing — an expensive MPC tile on one
//! worker doesn't idle the rest), run each tile through one
//! structure-of-arrays session batch (`Experiment::run_batch_in`), and
//! stream `(tile, results)` back over a bounded channel. Tiling is what
//! amortizes the per-network work: the perturbed trace is materialized
//! once per worker (`TraceCache`), policies rebind once per tile instead
//! of once per session, and the batch engine replaces per-session policy
//! dispatch with one `select_batch` call per chunk.
//!
//! The collector folds results into the aggregates **in canonical
//! scenario-ID order** via a small reorder buffer, so the folded
//! floating-point stream — and therefore every aggregate bit — is
//! identical whether the fleet ran on 1 worker or 64, and for any batch
//! width (the batch engine is byte-identical to the scalar path per
//! lane).
//!
//! The reorder buffer holds only tiles that arrived ahead of the next
//! tile to fold, and an admission window keeps it **hard-bounded**: a
//! worker may not start a tile more than `window` tiles ahead of the fold
//! frontier, so even when one expensive tile stalls the frontier while
//! the rest of the fleet races ahead, at most `window` tiles are ever
//! buffered. Collector memory is `O(window × tile)` on top of the
//! `O(bins)` aggregates, independent of fleet size.

use crate::report::{FleetReport, FleetStats, RunPhases};
use crate::runtime::WorkerRuntime;
use crate::scenario::ScenarioMatrix;
use crate::FleetError;
use sensei_core::{CellResult, CoreError, Experiment, PolicyKind};
use sensei_sim::PlayerConfig;
use sensei_telemetry as telemetry;
use sensei_telemetry::{TelemetryShard, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads to shard tiles across (must be ≥ 1).
    pub workers: usize,
    /// Baseline policy for the QoE-gain CDFs; defaults to the matrix's
    /// first policy.
    pub baseline: Option<PolicyKind>,
    /// Maximum lanes per session batch — the lane-width knob. `0` (the
    /// default) runs each tile as one full-width batch; `1` degenerates
    /// to per-session scalar execution. Results are identical for every
    /// width; the knob only trades batch-state footprint against
    /// amortization.
    pub batch_width: usize,
    /// Collect per-worker telemetry shards (counters, phase timers,
    /// histograms) and attach the merged [`TelemetrySnapshot`] to the
    /// report. Recording is simulation-invisible: aggregates are
    /// bit-identical with this on or off (test-enforced). Also
    /// switchable per run via `SENSEI_FLEET_TELEMETRY=1`.
    pub telemetry: bool,
    /// Emit a live `\r`-rewritten progress line on stderr (tiles done,
    /// sessions/s, ETA), driven by the collector's fold frontier. Also
    /// switchable per run via `SENSEI_FLEET_PROGRESS=1`.
    pub progress: bool,
}

impl FleetConfig {
    /// A config with `workers` threads, the default baseline, and
    /// full-tile batches.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            baseline: None,
            batch_width: 0,
            telemetry: false,
            progress: false,
        }
    }

    /// Sets the gain baseline policy.
    #[must_use]
    pub fn with_baseline(mut self, baseline: PolicyKind) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Caps session batches at `width` lanes (`0` = full tile).
    #[must_use]
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width;
        self
    }

    /// Turns telemetry collection on or off.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Turns the live stderr progress line on or off.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }
}

/// Whether an environment flag is set to a truthy value (anything but
/// empty or `0`).
fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

impl Default for FleetConfig {
    /// One worker per available core.
    fn default() -> Self {
        Self::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }
}

/// A fleet run bound to an experiment environment and a scenario matrix.
#[derive(Clone, Copy)]
pub struct Fleet<'a> {
    experiment: &'a Experiment,
    matrix: &'a ScenarioMatrix,
    workers: usize,
    baseline: PolicyKind,
    batch_width: usize,
    telemetry: bool,
    progress: bool,
}

impl<'a> Fleet<'a> {
    /// Binds `matrix` to `experiment` under `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the config asks for zero workers or names a
    /// baseline policy outside the matrix.
    pub fn new(
        experiment: &'a Experiment,
        matrix: &'a ScenarioMatrix,
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        if config.workers == 0 {
            return Err(FleetError::NoWorkers);
        }
        let baseline = config.baseline.unwrap_or(matrix.policies()[0]);
        if !matrix.policies().contains(&baseline) {
            return Err(FleetError::BaselineNotInMatrix(baseline));
        }
        Ok(Self {
            experiment,
            matrix,
            workers: config.workers,
            baseline,
            batch_width: config.batch_width,
            // Environment flags OR into the config so any fleet entry
            // point (examples, benches, downstream binaries) can be
            // observed without a code change.
            telemetry: config.telemetry || env_flag("SENSEI_FLEET_TELEMETRY"),
            progress: config.progress || env_flag("SENSEI_FLEET_PROGRESS"),
        })
    }

    /// Total scenarios this fleet will run.
    #[must_use]
    pub fn num_scenarios(&self) -> u64 {
        self.matrix.num_scenarios(self.experiment)
    }

    /// Runs the whole matrix and streams every session into the
    /// `O(bins)`-memory aggregates. This is the fleet-scale entry point:
    /// per-session results are folded and dropped, never collected.
    ///
    /// # Errors
    ///
    /// Aborts on the first scenario failure, identifying the scenario by
    /// its stable ID (re-runnable in isolation via
    /// [`ScenarioMatrix::scenario`]).
    pub fn run(&self) -> Result<FleetReport, FleetError> {
        let policies = self.matrix.policies().len();
        let mut stats = FleetStats::new(self.matrix.policies(), self.baseline);
        let mut cell: Vec<CellResult> = Vec::with_capacity(policies);
        let started = Instant::now();
        let mut phases = RunPhases::default();
        let telemetry = self.execute(&mut phases, |_, result| {
            cell.push(result);
            // Policy is the innermost axis, so `policies` consecutive
            // results in canonical order form exactly one cell.
            if cell.len() == policies {
                stats.fold_cell(&cell);
                cell.clear();
            }
        })?;
        let wall_time_s = started.elapsed().as_secs_f64();
        let sessions = stats.sessions;
        Ok(FleetReport {
            stats,
            workers: self.workers,
            wall_time_s,
            sessions_per_sec: sessions as f64 / wall_time_s.max(1e-9),
            phases,
            telemetry,
        })
    }

    /// Runs the whole matrix and collects every per-session result in
    /// canonical order — `O(sessions)` memory, meant for modest matrices
    /// (grid-sized runs, tests, figure regeneration). With the matrix from
    /// [`ScenarioMatrix::grid`] and a default-player experiment this
    /// reproduces `Experiment::run_grid` cell for cell.
    ///
    /// # Errors
    ///
    /// Aborts on the first scenario failure.
    pub fn run_cells(&self) -> Result<Vec<CellResult>, FleetError> {
        // Pre-allocation hint with an explicit bound: the scenario count
        // can exceed `usize` only on narrow targets where such a run could
        // never be collected anyway, and even on 64-bit hosts a huge count
        // must not translate into a huge up-front allocation — beyond
        // `MAX_PREALLOC` cells the Vec grows normally instead.
        const MAX_PREALLOC: usize = 1 << 22;
        let hint =
            usize::try_from(self.num_scenarios()).map_or(MAX_PREALLOC, |n| n.min(MAX_PREALLOC));
        let mut cells = Vec::with_capacity(hint);
        self.execute(&mut RunPhases::default(), |_, result| cells.push(result))?;
        Ok(cells)
    }

    /// Simulates one tile — every `(player, policy)` lane of one
    /// `(video, trace, perturbation)` triple — against a worker's runtime,
    /// appending the tile's cells in canonical lane order to `cells`.
    /// Apart from the runtime's caches (which are result-invisible:
    /// reused policies are reset per session and cached traces are
    /// value-identical to fresh perturbations), this is a pure function
    /// of (experiment, matrix, tile) — which is what makes sharding
    /// trivially sound.
    ///
    /// The lane list every tile shares: `(policy, player)` pairs in
    /// canonical order (player variants outer, policies inner — the
    /// tile's scenario IDs in sequence). Tile-invariant, so workers
    /// build it once per run.
    fn tile_lanes(&self) -> Vec<(PolicyKind, PlayerConfig)> {
        let mut lanes =
            Vec::with_capacity(self.matrix.num_players() * self.matrix.policies().len());
        for player_idx in 0..self.matrix.num_players() {
            let player = *self.matrix.player(self.experiment, player_idx);
            for &policy in self.matrix.policies() {
                lanes.push((policy, player));
            }
        }
        lanes
    }

    /// Errors are attributed to the exact failing scenario ID.
    fn run_tile(
        &self,
        rt: &mut WorkerRuntime,
        tile: u64,
        lanes: &[(PolicyKind, PlayerConfig)],
        cells: &mut Vec<CellResult>,
    ) -> Result<(), (u64, CoreError)> {
        let first_id = tile * self.matrix.tile_size();
        let sc = self.matrix.scenario(self.experiment, first_id);
        let asset = &self.experiment.assets[sc.video_idx];
        let base = &self.experiment.traces[sc.trace_idx];
        let perturbation = &self.matrix.perturbations()[sc.perturbation_idx];
        let WorkerRuntime { session, traces } = rt;
        let trace = {
            let _span = telemetry::span(telemetry::Phase::NetworkMaterialize);
            traces
                .resolve(
                    base,
                    perturbation,
                    sc.trace_idx,
                    sc.perturbation_idx,
                    sc.seed,
                )
                .map_err(|e| (first_id, CoreError::from(e)))?
        };
        let width = if self.batch_width == 0 {
            lanes.len()
        } else {
            self.batch_width
        };
        for (sub, sub_lanes) in lanes.chunks(width).enumerate() {
            self.experiment
                .run_batch_in(session, asset, trace, sub_lanes, cells)
                .map_err(|failure| {
                    (
                        first_id + (sub * width + failure.lane) as u64,
                        failure.error,
                    )
                })?;
        }
        Ok(())
    }

    /// Fans tiles out across the workers and invokes `sink` for every
    /// result **in canonical scenario order** (`sink(0, …)`, `sink(1, …)`,
    /// …), regardless of completion order.
    ///
    /// Records the setup / execute / collect wall-time split into
    /// `phases` (always, with plain `Instant` reads), and returns the
    /// merged telemetry snapshot when the fleet has telemetry on.
    fn execute(
        &self,
        phases: &mut RunPhases,
        mut sink: impl FnMut(u64, CellResult),
    ) -> Result<Option<TelemetrySnapshot>, FleetError> {
        let entry = Instant::now();
        if self.num_scenarios() == 0 {
            return Err(FleetError::EmptyAxis("scenarios"));
        }
        let tile_size = self.matrix.tile_size();
        let total_tiles = self.matrix.num_tiles(self.experiment);
        // Admission window: workers may run at most this many tiles ahead
        // of the collector's fold frontier, which caps the reorder buffer
        // (and the channel) at `window` tiles even when one slow tile
        // stalls the frontier while the rest of the fleet races ahead.
        // The conversion is checked: `usize` → `u64` is lossless on every
        // supported target (≤ 64-bit), and saturating afterwards bounds
        // even absurd worker counts instead of silently wrapping.
        let window = u64::try_from(self.workers)
            .unwrap_or(u64::MAX)
            .saturating_mul(8)
            .max(16);
        let cursor = AtomicU64::new(0);
        let poison = AtomicBool::new(false);
        let frontier = Frontier::default();
        // Checked back-conversion for the channel bound (the window was
        // computed in u64; saturating keeps narrow targets safe).
        let channel_bound = usize::try_from(window).unwrap_or(usize::MAX);
        type TileResult = Result<Vec<CellResult>, (u64, CoreError)>;
        let (tx, rx) = mpsc::sync_channel::<(u64, TileResult)>(channel_bound);
        // Harvested per-worker telemetry shards (pushed once per worker
        // at exit; merge order is irrelevant — the merge-law tests pin
        // that down).
        let shards: Mutex<Vec<TelemetryShard>> = Mutex::new(Vec::new());
        let mut progress = self
            .progress
            .then(|| ProgressMeter::new(total_tiles, tile_size));
        // Collector fold time, accumulated with plain `Instant` reads so
        // the phase split is available even with telemetry off.
        let mut collect_ns: u64 = 0;
        phases.setup_s = entry.elapsed().as_secs_f64();
        let scope_started = Instant::now();
        // The main thread doubles as the collector inside the scope, so
        // its shard (recv-wait and fold spans) is begun here and
        // harvested right after the scope joins.
        if self.telemetry {
            telemetry::begin();
        }
        let scope_result = thread::scope(|scope| {
            for _ in 0..self.workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let poison = &poison;
                let frontier = &frontier;
                let shards = &shards;
                let fleet = *self;
                scope.spawn(move || {
                    // If this worker panics (a bug deep in a policy or the
                    // simulator), poison the run on unwind so the other
                    // workers and the collector shut down instead of
                    // waiting on a frontier that can no longer advance;
                    // `thread::scope` then propagates the panic.
                    let _guard = PoisonOnPanic { poison, frontier };
                    // One runtime per worker for the whole run: policies,
                    // batch scratch, and perturbed traces are reused
                    // across every tile this worker executes. The lane
                    // list is tile-invariant, so it is built once here.
                    let mut runtime = WorkerRuntime::new();
                    let lanes = fleet.tile_lanes();
                    if fleet.telemetry {
                        telemetry::begin();
                    }
                    loop {
                        if poison.load(Ordering::Relaxed) {
                            break;
                        }
                        let tile = cursor.fetch_add(1, Ordering::Relaxed);
                        if tile >= total_tiles {
                            break;
                        }
                        let admitted = {
                            let _span = telemetry::span(telemetry::Phase::TileAdmissionWait);
                            frontier.wait_until_admitted(tile, window, poison)
                        };
                        if !admitted {
                            break;
                        }
                        let mut cells = Vec::with_capacity(usize::try_from(tile_size).unwrap_or(0));
                        let tile_started = telemetry::stopwatch();
                        let result = fleet
                            .run_tile(&mut runtime, tile, &lanes, &mut cells)
                            .map(|()| cells);
                        let failed = result.is_err();
                        if failed {
                            poison.store(true, Ordering::Relaxed);
                            frontier.release_all();
                        } else {
                            telemetry::count(telemetry::Counter::Tiles, 1);
                            if let Some(started) = tile_started {
                                let ns =
                                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                                telemetry::observe(telemetry::Hist::TileNanos, ns);
                            }
                        }
                        // A send error means the collector hung up (error
                        // path); either way this worker is done.
                        if tx.send((tile, result)).is_err() || failed {
                            break;
                        }
                    }
                    if fleet.telemetry {
                        shards.lock().expect("shard lock").push(telemetry::end());
                    }
                });
            }
            drop(tx);

            let mut next: u64 = 0;
            let mut reorder: BTreeMap<u64, Vec<CellResult>> = BTreeMap::new();
            // Lowest failing scenario ID seen. Keeping the minimum (rather
            // than whichever error arrives first) stabilizes the reported
            // scenario across interleavings of the failures that did run;
            // with several failing scenarios, poisoning can still stop a
            // lower one from running at all.
            let mut error: Option<(u64, CoreError)> = None;
            loop {
                let received = {
                    let _span = telemetry::span(telemetry::Phase::CollectRecvWait);
                    rx.recv()
                };
                let Ok((tile, result)) = received else { break };
                match result {
                    Err((id, e)) => {
                        poison.store(true, Ordering::Relaxed);
                        frontier.release_all();
                        if error.as_ref().is_none_or(|(worst, _)| id < *worst) {
                            error = Some((id, e));
                        }
                    }
                    Ok(cells) if error.is_none() => {
                        let fold_started = Instant::now();
                        reorder.insert(tile, cells);
                        let before = next;
                        while let Some(cells) = reorder.remove(&next) {
                            for (offset, cell) in cells.into_iter().enumerate() {
                                sink(next * tile_size + offset as u64, cell);
                            }
                            next += 1;
                        }
                        if next != before {
                            frontier.advance_to(next);
                            if let Some(meter) = progress.as_mut() {
                                meter.tick(next);
                            }
                        }
                        // One reading serves both the always-on phase
                        // split and the telemetry fold span.
                        let ns =
                            u64::try_from(fold_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        collect_ns = collect_ns.saturating_add(ns);
                        telemetry::record_phase_ns(telemetry::Phase::CollectFold, ns);
                    }
                    // Error path: keep draining so no worker blocks on the
                    // bounded channel; successful results are discarded.
                    Ok(_) => {}
                }
            }
            if let Some(meter) = progress.as_mut() {
                meter.finish(next);
            }
            if let Some((id, e)) = error {
                return Err(FleetError::Scenario {
                    id,
                    source: Box::new(e),
                });
            }
            // A worker panic poisons the run without delivering an error;
            // the partial Ok below is discarded because `thread::scope`
            // re-raises the panic after joining.
            debug_assert!(
                poison.load(Ordering::Relaxed) || (reorder.is_empty() && next == total_tiles)
            );
            Ok(())
        });
        let scope_s = scope_started.elapsed().as_secs_f64();
        phases.collect_s = collect_ns as f64 * 1e-9;
        phases.execute_s = (scope_s - phases.collect_s).max(0.0);
        // Harvest and merge before propagating any scenario error, so
        // the main thread's recording flag never leaks past this call.
        let snapshot = if self.telemetry {
            let mut merged = telemetry::end();
            for shard in shards.into_inner().expect("shard lock") {
                merged.merge(&shard);
            }
            Some(TelemetrySnapshot::from_shard(merged))
        } else {
            None
        };
        scope_result?;
        Ok(snapshot)
    }
}

/// The `SENSEI_FLEET_PROGRESS=1` live progress line: a `\r`-rewritten
/// stderr status driven by the collector's fold frontier, throttled so a
/// fast quick-run does not flood the terminal. Session counts are derived
/// from folded tiles (`tiles × tile_size`), so the line needs no extra
/// coordination with the workers.
struct ProgressMeter {
    started: Instant,
    last_print: Option<Instant>,
    printed: bool,
    total_tiles: u64,
    tile_size: u64,
}

impl ProgressMeter {
    /// Minimum interval between reprints.
    const THROTTLE: Duration = Duration::from_millis(200);

    fn new(total_tiles: u64, tile_size: u64) -> Self {
        Self {
            started: Instant::now(),
            last_print: None,
            printed: false,
            total_tiles,
            tile_size,
        }
    }

    /// Reports a new fold frontier (tiles folded so far).
    fn tick(&mut self, tiles_done: u64) {
        let now = Instant::now();
        let due = self
            .last_print
            .is_none_or(|last| now.duration_since(last) >= Self::THROTTLE);
        if due {
            self.last_print = Some(now);
            self.print(tiles_done, now);
        }
    }

    /// Prints the final state and releases the line with a newline.
    fn finish(&mut self, tiles_done: u64) {
        self.print(tiles_done, Instant::now());
        if self.printed {
            eprintln!();
        }
    }

    fn print(&mut self, tiles_done: u64, now: Instant) {
        self.printed = true;
        let elapsed = now.duration_since(self.started).as_secs_f64().max(1e-9);
        let sessions = tiles_done.saturating_mul(self.tile_size);
        let rate = sessions as f64 / elapsed;
        let eta = if tiles_done == 0 {
            "?".to_string()
        } else {
            let remaining = self.total_tiles.saturating_sub(tiles_done) as f64;
            format!("{:.0}s", elapsed / tiles_done as f64 * remaining)
        };
        eprint!(
            "\r[fleet] tiles {tiles_done}/{} | {sessions} sessions | {rate:.0}/s | ETA {eta}",
            self.total_tiles
        );
    }
}

/// Poisons the run if the owning worker unwinds, so the rest of the fleet
/// shuts down cleanly and `thread::scope` can propagate the panic instead
/// of deadlocking on a frontier that will never advance.
struct PoisonOnPanic<'a> {
    poison: &'a AtomicBool,
    frontier: &'a Frontier,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.poison.store(true, Ordering::Relaxed);
            self.frontier.release_all();
        }
    }
}

/// The collector's fold frontier, shared with the workers to bound how
/// far ahead of the in-order fold they may run.
#[derive(Default)]
struct Frontier {
    folded: Mutex<u64>,
    advanced: Condvar,
}

impl Frontier {
    /// Blocks until `id` is within `window` of the fold frontier (all
    /// results below the frontier have been folded, so at most `window`
    /// results can be queued or buffered). Returns `false` when the run
    /// was poisoned in the meantime — including via [`Self::release_all`],
    /// which satisfies the admission condition, so the final poison check
    /// is what keeps released workers from running a doomed scenario.
    fn wait_until_admitted(&self, id: u64, window: u64, poison: &AtomicBool) -> bool {
        let mut folded = self.folded.lock().expect("frontier lock");
        while id >= folded.saturating_add(window) {
            if poison.load(Ordering::Relaxed) {
                return false;
            }
            folded = self.advanced.wait(folded).expect("frontier lock");
        }
        !poison.load(Ordering::Relaxed)
    }

    /// Publishes the collector's new fold frontier.
    fn advance_to(&self, next: u64) {
        *self.folded.lock().expect("frontier lock") = next;
        self.advanced.notify_all();
    }

    /// Wakes every waiting worker (error shutdown — they re-check the
    /// poison flag and exit).
    fn release_all(&self) {
        *self.folded.lock().expect("frontier lock") = u64::MAX;
        self.advanced.notify_all();
    }
}
