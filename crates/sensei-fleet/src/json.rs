//! Minimal JSON reader/writer for persisted fleet reports.
//!
//! The workspace is offline (no serde; see `shims/`), and the only JSON
//! this repository speaks is its own `FleetReport` persistence format —
//! so this module implements exactly the JSON subset that format needs:
//! objects, arrays, strings with standard escapes, `f64`/`u64` numbers,
//! booleans, and `null`.
//!
//! Numbers are written with Rust's shortest-round-trip formatting
//! (`{:?}` for `f64`), so `parse(write(x)) == x` bit for bit — the
//! property `FleetReport::from_json(to_json())` relies on. Integer counts
//! are written without a fraction and survive exactly up to 2^53 (far
//! beyond any session count a fleet run can fold).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are ordered (BTreeMap) so output is canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (must be whole and in `u64`
    /// range).
    #[must_use]
    // The guard proves the f64 is a non-negative integer ≤ 2^53, so the
    // cast is exact (see the sensei-lint allow at the cast site).
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // sensei-lint: allow(no-lossy-cast) — guard proves n is whole, non-negative, ≤ 2^53; cast is exact
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes with 2-space indentation (the repository's artifact
    /// style, diff-friendly for checked-in baselines).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    // Integral f64s (guarded by `fract() == 0.0`) print via an exact
    // i64 cast (see the sensei-lint allow at the cast site).
    #[allow(clippy::cast_possible_truncation)]
    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Whole numbers print as integers (negative zero keeps its
                // sign via the float path so bit-exactness survives).
                if n.fract() == 0.0
                    && n.abs() < 2f64.powi(53)
                    && (*n != 0.0 || n.is_sign_positive())
                {
                    // sensei-lint: allow(no-lossy-cast) — guard proves n is whole with |n| < 2^53; cast is exact
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    // Shortest representation that round-trips.
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Shorthand object builder used by the report serializer.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = obj([
            ("name", Json::Str("fleet \"quick\"\n".to_string())),
            ("count", Json::Num(12.0)),
            ("mean", Json::Num(0.123_456_789_012_345_67)),
            ("tiny", Json::Num(1e-300)),
            ("neg", Json::Num(-42.5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Arr(vec![])]),
            ),
        ]);
        let text = v.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            33537.7,
            2f64.powi(53) - 1.0,
        ] {
            let text = Json::Num(x).to_pretty();
            let back = parse(text.trim()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn integers_are_written_without_fraction() {
        assert_eq!(Json::Num(42.0).to_pretty().trim(), "42");
        assert_eq!(
            Json::Num(42.0).to_pretty().trim().parse::<u64>().unwrap(),
            42
        );
        assert_eq!(Json::Num(42.5).to_pretty().trim(), "42.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"x", "1 2", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse("{\"n\": 3, \"s\": \"x\", \"f\": 1.5}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Null.get("x"), None);
    }
}
