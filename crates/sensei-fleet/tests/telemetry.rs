//! The telemetry layer's load-bearing contracts:
//!
//! 1. **Simulation invisibility** — a fleet run's `FleetStats` are
//!    bit-for-bit identical with telemetry enabled vs. disabled, across
//!    worker counts. Recording only observes; it never feeds a bit back
//!    into any simulated value.
//! 2. **Structural invariants** — the merged counters agree with the
//!    scenario matrix (`sessions == num_scenarios()`, `tiles ==
//!    num_tiles()`), and derived pairs are consistent (memo hits ≤
//!    lookups, one tile-latency observation per tile, one batch-width
//!    observation per batch).
//! 3. **Report plumbing** — the snapshot round-trips through the report
//!    JSON and `diff()` ignores it entirely, so telemetry can never
//!    drift a checked-in baseline.
//!
//! Telemetry and progress are driven through `FleetConfig` knobs here,
//! never the environment variables — the test harness runs cases in
//! parallel and env mutation would race across them.

use sensei_core::{Experiment, ExperimentConfig, PolicyKind};
use sensei_fleet::telemetry::{Counter, Hist, Phase};
use sensei_fleet::{Fleet, FleetConfig, FleetReport, ScenarioMatrix, TracePerturbation};
use sensei_sim::PlayerConfig;

/// Quick environment restricted to the corpus's shortest video (the MPC
/// policies dominate test cost and scale linearly with chunk count).
fn quick_experiment(seed: u64) -> Experiment {
    let mut cfg = ExperimentConfig::quick(seed);
    cfg.videos = Some(vec!["Mountain".to_string()]);
    Experiment::build(&cfg).unwrap()
}

/// A scale-run-shaped matrix: the cheap policy only, perturbed networks.
fn scale_matrix(master_seed: u64) -> ScenarioMatrix {
    ScenarioMatrix::builder()
        .policies([PolicyKind::Bba])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation {
                scale: 0.8,
                jitter_std_kbps: 150.0,
            },
        ])
        .master_seed(master_seed)
        .build()
        .unwrap()
}

/// An MPC-mixed matrix exercising every instrumented planner: the
/// scenario-tree search (SENSEI-Fugu), the trace-indexed oracle with its
/// download-time memo (sensitivity-unaware oracle), and DAS-IP, plus two
/// player variants so tiles span multiple lanes.
fn mpc_matrix(master_seed: u64) -> ScenarioMatrix {
    ScenarioMatrix::builder()
        .policies([
            PolicyKind::Bba,
            PolicyKind::SenseiFugu,
            PolicyKind::OracleUnaware,
            PolicyKind::DasIp,
        ])
        .players([
            PlayerConfig::default(),
            PlayerConfig {
                max_buffer_s: 12.0,
                ..PlayerConfig::default()
            },
        ])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation::jittered(200.0),
        ])
        .master_seed(master_seed)
        .build()
        .unwrap()
}

fn run(env: &Experiment, matrix: &ScenarioMatrix, workers: usize, telemetry: bool) -> FleetReport {
    Fleet::new(
        env,
        matrix,
        FleetConfig::new(workers).with_telemetry(telemetry),
    )
    .unwrap()
    .run()
    .unwrap()
}

#[test]
fn telemetry_is_simulation_invisible_on_the_scale_shape() {
    let env = quick_experiment(11);
    let matrix = scale_matrix(0x7E1E);
    let reference = run(&env, &matrix, 1, false);
    for workers in [1usize, 2, 8] {
        let on = run(&env, &matrix, workers, true);
        let off = run(&env, &matrix, workers, false);
        assert_eq!(
            reference.stats, on.stats,
            "telemetry on, {workers} workers: aggregates moved"
        );
        assert_eq!(
            reference.stats, off.stats,
            "telemetry off, {workers} workers: aggregates moved"
        );
        assert!(on.telemetry.is_some() && off.telemetry.is_none());
    }
}

#[test]
fn telemetry_is_simulation_invisible_on_the_mpc_mix() {
    let env = quick_experiment(11);
    let matrix = mpc_matrix(0xABCD);
    let reference = run(&env, &matrix, 1, false);
    for workers in [1usize, 2, 8] {
        let on = run(&env, &matrix, workers, true);
        assert_eq!(
            reference.stats, on.stats,
            "telemetry on, {workers} workers: aggregates moved"
        );
    }
}

#[test]
fn merged_counters_satisfy_the_matrix_invariants() {
    let env = quick_experiment(11);
    let matrix = mpc_matrix(0xABCD);
    let fleet = Fleet::new(&env, &matrix, FleetConfig::new(2).with_telemetry(true)).unwrap();
    let report = fleet.run().unwrap();
    let snap = report.telemetry.as_ref().expect("telemetry was on");
    // Every scenario ran exactly once, one tile per (video, trace,
    // perturbation) triple.
    assert_eq!(snap.counter(Counter::Sessions), matrix.num_scenarios(&env));
    assert_eq!(snap.counter(Counter::Tiles), matrix.num_tiles(&env));
    assert_eq!(report.stats.sessions, snap.counter(Counter::Sessions));
    // One latency observation per completed tile, one width observation
    // per batch, and one simulate span per batch.
    assert_eq!(
        snap.shard.hist_total(Hist::TileNanos),
        snap.counter(Counter::Tiles)
    );
    assert_eq!(
        snap.shard.hist_total(Hist::LanesPerBatch),
        snap.counter(Counter::Batches)
    );
    assert_eq!(
        snap.shard.phase_calls(Phase::LaneSimulate),
        snap.counter(Counter::Batches)
    );
    // The MPC planners ran: node visits, and the oracle's memo traffic
    // is consistent (and nonzero, since OracleUnaware is on the axis).
    assert!(snap.counter(Counter::PlanNodes) > 0);
    assert!(snap.counter(Counter::DtMemoLookups) > 0);
    assert!(snap.counter(Counter::DtMemoHits) <= snap.counter(Counter::DtMemoLookups));
    // Jittered perturbations materialize at least once per worker-visible
    // tile seed; hits and materializations partition the non-identity
    // resolves, so both sides stay bounded by tile count × lanes.
    assert!(snap.counter(Counter::TraceMaterializations) > 0);
    // Policies rebind once per (policy group, batch).
    assert!(snap.counter(Counter::PolicyRebinds) >= snap.counter(Counter::Batches));
}

#[test]
fn run_phases_are_recorded_even_without_telemetry() {
    let env = quick_experiment(11);
    let matrix = scale_matrix(0x7E1E);
    let report = run(&env, &matrix, 2, false);
    let p = report.phases;
    assert!(p.setup_s >= 0.0 && p.execute_s >= 0.0 && p.collect_s >= 0.0);
    assert!(
        p.execute_s > 0.0,
        "the worker scope always takes measurable time"
    );
    // The three phases partition the executor's wall time, which is
    // itself bounded by the run's total wall time (loose tolerance: the
    // run also assembles the report outside the phase clocks).
    assert!(p.setup_s + p.execute_s + p.collect_s <= report.wall_time_s + 0.05);
}

#[test]
fn snapshot_round_trips_through_report_json_and_diff_ignores_it() {
    let env = quick_experiment(11);
    let matrix = scale_matrix(0x7E1E);
    let with_telemetry = run(&env, &matrix, 2, true);
    let without = run(&env, &matrix, 2, false);
    // Round trip: the persisted telemetry section parses back into the
    // identical snapshot (all-u64 state, so `==` is exact).
    let text = with_telemetry.to_json();
    let back = FleetReport::from_json(&text).unwrap();
    assert_eq!(back.telemetry, with_telemetry.telemetry);
    assert_eq!(back.stats, with_telemetry.stats);
    assert_eq!(
        back.phases.setup_s.to_bits(),
        with_telemetry.phases.setup_s.to_bits()
    );
    // Stability: a second serialization emits identical bytes.
    assert_eq!(back.to_json(), text);
    // A telemetry-bearing report diffs clean against a telemetry-free
    // one: `diff` reads only the deterministic aggregates, so the
    // optional section can never drift a checked-in baseline.
    let diff = with_telemetry.diff(&without);
    assert!(diff.is_clean(0.0));
    let diff = FleetReport::from_json(&without.to_json())
        .unwrap()
        .diff(&with_telemetry);
    assert!(diff.is_clean(0.0));
}

#[test]
fn progress_line_does_not_disturb_results() {
    let env = quick_experiment(11);
    let matrix = scale_matrix(0x7E1E);
    let reference = run(&env, &matrix, 2, false);
    let with_progress = Fleet::new(
        &env,
        &matrix,
        FleetConfig::new(2).with_progress(true).with_telemetry(true),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(reference.stats, with_progress.stats);
}
