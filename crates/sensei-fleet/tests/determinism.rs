//! The fleet engine's two load-bearing guarantees:
//!
//! 1. **Execution-order independence** — the same master seed produces
//!    bit-for-bit identical `FleetStats` aggregates with 1, 2, and 8
//!    workers (the property the exact mergeable aggregates exist for).
//! 2. **Grid equivalence** — a single-worker fleet over
//!    `ScenarioMatrix::grid` reproduces `Experiment::run_grid` cell for
//!    cell, making the sequential harness a degenerate fleet run.

use sensei_core::{Experiment, ExperimentConfig, PolicyKind};
use sensei_fleet::{Fleet, FleetConfig, ScenarioMatrix, TracePerturbation};
use sensei_sim::PlayerConfig;

/// Quick environment restricted to the corpus's shortest video
/// ("Mountain", 21 chunks) — the MPC policies dominate test cost and it
/// scales linearly with chunk count.
fn quick_experiment(seed: u64) -> Experiment {
    let mut cfg = ExperimentConfig::quick(seed);
    cfg.videos = Some(vec!["Mountain".to_string()]);
    Experiment::build(&cfg).unwrap()
}

/// A small but fully heterogeneous matrix: two policies (so gain CDFs are
/// exercised), two player variants, and perturbed network scenarios
/// (scaling + seeded jitter).
fn mixed_matrix(master_seed: u64) -> ScenarioMatrix {
    ScenarioMatrix::builder()
        .policies([PolicyKind::Bba, PolicyKind::SenseiFugu])
        .players([
            PlayerConfig::default(),
            PlayerConfig {
                max_buffer_s: 12.0,
                ..PlayerConfig::default()
            },
        ])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation {
                scale: 0.8,
                jitter_std_kbps: 150.0,
            },
        ])
        .master_seed(master_seed)
        .build()
        .unwrap()
}

#[test]
fn aggregates_are_identical_across_1_2_and_8_workers() {
    let env = quick_experiment(11);
    let matrix = mixed_matrix(0xF1EE7);
    let reports: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|workers| {
            Fleet::new(&env, &matrix, FleetConfig::new(workers))
                .unwrap()
                .run()
                .unwrap()
        })
        .collect();
    // 1 video × 10 traces × 2 perturbations × 2 players × 2 policies.
    assert_eq!(reports[0].stats.sessions, 80);
    // Bit-for-bit: quantized moment sums, histograms, and gain CDFs all
    // compare with `==` (exact integer equality), not tolerances.
    assert_eq!(reports[0].stats, reports[1].stats, "1 vs 2 workers");
    assert_eq!(reports[0].stats, reports[2].stats, "1 vs 8 workers");
    assert_eq!(reports[1].workers, 2);
    assert_eq!(reports[2].workers, 8);
}

#[test]
fn aggregates_are_identical_for_every_batch_width_and_worker_count() {
    // The tile executor runs each (video, trace, perturbation) tile
    // through one SoA session batch; the lane-width knob splits tiles
    // into sub-batches. Neither the width (including 1 = the scalar
    // path, and 3 = a split straddling a tile's 4 lanes) nor the worker
    // count may move a single aggregate bit.
    let env = quick_experiment(11);
    let matrix = mixed_matrix(0xF1EE7);
    let reference = Fleet::new(&env, &matrix, FleetConfig::new(1).with_batch_width(1))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(reference.stats.sessions, 80);
    for workers in [1usize, 2, 8] {
        for width in [1usize, 2, 3, 0] {
            let report = Fleet::new(
                &env,
                &matrix,
                FleetConfig::new(workers).with_batch_width(width),
            )
            .unwrap()
            .run()
            .unwrap();
            assert_eq!(
                reference.stats, report.stats,
                "width {width} on {workers} workers diverged from the scalar path"
            );
        }
    }
}

#[test]
fn warm_started_fleets_match_cold_fleets_bit_for_bit() {
    // Same seed, same matrix, two environments differing only in
    // `mpc_warm_start`: carrying plan incumbents across chunk steps (and
    // seeding each search from the previous winner) must not move a
    // single bit of the deterministic aggregates — across an MPC-heavy
    // policy axis, perturbed scenarios, multiple workers, and batch
    // widths that straddle tile boundaries.
    let mut warm_cfg = ExperimentConfig::quick(11);
    warm_cfg.videos = Some(vec!["Mountain".to_string()]);
    let mut cold_cfg = warm_cfg.clone();
    cold_cfg.mpc_warm_start = false;
    let warm_env = Experiment::build(&warm_cfg).unwrap();
    let cold_env = Experiment::build(&cold_cfg).unwrap();
    let matrix = ScenarioMatrix::builder()
        .policies([
            PolicyKind::Fugu,
            PolicyKind::SenseiFugu,
            PolicyKind::OracleAware,
        ])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation {
                scale: 0.8,
                jitter_std_kbps: 150.0,
            },
        ])
        .master_seed(0xD00F)
        .build()
        .unwrap();
    for (workers, width) in [(1usize, 1usize), (2, 3), (4, 0)] {
        let config = || FleetConfig::new(workers).with_batch_width(width);
        let warm = Fleet::new(&warm_env, &matrix, config())
            .unwrap()
            .run()
            .unwrap();
        let cold = Fleet::new(&cold_env, &matrix, config())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            warm.stats, cold.stats,
            "warm vs cold diverged at {workers} workers, width {width}"
        );
    }
}

#[test]
fn different_master_seeds_change_perturbed_scenarios() {
    let env = quick_experiment(11);
    // Jitter-only matrices: the seed drives the noise stream.
    let build = |seed| {
        ScenarioMatrix::builder()
            .policies([PolicyKind::Bba])
            .perturbations([TracePerturbation::jittered(400.0)])
            .master_seed(seed)
            .build()
            .unwrap()
    };
    let (m1, m2) = (build(1), build(2));
    let r1 = Fleet::new(&env, &m1, FleetConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    let r2 = Fleet::new(&env, &m2, FleetConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert_ne!(
        r1.stats, r2.stats,
        "different master seeds must perturb the network differently"
    );
    // And the same seed reproduces exactly.
    let r1b = Fleet::new(&env, &m1, FleetConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r1.stats, r1b.stats);
}

#[test]
fn single_worker_grid_fleet_matches_run_grid() {
    let env = quick_experiment(7);
    let kinds = [
        PolicyKind::Bba,
        PolicyKind::Fugu,
        PolicyKind::SenseiFugu,
        PolicyKind::DasIp,
    ];
    let sequential = env.run_grid(&kinds).unwrap();
    let matrix = ScenarioMatrix::grid(&kinds).unwrap();
    let fleet_cells = Fleet::new(&env, &matrix, FleetConfig::new(1))
        .unwrap()
        .run_cells()
        .unwrap();
    assert_eq!(sequential, fleet_cells);
    // Sharding must not change per-cell results either.
    let sharded = Fleet::new(&env, &matrix, FleetConfig::new(4))
        .unwrap()
        .run_cells()
        .unwrap();
    assert_eq!(sequential, sharded);
}

#[test]
fn grid_equivalence_holds_for_custom_player_experiments() {
    // The grid matrix's default player axis resolves to the experiment's
    // own player, so the run_grid equivalence must survive a non-default
    // PlayerConfig too.
    let mut cfg = ExperimentConfig::quick(7);
    cfg.videos = Some(vec!["Mountain".to_string()]);
    cfg.player = PlayerConfig {
        max_buffer_s: 12.0,
        rtt_s: 0.2,
        ..PlayerConfig::default()
    };
    let env = Experiment::build(&cfg).unwrap();
    let kinds = [PolicyKind::Bba, PolicyKind::Fugu];
    let sequential = env.run_grid(&kinds).unwrap();
    let matrix = ScenarioMatrix::grid(&kinds).unwrap();
    let fleet_cells = Fleet::new(&env, &matrix, FleetConfig::new(2))
        .unwrap()
        .run_cells()
        .unwrap();
    assert_eq!(sequential, fleet_cells);
}

#[test]
fn failing_scenario_aborts_with_its_stable_id() {
    let env = quick_experiment(7);
    // Pensieve was not trained in the quick environment, so every
    // Pensieve scenario fails. Policy axis [Bba, Pensieve] → the first
    // failure in canonical order is scenario 1.
    let matrix = ScenarioMatrix::builder()
        .policies([PolicyKind::Bba, PolicyKind::Pensieve])
        .build()
        .unwrap();
    let err = Fleet::new(&env, &matrix, FleetConfig::new(2))
        .unwrap()
        .run()
        .unwrap_err();
    match err {
        sensei_fleet::FleetError::Scenario { id, .. } => {
            assert_eq!(id % 2, 1, "failing scenarios are the odd (Pensieve) IDs");
        }
        other => panic!("expected Scenario error, got {other}"),
    }
}

#[test]
fn config_validation_is_enforced() {
    let env = quick_experiment(7);
    let matrix = ScenarioMatrix::grid(&[PolicyKind::Bba]).unwrap();
    assert!(matches!(
        Fleet::new(&env, &matrix, FleetConfig::new(0)),
        Err(sensei_fleet::FleetError::NoWorkers)
    ));
    assert!(matches!(
        Fleet::new(
            &env,
            &matrix,
            FleetConfig::new(1).with_baseline(PolicyKind::Fugu)
        ),
        Err(sensei_fleet::FleetError::BaselineNotInMatrix(_))
    ));
}
