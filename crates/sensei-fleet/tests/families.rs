//! Fleet-scale procedural scenario families, end to end:
//!
//! 1. A ≥100-video procedural corpus crossed with three generated trace
//!    families runs through the sharded executor with **bit-for-bit
//!    identical** `FleetStats` across 1, 2, and 8 workers — the
//!    determinism guarantee must survive the scenario-diversity axis.
//! 2. `FleetReport` persistence round-trips a real fleet run through
//!    JSON losslessly, and `diff` is clean against itself.

use sensei_core::{ExperimentConfig, PolicyKind};
use sensei_fleet::{
    Fleet, FleetConfig, FleetReport, ScenarioFamilies, ScenarioMatrix, TracePerturbation,
};
use sensei_trace::generate::{in_admission_band, TraceFamily};

#[test]
fn hundred_video_family_fleet_is_worker_count_invariant() {
    // 100 procedural videos × (3 families × 3 traces) × BBA: big enough
    // to exercise every family generator at corpus scale, cheap enough
    // (BBA only) to run three times in CI.
    let families = ScenarioFamilies::builder()
        .videos(100)
        .trace_families([
            TraceFamily::Diurnal,
            TraceFamily::CrossTrafficBursts,
            TraceFamily::SharedCell { users: 3 },
        ])
        .traces_per_family(3)
        .trace_duration_s(600)
        .seed(0xFA_2026)
        .build()
        .unwrap();
    assert_eq!(families.corpus.len(), 100);
    assert_eq!(families.traces.len(), 9);
    for t in &families.traces {
        assert!(in_admission_band(t.mean_kbps()), "{}", t.name());
    }
    let matrix = families
        .matrix_builder()
        .policies([PolicyKind::Bba])
        .build()
        .unwrap();
    let mut config = ExperimentConfig::quick(2026);
    config.videos = None;
    let env = families.into_experiment(&config).unwrap();
    let reports: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|workers| {
            Fleet::new(&env, &matrix, FleetConfig::new(workers))
                .unwrap()
                .run()
                .unwrap()
        })
        .collect();
    assert_eq!(reports[0].stats.sessions, 100 * 9);
    assert_eq!(reports[0].stats, reports[1].stats, "1 vs 2 workers");
    assert_eq!(reports[0].stats, reports[2].stats, "1 vs 8 workers");
}

#[test]
fn family_fleet_report_round_trips_and_diffs_clean() {
    // A small mixed-policy family run (MPC sessions are what costs here)
    // so gain CDFs are populated, then the full persistence cycle:
    // to_json → from_json → diff.
    let families = ScenarioFamilies::builder()
        .videos(4)
        .traces_per_family(1)
        .trace_duration_s(400)
        .seed(41)
        .build()
        .unwrap();
    let matrix = families
        .matrix_builder()
        .policies([PolicyKind::Bba, PolicyKind::SenseiFugu])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation::jittered(200.0),
        ])
        .build()
        .unwrap();
    let mut config = ExperimentConfig::quick(41);
    config.videos = None;
    let env = families.into_experiment(&config).unwrap();
    let report = Fleet::new(&env, &matrix, FleetConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.stats.sessions, 4 * 3 * 2 * 2);
    let gains = report.stats.per_policy[1]
        .gain_vs_baseline
        .as_ref()
        .expect("non-baseline policy has a gain CDF");
    assert!(gains.stats.count() > 0, "gain CDF must be populated");

    let text = report.to_json();
    let back = FleetReport::from_json(&text).unwrap();
    assert_eq!(report.stats, back.stats, "JSON round trip must be lossless");
    assert_eq!(back.to_json(), text, "serialization must be stable");
    assert!(back.diff(&report).is_clean(0.0));

    // Rerunning the same matrix reproduces the persisted stats exactly —
    // the property the checked-in CI baseline relies on.
    let rerun = Fleet::new(&env, &matrix, FleetConfig::new(1))
        .unwrap()
        .run()
        .unwrap();
    assert!(rerun.diff(&back).is_clean(0.0));
}

#[test]
fn grid_builder_still_accepts_family_experiments() {
    // `ScenarioMatrix::grid` (the run_grid-equivalent space) composes
    // with a family-built experiment exactly as with the Table-1 corpus.
    let families = ScenarioFamilies::builder()
        .videos(3)
        .trace_families([TraceFamily::Diurnal])
        .traces_per_family(2)
        .trace_duration_s(400)
        .seed(5)
        .build()
        .unwrap();
    let mut config = ExperimentConfig::quick(5);
    config.videos = None;
    let env = families.into_experiment(&config).unwrap();
    let kinds = [PolicyKind::Bba, PolicyKind::Fugu];
    let sequential = env.run_grid(&kinds).unwrap();
    let matrix = ScenarioMatrix::grid(&kinds).unwrap();
    let fleet_cells = Fleet::new(&env, &matrix, FleetConfig::new(2))
        .unwrap()
        .run_cells()
        .unwrap();
    assert_eq!(sequential, fleet_cells);
}
