//! The merge-law contracts behind merge-based collection:
//!
//! 1. **Grouping invariance** — the canonical tile-order reduction the
//!    deterministic contract is defined over can be evaluated in any
//!    grouping: shard splits {1, 2, 3, 8} × worker counts {1, 2, 8}
//!    all produce bit-identical merged aggregates, on both the BBA
//!    scale shape and the MPC-mixed matrix (mirroring the telemetry
//!    crate's merge-law property tests).
//! 2. **Reference semantics** — folding the canonically-ordered cells
//!    tile by tile through [`TileStats`] and merging the per-tile
//!    partials in tile order reproduces `Fleet::run`'s aggregates
//!    exactly. This is the definition the executor's shard-local
//!    collection is an evaluation strategy for.
//! 3. **Cross-process bit-identity** — partial reports survive the JSON
//!    round-trip and `merge_reports` recombines them into a report
//!    whose aggregates equal the single-process run's, bit for bit.

use sensei_core::{Experiment, ExperimentConfig, PolicyKind};
use sensei_fleet::{
    merge_reports, Fleet, FleetConfig, FleetReport, FleetStats, ScenarioMatrix, TileStats,
    TracePerturbation,
};

/// Quick environment restricted to the corpus's shortest video (the MPC
/// policies dominate test cost and scale linearly with chunk count).
fn quick_experiment(seed: u64) -> Experiment {
    let mut cfg = ExperimentConfig::quick(seed);
    cfg.videos = Some(vec!["Mountain".to_string()]);
    Experiment::build(&cfg).unwrap()
}

/// A scale-run-shaped matrix: the cheap policy only, perturbed networks.
fn scale_matrix(master_seed: u64) -> ScenarioMatrix {
    ScenarioMatrix::builder()
        .policies([PolicyKind::Bba])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation {
                scale: 0.8,
                jitter_std_kbps: 150.0,
            },
        ])
        .master_seed(master_seed)
        .build()
        .unwrap()
}

/// A light MPC-mixed matrix: one planner-bound policy next to BBA so the
/// gain-CDF path is live, kept small because the planner dominates
/// debug-build test cost.
fn mpc_matrix(master_seed: u64) -> ScenarioMatrix {
    ScenarioMatrix::builder()
        .policies([PolicyKind::Bba, PolicyKind::SenseiFugu])
        .perturbations([
            TracePerturbation::identity(),
            TracePerturbation::jittered(200.0),
        ])
        .master_seed(master_seed)
        .build()
        .unwrap()
}

fn run_config(env: &Experiment, matrix: &ScenarioMatrix, config: FleetConfig) -> FleetReport {
    Fleet::new(env, matrix, config).unwrap().run().unwrap()
}

/// Shards {1, 2, 3, 8} × workers {1, 2, 8}: every split's merged
/// aggregates must equal the unsharded single-worker run's, bit for bit.
/// Partials take the JSON round-trip before merging, so the persisted
/// form is what's proven equivalent — exactly what the multi-process CI
/// step relies on.
fn assert_grouping_invariant(env: &Experiment, matrix: &ScenarioMatrix) {
    let reference = run_config(env, matrix, FleetConfig::new(1));
    assert!(reference.stats.sessions > 0);
    for shards in [1u64, 2, 3, 8] {
        for workers in [1usize, 2, 8] {
            let partials: Vec<FleetReport> = (0..shards)
                .map(|index| {
                    let report = run_config(
                        env,
                        matrix,
                        FleetConfig::new(workers).with_shard(index, shards),
                    );
                    let slice = report.shard.expect("sharded run stamps its slice");
                    assert_eq!((slice.index, slice.count), (index, shards));
                    FleetReport::from_json(&report.to_json()).expect("partial round-trips")
                })
                .collect();
            let merged = merge_reports(&partials).expect("partials partition the matrix");
            assert!(merged.shard.is_none());
            assert_eq!(
                merged.stats, reference.stats,
                "{shards} shards x {workers} workers must merge bit-identically"
            );
        }
    }
}

#[test]
fn shard_grouping_is_invariant_on_the_scale_shape() {
    let env = quick_experiment(21);
    let matrix = scale_matrix(0x5EED);
    assert_grouping_invariant(&env, &matrix);
}

#[test]
fn shard_grouping_is_invariant_on_the_mpc_mix() {
    let env = quick_experiment(22);
    let matrix = mpc_matrix(0x5EED);
    assert_grouping_invariant(&env, &matrix);
}

/// The reference semantics, evaluated by hand: collect the canonical
/// cell stream, fold it tile by tile through `TileStats`, merge the
/// per-tile partials in canonical tile order — and land on `run()`'s
/// aggregates exactly.
#[test]
fn canonical_tile_fold_is_the_reference_semantics() {
    let env = quick_experiment(23);
    let matrix = mpc_matrix(0xF01D);
    let fleet = Fleet::new(&env, &matrix, FleetConfig::new(2)).unwrap();
    let report = fleet.run().unwrap();
    let cells = fleet.run_cells().unwrap();
    assert_eq!(cells.len() as u64, matrix.num_scenarios(&env));

    let policies = matrix.policies();
    let baseline = policies[0];
    let tile_size = usize::try_from(matrix.tile_size()).unwrap();
    let mut reduced = FleetStats::new(policies, baseline);
    let mut tile = TileStats::new(policies, baseline);
    for tile_cells in cells.chunks_exact(tile_size) {
        tile.reset();
        for group in tile_cells.chunks_exact(policies.len()) {
            tile.fold_cell(group);
        }
        reduced.merge(tile.stats()).unwrap();
    }
    assert_eq!(
        reduced, report.stats,
        "tile-order reduction must equal the executor's result"
    );
}

/// An unsharded report cannot participate in a shard merge, and a
/// sharded singleton must carry the complete split.
#[test]
fn merge_reports_rejects_incomplete_shard_sets() {
    let env = quick_experiment(24);
    let matrix = scale_matrix(0xBAD);
    let full = run_config(&env, &matrix, FleetConfig::new(1));
    assert!(merge_reports(&[full]).is_err(), "unsharded report rejected");

    let first = run_config(&env, &matrix, FleetConfig::new(1).with_shard(0, 2));
    assert!(
        merge_reports(std::slice::from_ref(&first)).is_err(),
        "1 of 2 shards rejected"
    );
    let second = run_config(&env, &matrix, FleetConfig::new(1).with_shard(1, 2));
    let merged = merge_reports(&[second, first]).expect("order-free shard merge");
    let reference = run_config(&env, &matrix, FleetConfig::new(1));
    assert_eq!(merged.stats, reference.stats);
}

/// Out-of-range shard splits are rejected at fleet construction.
#[test]
fn invalid_shard_configs_are_rejected() {
    let env = quick_experiment(25);
    let matrix = scale_matrix(0xC0DE);
    assert!(Fleet::new(&env, &matrix, FleetConfig::new(1).with_shard(0, 0)).is_err());
    assert!(Fleet::new(&env, &matrix, FleetConfig::new(1).with_shard(3, 3)).is_err());
    assert!(Fleet::new(&env, &matrix, FleetConfig::new(1).with_shard(2, 3)).is_ok());
}

/// More shards than tiles: the tail shards cover empty ranges, run
/// zero sessions, and still merge back into the full result.
#[test]
fn oversharded_split_still_merges_exactly() {
    let env = quick_experiment(26);
    let matrix = scale_matrix(0x0DD);
    let total_tiles = matrix.num_tiles(&env);
    let shards = total_tiles + 3;
    let partials: Vec<FleetReport> = (0..shards)
        .map(|i| run_config(&env, &matrix, FleetConfig::new(2).with_shard(i, shards)))
        .collect();
    let empties = partials.iter().filter(|p| p.stats.sessions == 0).count();
    assert_eq!(empties as u64, 3, "exactly the 3 surplus shards are empty");
    let merged = merge_reports(&partials).unwrap();
    let reference = run_config(&env, &matrix, FleetConfig::new(1));
    assert_eq!(merged.stats, reference.stats);
}
