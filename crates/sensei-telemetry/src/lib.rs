//! Deterministic-safe telemetry for the fleet engine.
//!
//! The north star is a fleet serving millions of simulated users; this
//! crate is the measurement layer that keeps that engine from being a
//! black box — without ever touching a result bit. Three design rules:
//!
//! 1. **Simulation-invisible.** Recording only *observes*: counters,
//!    nanosecond phase timers, and fixed-bin histograms. Nothing here
//!    feeds back into any simulated value, and `sensei-fleet`'s tests
//!    assert that aggregates are bit-identical with telemetry enabled
//!    vs. disabled (and across worker counts).
//! 2. **Lock-free shards, commutative merge.** Every worker thread
//!    records into its own thread-local [`TelemetryShard`] — no shared
//!    atomics, no contention on the hot path. Shards are harvested at
//!    collection time and combined with [`TelemetryShard::merge`], whose
//!    fields are all `u64` sums — so merge is exactly associative,
//!    commutative, and order-insensitive (property-tested below). The
//!    fleet's `FleetStats` aggregates now obey the same merge-law
//!    contract (exact integer accumulators), so thread shards and
//!    process shards combine both the same way.
//! 3. **Cheap when off.** Recording is gated by one thread-local flag:
//!    a disabled [`count`] is a single TLS read, and a disabled [`span`]
//!    takes no clock reading at all. The `noop` cargo feature compiles
//!    even that flag check away.
//!
//! The catalog is a closed set of enums ([`Counter`], [`Phase`],
//! [`Hist`]) rather than string keys: shards are flat arrays, recording
//! is an indexed add, and merging is element-wise — no hashing, no
//! allocation, no ordering ambiguity.

// Counters convert to f64 only in snapshot/report derivations
// (rates, percentages); merge correctness stays in u64.
#![allow(clippy::cast_precision_loss)]

use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Monotonic event counters. Each worker's shard accumulates plain sums;
/// the merged fleet-wide totals satisfy structural invariants the fleet
/// tests pin down (e.g. `Sessions == num_scenarios()`,
/// `DtMemoHits <= DtMemoLookups`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Sessions simulated (one per lane scored by the batch runner).
    Sessions,
    /// Tiles executed to completion by fleet workers.
    Tiles,
    /// Session batches run (`Experiment::run_batch_in` calls).
    Batches,
    /// Policy rebinds (once per policy group per batch — the amortized
    /// `O(trace)` cost the tile engine exists to hoist).
    PolicyRebinds,
    /// Perturbed traces materialized (cache misses + regenerations).
    TraceMaterializations,
    /// Perturbed-trace cache hits (served without regeneration).
    TraceCacheHits,
    /// Plan-search nodes visited by the MPC planners (each `(depth,
    /// level)` expansion of a prefix-sharing DFS).
    PlanNodes,
    /// Plan-search subtrees pruned by the exact branch-and-bound.
    PlanPrunes,
    /// Download-time memo lookups in the trace-indexed oracle search.
    DtMemoLookups,
    /// Download-time memo hits (exact-bit reuse of a sibling's walk).
    DtMemoHits,
    /// Plan searches that seeded their incumbent from the previous chunk
    /// step's committed plan (the cross-chunk warm start).
    WarmStartHits,
    /// Subtrees pruned while the incumbent was still the warm-start seed
    /// (no leaf had improved on it yet) — the pruning the seed bought
    /// outright.
    SeededPrunes,
}

impl Counter {
    /// Number of counters in the catalog.
    pub const COUNT: usize = 12;

    /// This counter's shard slot: the enum discriminant as a
    /// lossless array index (so callers never need an `as` cast).
    #[must_use]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Every counter, in shard index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Sessions,
        Counter::Tiles,
        Counter::Batches,
        Counter::PolicyRebinds,
        Counter::TraceMaterializations,
        Counter::TraceCacheHits,
        Counter::PlanNodes,
        Counter::PlanPrunes,
        Counter::DtMemoLookups,
        Counter::DtMemoHits,
        Counter::WarmStartHits,
        Counter::SeededPrunes,
    ];

    /// Stable snake_case name (the JSON key in the report's `telemetry`
    /// section).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::Sessions => "sessions",
            Counter::Tiles => "tiles",
            Counter::Batches => "batches",
            Counter::PolicyRebinds => "policy_rebinds",
            Counter::TraceMaterializations => "trace_materializations",
            Counter::TraceCacheHits => "trace_cache_hits",
            Counter::PlanNodes => "plan_nodes",
            Counter::PlanPrunes => "plan_prunes",
            Counter::DtMemoLookups => "dt_memo_lookups",
            Counter::DtMemoHits => "dt_memo_hits",
            Counter::WarmStartHits => "warm_start_hits",
            Counter::SeededPrunes => "seeded_prunes",
        }
    }

    /// The counter with this [`Self::name`], if any.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Timed phases of a fleet run. Each records a call count and a
/// nanosecond total, so both "how often" and "how long" survive the
/// merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Perturbed-network materialization (`TraceCache::resolve`).
    NetworkMaterialize,
    /// SoA lane simulation (`simulate_batch_in`).
    LaneSimulate,
    /// True-QoE oracle scoring of the finished lanes.
    Score,
    /// Worker time folding its own tiles into the shard-local partial
    /// aggregates (the merge-based collection path).
    ShardFold,
    /// Collector time reducing the O(workers) shard partials at the end
    /// of a run.
    FinalMerge,
}

impl Phase {
    /// Number of phases in the catalog.
    pub const COUNT: usize = 5;

    /// This phase's shard slot: the enum discriminant as a
    /// lossless array index (so callers never need an `as` cast).
    #[must_use]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Every phase, in shard index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::NetworkMaterialize,
        Phase::LaneSimulate,
        Phase::Score,
        Phase::ShardFold,
        Phase::FinalMerge,
    ];

    /// Stable snake_case name (the JSON key in the report's `telemetry`
    /// section).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::NetworkMaterialize => "network_materialize",
            Phase::LaneSimulate => "lane_simulate",
            Phase::Score => "score",
            Phase::ShardFold => "shard_fold",
            Phase::FinalMerge => "final_merge",
        }
    }

    /// The phase with this [`Self::name`], if any.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Fixed-bin log₂ histograms: value `v` lands in bin `floor(log2(v))`
/// (`0` in bin 0), so 64 bins cover the whole `u64` range with ~2×
/// resolution — plenty for latency and batch-width distributions, and
/// the bin counts merge as plain sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Per-tile wall time in nanoseconds.
    TileNanos,
    /// Lanes per session batch (the effective batch width).
    LanesPerBatch,
}

impl Hist {
    /// Number of histograms in the catalog.
    pub const COUNT: usize = 2;

    /// This hist's shard slot: the enum discriminant as a
    /// lossless array index (so callers never need an `as` cast).
    #[must_use]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Bins per histogram (log₂ buckets spanning all of `u64`).
    pub const BINS: usize = 64;

    /// Every histogram, in shard index order.
    pub const ALL: [Hist; Hist::COUNT] = [Hist::TileNanos, Hist::LanesPerBatch];

    /// Stable snake_case name (the JSON key in the report's `telemetry`
    /// section).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::TileNanos => "tile_ns",
            Hist::LanesPerBatch => "lanes_per_batch",
        }
    }

    /// The histogram with this [`Self::name`], if any.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Hist> {
        Hist::ALL.into_iter().find(|h| h.name() == name)
    }

    /// The bin index a value lands in: `floor(log2(v))`, with `0` in
    /// bin 0.
    #[must_use]
    pub fn bin_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }
}

/// One worker's metric state: flat `u64` arrays indexed by the catalog
/// enums. Everything is a sum, so [`Self::merge`] is exactly
/// associative, commutative, and order-insensitive — the contract the
/// merge-law tests pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryShard {
    /// Event counters, indexed by [`Counter`].
    pub counters: [u64; Counter::COUNT],
    /// Summed nanoseconds per phase, indexed by [`Phase`].
    pub phase_ns: [u64; Phase::COUNT],
    /// Span count per phase, indexed by [`Phase`].
    pub phase_calls: [u64; Phase::COUNT],
    /// Log₂ histogram bins, indexed by [`Hist`] then bin.
    pub hists: [[u64; Hist::BINS]; Hist::COUNT],
}

impl TelemetryShard {
    /// An all-zero shard — the identity element of [`Self::merge`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            counters: [0; Counter::COUNT],
            phase_ns: [0; Phase::COUNT],
            phase_calls: [0; Phase::COUNT],
            hists: [[0; Hist::BINS]; Hist::COUNT],
        }
    }

    /// Whether every field is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self == &Self::new()
    }

    /// Folds `other` into `self`, element-wise. Wrapping adds make the
    /// operation total (and keep it associative even at the `u64` rim);
    /// in practice nothing approaches 2⁶⁴.
    pub fn merge(&mut self, other: &TelemetryShard) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.wrapping_add(*b);
        }
        for (a, b) in self.phase_ns.iter_mut().zip(&other.phase_ns) {
            *a = a.wrapping_add(*b);
        }
        for (a, b) in self.phase_calls.iter_mut().zip(&other.phase_calls) {
            *a = a.wrapping_add(*b);
        }
        for (row_a, row_b) in self.hists.iter_mut().zip(&other.hists) {
            for (a, b) in row_a.iter_mut().zip(row_b) {
                *a = a.wrapping_add(*b);
            }
        }
    }

    /// One counter's value.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// One phase's summed nanoseconds.
    #[must_use]
    pub fn phase_ns(&self, p: Phase) -> u64 {
        self.phase_ns[p as usize]
    }

    /// One phase's span count.
    #[must_use]
    pub fn phase_calls(&self, p: Phase) -> u64 {
        self.phase_calls[p as usize]
    }

    /// One histogram's bins.
    #[must_use]
    pub fn hist(&self, h: Hist) -> &[u64; Hist::BINS] {
        &self.hists[h as usize]
    }

    /// Total observations folded into one histogram.
    #[must_use]
    pub fn hist_total(&self, h: Hist) -> u64 {
        self.hists[h as usize].iter().sum()
    }
}

impl Default for TelemetryShard {
    fn default() -> Self {
        Self::new()
    }
}

/// The merged result of a run's shards, attached to `FleetReport` and
/// serialized in the optional `telemetry` JSON section. Wraps the merged
/// [`TelemetryShard`] with derived-rate accessors so reporting code does
/// not re-derive them inconsistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// The merged shard (all workers + the collector).
    pub shard: TelemetryShard,
}

impl TelemetrySnapshot {
    /// Wraps a merged shard.
    #[must_use]
    pub fn from_shard(shard: TelemetryShard) -> Self {
        Self { shard }
    }

    /// One counter's fleet-wide total.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.shard.counter(c)
    }

    /// One phase's fleet-wide total in seconds.
    #[must_use]
    pub fn phase_secs(&self, p: Phase) -> f64 {
        self.shard.phase_ns(p) as f64 * 1e-9
    }

    /// Fraction of plan-search subtrees the branch-and-bound cut
    /// (`prunes / (nodes + prunes)`; 0 when the planners never ran).
    #[must_use]
    pub fn prune_rate(&self) -> f64 {
        let nodes = self.counter(Counter::PlanNodes);
        let prunes = self.counter(Counter::PlanPrunes);
        if nodes + prunes == 0 {
            0.0
        } else {
            prunes as f64 / (nodes + prunes) as f64
        }
    }

    /// Download-time memo hit rate (`hits / lookups`; 0 when the oracles
    /// never ran).
    #[must_use]
    pub fn memo_hit_rate(&self) -> f64 {
        let lookups = self.counter(Counter::DtMemoLookups);
        if lookups == 0 {
            0.0
        } else {
            self.counter(Counter::DtMemoHits) as f64 / lookups as f64
        }
    }

    /// Perturbed-trace cache hit rate (`hits / (hits +
    /// materializations)`; 0 when no perturbations resolved).
    #[must_use]
    pub fn trace_cache_hit_rate(&self) -> f64 {
        let hits = self.counter(Counter::TraceCacheHits);
        let total = hits + self.counter(Counter::TraceMaterializations);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// A compact human-readable phase/counter breakdown.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry: {} sessions, {} tiles, {} batches, {} rebinds",
            self.counter(Counter::Sessions),
            self.counter(Counter::Tiles),
            self.counter(Counter::Batches),
            self.counter(Counter::PolicyRebinds),
        );
        for p in Phase::ALL {
            let calls = self.shard.phase_calls(p);
            if calls > 0 {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>10.3} s over {} spans",
                    p.name(),
                    self.phase_secs(p),
                    calls
                );
            }
        }
        if self.counter(Counter::PlanNodes) > 0 {
            let _ = writeln!(
                out,
                "  planner: {} nodes, prune rate {:.1}%, memo hit rate {:.1}%, {} warm starts",
                self.counter(Counter::PlanNodes),
                self.prune_rate() * 100.0,
                self.memo_hit_rate() * 100.0,
                self.counter(Counter::WarmStartHits),
            );
        }
        out
    }
}

thread_local! {
    /// Whether this thread is currently recording. Checked by every
    /// entry point; one TLS read when off.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    /// This thread's shard. Only touched while `ENABLED` is set.
    static SHARD: RefCell<TelemetryShard> = RefCell::new(TelemetryShard::new());
}

/// Whether this thread is currently recording.
#[must_use]
pub fn is_enabled() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        ENABLED.with(Cell::get)
    }
}

/// Resets this thread's shard and turns recording on. Call once at the
/// start of a worker's (or collector's) participation in a run; pair
/// with [`end`]. Under the `noop` feature this does nothing.
pub fn begin() {
    #[cfg(not(feature = "noop"))]
    {
        SHARD.with(|s| *s.borrow_mut() = TelemetryShard::new());
        ENABLED.with(|e| e.set(true));
    }
}

/// Turns recording off and takes this thread's shard (leaving an empty
/// one behind). Returns an empty shard if recording was never begun.
#[must_use]
pub fn end() -> TelemetryShard {
    #[cfg(feature = "noop")]
    {
        TelemetryShard::new()
    }
    #[cfg(not(feature = "noop"))]
    {
        ENABLED.with(|e| e.set(false));
        SHARD.with(|s| std::mem::take(&mut *s.borrow_mut()))
    }
}

/// Adds `n` to a counter on this thread's shard (no-op when disabled).
pub fn count(c: Counter, n: u64) {
    if is_enabled() {
        SHARD.with(|s| {
            let counters = &mut s.borrow_mut().counters;
            counters[c as usize] = counters[c as usize].wrapping_add(n);
        });
    }
}

/// Folds one observation into a histogram (no-op when disabled).
pub fn observe(h: Hist, value: u64) {
    if is_enabled() {
        SHARD.with(|s| {
            s.borrow_mut().hists[h as usize][Hist::bin_of(value)] += 1;
        });
    }
}

/// Records one completed span of `ns` nanoseconds (no-op when disabled).
pub fn record_phase_ns(p: Phase, ns: u64) {
    if is_enabled() {
        SHARD.with(|s| {
            let shard = &mut *s.borrow_mut();
            shard.phase_ns[p as usize] = shard.phase_ns[p as usize].wrapping_add(ns);
            shard.phase_calls[p as usize] += 1;
        });
    }
}

/// An RAII phase timer: records elapsed nanoseconds into this thread's
/// shard on drop. When recording is disabled the constructor takes no
/// clock reading and the drop is free.
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_phase_ns(self.phase, ns);
        }
    }
}

/// Opens a phase span (see [`Span`]).
#[must_use]
pub fn span(phase: Phase) -> Span {
    Span {
        phase,
        start: is_enabled().then(Instant::now),
    }
}

/// A clock reading for ad-hoc measurements (histogram observations that
/// are not phases): `Some(now)` when recording, `None` when disabled —
/// so the disabled path never touches the clock.
#[must_use]
pub fn stopwatch() -> Option<Instant> {
    is_enabled().then(Instant::now)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — deterministic pseudo-random shard material.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_shard(seed: u64) -> TelemetryShard {
        let mut state = seed;
        let mut shard = TelemetryShard::new();
        for c in shard.counters.iter_mut() {
            *c = splitmix(&mut state);
        }
        for p in shard.phase_ns.iter_mut() {
            *p = splitmix(&mut state);
        }
        for p in shard.phase_calls.iter_mut() {
            *p = splitmix(&mut state) >> 32;
        }
        for row in shard.hists.iter_mut() {
            for b in row.iter_mut() {
                *b = splitmix(&mut state) >> 40;
            }
        }
        shard
    }

    fn merged(a: &TelemetryShard, b: &TelemetryShard) -> TelemetryShard {
        let mut out = a.clone();
        out.merge(b);
        out
    }

    #[test]
    fn merge_is_commutative_associative_with_identity() {
        // 64 random triples — a property test in all but macro: the
        // proptest shim's strategies are f64/tuple-shaped, and shards
        // want full-width u64 material anyway.
        for seed in 0..64u64 {
            let (a, b, c) = (
                random_shard(seed * 3 + 1),
                random_shard(seed * 3 + 2),
                random_shard(seed * 3 + 3),
            );
            assert_eq!(merged(&a, &b), merged(&b, &a), "commutativity @ {seed}");
            assert_eq!(
                merged(&merged(&a, &b), &c),
                merged(&a, &merged(&b, &c)),
                "associativity @ {seed}"
            );
            assert_eq!(merged(&a, &TelemetryShard::new()), a, "identity @ {seed}");
        }
    }

    #[test]
    fn merge_is_order_insensitive_over_any_shard_split() {
        // The property the multi-process FleetStats merge will need:
        // folding N shards in any order (and any grouping) yields the
        // same total. Compare the canonical left fold against reversed,
        // interleaved, and pairwise-tree folds.
        let shards: Vec<TelemetryShard> = (0..9).map(|i| random_shard(1000 + i)).collect();
        let fold = |order: &[usize]| {
            let mut out = TelemetryShard::new();
            for &i in order {
                out.merge(&shards[i]);
            }
            out
        };
        let canonical = fold(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(canonical, fold(&[8, 7, 6, 5, 4, 3, 2, 1, 0]));
        assert_eq!(canonical, fold(&[0, 2, 4, 6, 8, 1, 3, 5, 7]));
        // Pairwise tree: ((0+1)+(2+3)) + ((4+5)+(6+7)) + 8.
        let mut tree = merged(&merged(&shards[0], &shards[1]), &shards[2]);
        tree.merge(&shards[3]);
        let mut right = merged(&merged(&shards[4], &shards[5]), &shards[6]);
        right.merge(&shards[7]);
        tree.merge(&right);
        tree.merge(&shards[8]);
        assert_eq!(canonical, tree);
    }

    #[test]
    fn log2_binning_covers_the_u64_range() {
        assert_eq!(Hist::bin_of(0), 0);
        assert_eq!(Hist::bin_of(1), 0);
        assert_eq!(Hist::bin_of(2), 1);
        assert_eq!(Hist::bin_of(3), 1);
        assert_eq!(Hist::bin_of(1024), 10);
        assert_eq!(Hist::bin_of(u64::MAX), 63);
    }

    #[test]
    fn catalog_names_round_trip_and_are_unique() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        for h in Hist::ALL {
            assert_eq!(Hist::from_name(h.name()), Some(h));
        }
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        assert_eq!(Hist::ALL.len(), Hist::COUNT);
    }

    // The recording tests require the real (non-noop) implementation.
    #[cfg(not(feature = "noop"))]
    mod recording {
        use super::super::*;

        #[test]
        fn disabled_recording_is_a_no_op() {
            // Not begun on this thread: everything must stay silent.
            assert!(!is_enabled());
            count(Counter::Sessions, 5);
            observe(Hist::TileNanos, 123);
            record_phase_ns(Phase::Score, 42);
            drop(span(Phase::LaneSimulate));
            assert!(stopwatch().is_none());
            assert!(end().is_empty());
        }

        #[test]
        fn begin_records_and_end_harvests() {
            begin();
            assert!(is_enabled());
            count(Counter::Tiles, 2);
            count(Counter::Tiles, 3);
            observe(Hist::LanesPerBatch, 4);
            record_phase_ns(Phase::ShardFold, 100);
            {
                let _span = span(Phase::Score);
                std::hint::black_box(0u64);
            }
            let shard = end();
            assert!(!is_enabled());
            assert_eq!(shard.counter(Counter::Tiles), 5);
            assert_eq!(shard.hist(Hist::LanesPerBatch)[Hist::bin_of(4)], 1);
            assert_eq!(shard.phase_calls(Phase::ShardFold), 1);
            assert_eq!(shard.phase_ns(Phase::ShardFold), 100);
            assert_eq!(shard.phase_calls(Phase::Score), 1);
            // A second end() hands back the empty identity.
            assert!(end().is_empty());
        }

        #[test]
        fn shards_are_per_thread() {
            begin();
            count(Counter::Sessions, 7);
            let other = std::thread::spawn(|| {
                // A fresh thread starts disabled, with its own shard.
                assert!(!is_enabled());
                begin();
                count(Counter::Sessions, 2);
                end()
            })
            .join()
            .expect("thread completes");
            let mine = end();
            assert_eq!(mine.counter(Counter::Sessions), 7);
            assert_eq!(other.counter(Counter::Sessions), 2);
            let mut total = mine;
            total.merge(&other);
            assert_eq!(total.counter(Counter::Sessions), 9);
        }
    }

    #[test]
    fn snapshot_rates_handle_empty_and_populated_shards() {
        let empty = TelemetrySnapshot::from_shard(TelemetryShard::new());
        assert_eq!(empty.prune_rate(), 0.0);
        assert_eq!(empty.memo_hit_rate(), 0.0);
        assert_eq!(empty.trace_cache_hit_rate(), 0.0);
        let mut shard = TelemetryShard::new();
        shard.counters[Counter::PlanNodes as usize] = 75;
        shard.counters[Counter::PlanPrunes as usize] = 25;
        shard.counters[Counter::DtMemoLookups as usize] = 10;
        shard.counters[Counter::DtMemoHits as usize] = 9;
        shard.counters[Counter::TraceCacheHits as usize] = 3;
        shard.counters[Counter::TraceMaterializations as usize] = 1;
        let snap = TelemetrySnapshot::from_shard(shard);
        assert!((snap.prune_rate() - 0.25).abs() < 1e-12);
        assert!((snap.memo_hit_rate() - 0.9).abs() < 1e-12);
        assert!((snap.trace_cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!(snap.summary().contains("prune rate 25.0%"));
    }
}
