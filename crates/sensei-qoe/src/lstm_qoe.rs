//! LSTM-QoE baseline: a recurrent model over per-chunk features.
//!
//! LSTM-QoE (Eswara et al. 2019) "takes STRRED and individual quality
//! incidents as input to a long short-term memory network designed to
//! capture the 'memory effect' of human perception" (§2.1). Critically, the
//! paper notes its heuristic bias: it "assumes that users are more
//! sensitive to rebuffering events in more 'dynamic' scenes" (§1) — so its
//! per-chunk features include the scene-motion channel. That channel
//! correlates imperfectly with true sensitivity (ads are dynamic but
//! unimportant; scoreboards are static but important), which is exactly the
//! failure mode Figs. 1–2 demonstrate.

use crate::{validate_training_set, QoeError, QoeModel};
use sensei_ml::lstm::LstmRegressor;
use sensei_video::RenderedVideo;

/// The LSTM-QoE model.
#[derive(Debug, Clone)]
pub struct LstmQoe {
    net: LstmRegressor,
    name: String,
}

/// Training hyperparameters for [`LstmQoe::fit`].
#[derive(Debug, Clone)]
pub struct LstmQoeConfig {
    /// Hidden-state width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for LstmQoeConfig {
    fn default() -> Self {
        Self {
            hidden: 12,
            epochs: 40,
            lr: 0.01,
        }
    }
}

impl LstmQoe {
    /// Per-chunk feature sequence: `[vq, stall_norm, motion, |Δvq| on
    /// bitrate switches]`.
    pub fn features(render: &RenderedVideo) -> Vec<Vec<f64>> {
        let d = render.chunk_duration_s();
        let mut prev: Option<(f64, f64)> = None; // (vq, bitrate)
        render
            .chunks()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let stall = c.rebuffer_s
                    + if i == 0 {
                        render.startup_delay_s()
                    } else {
                        0.0
                    };
                let switch = match prev {
                    Some((pvq, pbr)) if (pbr - c.bitrate_kbps).abs() > 1e-9 => (c.vq - pvq).abs(),
                    _ => 0.0,
                };
                prev = Some((c.vq, c.bitrate_kbps));
                vec![c.vq, (stall / d).min(2.0), c.motion, switch]
            })
            .collect()
    }

    /// Fits the LSTM on `(renders, mos)`.
    ///
    /// # Errors
    ///
    /// Returns an error on an empty/mismatched training set or labels
    /// outside `[0, 1]`.
    pub fn fit(
        renders: &[RenderedVideo],
        mos: &[f64],
        config: &LstmQoeConfig,
        seed: u64,
    ) -> Result<Self, QoeError> {
        validate_training_set(renders, mos)?;
        let data: Vec<(Vec<Vec<f64>>, f64)> = renders
            .iter()
            .zip(mos)
            .map(|(r, &m)| (Self::features(r), m))
            .collect();
        let mut net = LstmRegressor::new(4, config.hidden, seed)?;
        net.train(&data, config.epochs, config.lr, seed ^ 0x5EED)?;
        Ok(Self {
            net,
            name: "LSTM-QoE".to_string(),
        })
    }
}

impl QoeModel for LstmQoe {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, render: &RenderedVideo) -> Result<f64, QoeError> {
        Ok(self.net.predict(&Self::features(render))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rebuffer_series;

    #[test]
    fn feature_sequence_shape() {
        let renders = rebuffer_series();
        let f = LstmQoe::features(&renders[1]);
        assert_eq!(f.len(), renders[1].num_chunks());
        assert_eq!(f[0].len(), 4);
        // The stall feature fires only on the stalled chunk.
        assert!(f[0][1] > 0.0);
        assert_eq!(f[1][1], 0.0);
    }

    #[test]
    fn unlike_ksqi_it_can_be_position_sensitive() {
        // Train with labels where a stall on a HIGH-MOTION chunk is worse.
        // The LSTM must learn the motion interaction — this is its defining
        // heuristic per §2.1.
        let renders = rebuffer_series();
        let labels: Vec<f64> = renders
            .iter()
            .map(|r| {
                let mut q: f64 = 0.9;
                for c in r.chunks() {
                    if c.rebuffer_s > 0.0 {
                        q -= if c.motion > 0.5 { 0.5 } else { 0.1 };
                    }
                }
                q.clamp(0.0, 1.0)
            })
            .collect();
        let config = LstmQoeConfig {
            epochs: 150,
            ..LstmQoeConfig::default()
        };
        let model = LstmQoe::fit(&renders, &labels, &config, 11).unwrap();
        // Find a high-motion-stall render and a low-motion-stall render.
        let hi = renders
            .iter()
            .position(|r| {
                r.chunks()
                    .iter()
                    .any(|c| c.rebuffer_s > 0.0 && c.motion > 0.7)
            })
            .expect("series stalls every chunk; some are high-motion");
        let lo = renders
            .iter()
            .position(|r| {
                r.chunks()
                    .iter()
                    .any(|c| c.rebuffer_s > 0.0 && c.motion < 0.3)
            })
            .expect("some are low-motion");
        let q_hi = model.predict(&renders[hi]).unwrap();
        let q_lo = model.predict(&renders[lo]).unwrap();
        assert!(
            q_lo > q_hi + 0.05,
            "LSTM should punish dynamic-scene stalls: lo {q_lo} vs hi {q_hi}"
        );
    }

    #[test]
    fn fit_is_deterministic() {
        let renders = rebuffer_series();
        let labels = vec![0.5; renders.len()];
        let cfg = LstmQoeConfig {
            epochs: 5,
            ..LstmQoeConfig::default()
        };
        let a = LstmQoe::fit(&renders, &labels, &cfg, 3).unwrap();
        let b = LstmQoe::fit(&renders, &labels, &cfg, 3).unwrap();
        assert_eq!(
            a.predict(&renders[0]).unwrap(),
            b.predict(&renders[0]).unwrap()
        );
    }

    #[test]
    fn fit_validates_input() {
        assert!(LstmQoe::fit(&[], &[], &LstmQoeConfig::default(), 0).is_err());
        let renders = rebuffer_series();
        assert!(LstmQoe::fit(
            &renders,
            &vec![-0.1; renders.len()],
            &LstmQoeConfig::default(),
            0
        )
        .is_err());
    }

    #[test]
    fn predictions_stay_normalized() {
        let renders = rebuffer_series();
        let labels: Vec<f64> = renders.iter().map(|_| 0.7).collect();
        let cfg = LstmQoeConfig {
            epochs: 10,
            ..LstmQoeConfig::default()
        };
        let model = LstmQoe::fit(&renders, &labels, &cfg, 5).unwrap();
        for r in &renders {
            let p = model.predict(r).unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
