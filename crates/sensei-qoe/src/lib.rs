//! QoE models for the SENSEI reproduction.
//!
//! §2.1 taxonomizes QoE models into pixel-based visual quality and
//! streaming-incident models, and picks three state-of-the-art baselines
//! with open-source implementations: KSQI (linear, additive), P.1203
//! (random forest), and LSTM-QoE (recurrent). SENSEI's own model (§4.2) is
//! any *additive* base model reweighted by per-chunk sensitivity:
//!
//! ```text
//! Q = Σ_i q_i          (Eq. 1 — base additive model)
//! Q = Σ_i w_i · q_i    (Eq. 2 — SENSEI reweighting)
//! ```
//!
//! This crate implements all four against the [`QoeModel`] trait, plus the
//! canonical per-chunk quality `q(b, t, switch)` ([`chunk`]) that KSQI-style
//! models and the ABR objectives share, and the evaluation metrics of §7
//! ([`eval`]).

// Chunk indices and counts convert to f64 for model math; all are
// far below 2^52, so the conversions are exact.
#![allow(clippy::cast_precision_loss)]

pub mod chunk;
pub mod eval;
pub mod ksqi;
pub mod lstm_qoe;
pub mod p1203;
pub mod sensei_model;

pub use chunk::ChunkQualityParams;
pub use ksqi::Ksqi;
pub use lstm_qoe::LstmQoe;
pub use p1203::P1203Like;
pub use sensei_model::SenseiQoe;

use sensei_video::RenderedVideo;

/// Errors produced by QoE models.
#[derive(Debug, Clone, PartialEq)]
pub enum QoeError {
    /// The training set is empty or labels mismatch.
    DegenerateTrainingSet(String),
    /// A label is outside the normalized `[0, 1]` range.
    InvalidLabel {
        /// Index of the offending sample.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An underlying ML-substrate error.
    Ml(sensei_ml::MlError),
    /// An underlying video-substrate error.
    Video(sensei_video::VideoError),
}

impl std::fmt::Display for QoeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QoeError::DegenerateTrainingSet(msg) => write!(f, "degenerate training set: {msg}"),
            QoeError::InvalidLabel { index, value } => {
                write!(f, "label {index} = {value} outside [0, 1]")
            }
            QoeError::Ml(e) => write!(f, "ml error: {e}"),
            QoeError::Video(e) => write!(f, "video error: {e}"),
        }
    }
}

impl std::error::Error for QoeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QoeError::Ml(e) => Some(e),
            QoeError::Video(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sensei_ml::MlError> for QoeError {
    fn from(e: sensei_ml::MlError) -> Self {
        QoeError::Ml(e)
    }
}

impl From<sensei_video::VideoError> for QoeError {
    fn from(e: sensei_video::VideoError) -> Self {
        QoeError::Video(e)
    }
}

/// A model that predicts normalized QoE (`[0, 1]`) for a rendered video.
pub trait QoeModel {
    /// Model name for reports (e.g. `"KSQI"`).
    fn name(&self) -> &str;

    /// Predicts normalized QoE for one rendered video.
    ///
    /// # Errors
    ///
    /// Returns an error when the render is structurally incompatible with
    /// the model (never for well-formed renders).
    fn predict(&self, render: &RenderedVideo) -> Result<f64, QoeError>;

    /// Predicts a batch; default implementation maps [`Self::predict`].
    ///
    /// # Errors
    ///
    /// Propagates the first prediction error.
    fn predict_batch(&self, renders: &[RenderedVideo]) -> Result<Vec<f64>, QoeError> {
        renders.iter().map(|r| self.predict(r)).collect()
    }
}

/// Boxed models are models, so crate boundaries can trade in
/// `Box<dyn QoeModel>` without unwrapping.
impl<M: QoeModel + ?Sized> QoeModel for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn predict(&self, render: &RenderedVideo) -> Result<f64, QoeError> {
        (**self).predict(render)
    }

    fn predict_batch(&self, renders: &[RenderedVideo]) -> Result<Vec<f64>, QoeError> {
        (**self).predict_batch(renders)
    }
}

/// The trait must stay object-safe: swappable QoE backends are held as
/// `Box<dyn QoeModel>` across crate boundaries.
const _: fn(&dyn QoeModel) = |_| {};

/// Validates a labeled training set: non-empty, labels in `[0, 1]`.
pub(crate) fn validate_training_set(
    renders: &[RenderedVideo],
    labels: &[f64],
) -> Result<(), QoeError> {
    if renders.is_empty() || renders.len() != labels.len() {
        return Err(QoeError::DegenerateTrainingSet(format!(
            "{} renders vs {} labels",
            renders.len(),
            labels.len()
        )));
    }
    for (index, &value) in labels.iter().enumerate() {
        if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
            return Err(QoeError::InvalidLabel { index, value });
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for the QoE model tests.
    use sensei_video::content::{Genre, SceneKind, SceneSpec};
    use sensei_video::{BitrateLadder, Incident, RenderedVideo, SourceVideo};

    /// A 10-chunk test video: 4 normal, 2 key-moment, 2 ad, 2 scenic chunks.
    pub fn source() -> SourceVideo {
        SourceVideo::from_script(
            "qoe-test",
            Genre::Sports,
            &[
                SceneSpec::new(SceneKind::NormalPlay, 4),
                SceneSpec::new(SceneKind::KeyMoment, 2),
                SceneSpec::new(SceneKind::AdBreak, 2),
                SceneSpec::new(SceneKind::Scenic, 2),
            ],
            42,
        )
        .unwrap()
    }

    /// Renders with a 1-second rebuffer at each chunk plus the pristine one.
    pub fn rebuffer_series() -> Vec<RenderedVideo> {
        let src = source();
        let ladder = BitrateLadder::default_paper();
        let mut out = vec![RenderedVideo::pristine(&src, &ladder)];
        for chunk in 0..src.num_chunks() {
            out.push(
                RenderedVideo::with_incidents(
                    &src,
                    &ladder,
                    &[Incident::Rebuffer {
                        chunk,
                        duration_s: 1.0,
                    }],
                )
                .unwrap(),
            );
        }
        out
    }
}
