//! The canonical per-chunk quality score `q(b, t, switch)`.
//!
//! Both KSQI (Eq. 1) and Fugu's objective (Eq. 3, "q(b, t) estimates the
//! quality of a chunk with the bitrate b and rebuffering time t using a
//! simplified model of KSQI") decompose session QoE into per-chunk scores.
//! The canonical decomposition combines three terms:
//!
//! ```text
//! q_i = vq_i − β · min(stall_i / D, 1) − γ · |vq_i − vq_{i−1}|
//! ```
//!
//! where `vq_i` is the visual quality of chunk `i`, `stall_i` the stall
//! seconds charged to it (startup delay is charged to chunk 0), `D` the
//! chunk duration, and the last term the quality-switch penalty.

use sensei_video::RenderedVideo;

/// Coefficients of the canonical per-chunk quality model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkQualityParams {
    /// Rebuffering penalty β per unit normalized stall (stall / chunk
    /// duration, capped at 1).
    pub rebuffer_penalty: f64,
    /// Quality-switch penalty γ per unit |Δvq|.
    pub switch_penalty: f64,
}

impl Default for ChunkQualityParams {
    /// The canonical coefficients used by the hidden oracle and as the
    /// untrained starting point of KSQI: a 4-second stall wipes out slightly
    /// more than the quality of a top-bitrate chunk (β = 0.9), and switches
    /// cost a third of their magnitude (γ = 0.35).
    fn default() -> Self {
        Self {
            rebuffer_penalty: 0.9,
            switch_penalty: 0.35,
        }
    }
}

impl ChunkQualityParams {
    /// The per-chunk quality of a single chunk given its visual quality,
    /// the stall charged to it, the quality-switch delta `|Δvq|` at its
    /// boundary (0 when the bitrate did not change), and the chunk duration.
    ///
    /// The stall term is *unbounded above* — a 14-second stall must cost
    /// more than a 4-second one, or controllers rationally batch stalls
    /// (KSQI likewise penalizes total rebuffering time). The overall score
    /// is floored at −4 to keep pathological renders finite.
    pub fn score(&self, vq: f64, stall_s: f64, switch_delta: f64, chunk_duration_s: f64) -> f64 {
        let stall_norm = (stall_s / chunk_duration_s).max(0.0);
        (vq - self.rebuffer_penalty * stall_norm - self.switch_penalty * switch_delta)
            .clamp(-4.0, 1.0)
    }

    /// Per-chunk quality scores of a whole render. Startup delay is charged
    /// to the first chunk as stall time; the switch term fires only at
    /// boundaries where the bitrate actually changed.
    pub fn chunk_scores(&self, render: &RenderedVideo) -> Vec<f64> {
        let d = render.chunk_duration_s();
        let mut prev: Option<(f64, f64)> = None; // (vq, bitrate)
        render
            .chunks()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let stall = c.rebuffer_s
                    + if i == 0 {
                        render.startup_delay_s()
                    } else {
                        0.0
                    };
                let switch = match prev {
                    Some((pvq, pbr)) if (pbr - c.bitrate_kbps).abs() > 1e-9 => (c.vq - pvq).abs(),
                    _ => 0.0,
                };
                prev = Some((c.vq, c.bitrate_kbps));
                self.score(c.vq, stall, switch, d)
            })
            .collect()
    }

    /// The unweighted session quality: the mean of [`Self::chunk_scores`]
    /// (Eq. 1 normalized by chunk count).
    pub fn session_quality(&self, render: &RenderedVideo) -> f64 {
        let scores = self.chunk_scores(render);
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{rebuffer_series, source};
    use sensei_video::{BitrateLadder, Incident, RenderedVideo};

    #[test]
    fn pristine_chunk_scores_equal_vq() {
        let params = ChunkQualityParams::default();
        let render = RenderedVideo::pristine(&source(), &BitrateLadder::default_paper());
        let scores = params.chunk_scores(&render);
        for (s, c) in scores.iter().zip(render.chunks()) {
            assert!((s - c.vq).abs() < 1e-12);
        }
    }

    #[test]
    fn rebuffering_lowers_exactly_one_chunk() {
        let params = ChunkQualityParams::default();
        let series = rebuffer_series();
        let pristine_scores = params.chunk_scores(&series[0]);
        // series[1] has the stall at chunk 0, series[k] at chunk k-1.
        for (k, render) in series.iter().enumerate().skip(1) {
            let scores = params.chunk_scores(render);
            for (i, (s, p)) in scores.iter().zip(&pristine_scores).enumerate() {
                if i == k - 1 {
                    assert!(s < p, "chunk {i} should be penalized");
                    // 1 s over a 4 s chunk at β = 0.9.
                    assert!((p - s - 0.9 * 0.25).abs() < 1e-9);
                } else {
                    assert!((s - p).abs() < 1e-12, "chunk {i} unexpectedly changed");
                }
            }
        }
    }

    #[test]
    fn switch_penalty_hits_both_boundary_chunks() {
        let params = ChunkQualityParams::default();
        let src = source();
        let ladder = BitrateLadder::default_paper();
        let render = RenderedVideo::with_incidents(
            &src,
            &ladder,
            &[Incident::BitrateDrop {
                chunk: 4,
                len_chunks: 2,
                level: 0,
            }],
        )
        .unwrap();
        let pristine = params.chunk_scores(&RenderedVideo::pristine(&src, &ladder));
        let scores = params.chunk_scores(&render);
        // Chunk 4: lower vq + switch-down penalty.
        assert!(scores[4] < pristine[4]);
        // Chunk 6: same vq as pristine but pays the switch-up penalty.
        assert!(scores[6] < pristine[6]);
        // Chunk 3 untouched.
        assert!((scores[3] - pristine[3]).abs() < 1e-12);
    }

    #[test]
    fn startup_delay_charged_to_first_chunk() {
        let params = ChunkQualityParams::default();
        let src = source();
        let ladder = BitrateLadder::default_paper();
        let base = RenderedVideo::pristine(&src, &ladder);
        let delayed = RenderedVideo::new(
            base.source_name(),
            base.chunk_duration_s(),
            2.0,
            base.chunks().to_vec(),
        )
        .unwrap();
        let s0 = params.chunk_scores(&base);
        let s1 = params.chunk_scores(&delayed);
        assert!(s1[0] < s0[0]);
        assert_eq!(s1[1], s0[1]);
    }

    #[test]
    fn stall_penalty_keeps_growing_with_stall_length() {
        let params = ChunkQualityParams::default();
        let a = params.score(0.8, 4.0, 0.0, 4.0);
        let b = params.score(0.8, 8.0, 0.0, 4.0);
        assert!(b < a, "longer stalls must hurt more: {b} vs {a}");
        assert!((a - (0.8 - 0.9)).abs() < 1e-12);
        // ... down to the finite floor.
        let c = params.score(0.8, 1000.0, 0.0, 4.0);
        assert_eq!(c, -4.0);
    }

    #[test]
    fn session_quality_is_mean_of_chunks() {
        let params = ChunkQualityParams::default();
        let render = RenderedVideo::pristine(&source(), &BitrateLadder::default_paper());
        let scores = params.chunk_scores(&render);
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!((params.session_quality(&render) - mean).abs() < 1e-12);
    }
}
