//! Evaluation metrics for QoE models (§2.2, §7.3).
//!
//! Two headline measures from Fig. 2: the mean *relative prediction error*
//! `|Q_predict − Q_true| / Q_true`, and the fraction of *discordant pairs* —
//! cases where a model mis-ranks two ABR algorithms on the same
//! (video, trace) pair. Fig. 15 adds PLCC/SRCC scatter metrics.

use crate::{QoeError, QoeModel};
use sensei_ml::stats;
use sensei_video::RenderedVideo;

/// Accuracy summary of one model on a labeled test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelAccuracy {
    /// Mean relative prediction error (Fig. 2 x-axis).
    pub relative_error: f64,
    /// Pearson linear correlation (Fig. 15).
    pub plcc: f64,
    /// Spearman rank correlation (Fig. 15).
    pub srcc: f64,
}

/// Evaluates a model against ground-truth MOS labels.
///
/// # Errors
///
/// Returns an error when prediction fails or the test set is degenerate
/// (fewer than 2 samples, constant labels).
pub fn evaluate_model<M: QoeModel + ?Sized>(
    model: &M,
    renders: &[RenderedVideo],
    truth: &[f64],
) -> Result<ModelAccuracy, QoeError> {
    if renders.len() != truth.len() || renders.len() < 2 {
        return Err(QoeError::DegenerateTrainingSet(format!(
            "need >= 2 labeled samples, got {} renders / {} labels",
            renders.len(),
            truth.len()
        )));
    }
    let preds = model.predict_batch(renders)?;
    let relative_error = stats::mean_relative_error(&preds, truth).ok_or_else(|| {
        QoeError::DegenerateTrainingSet("all ground-truth labels are zero".to_string())
    })?;
    let plcc = stats::pearson(&preds, truth).ok_or_else(|| {
        QoeError::DegenerateTrainingSet("constant predictions or labels".to_string())
    })?;
    let srcc = stats::spearman(&preds, truth).ok_or_else(|| {
        QoeError::DegenerateTrainingSet("constant predictions or labels".to_string())
    })?;
    Ok(ModelAccuracy {
        relative_error,
        plcc,
        srcc,
    })
}

/// One (video, trace) cell of the ABR-ranking experiment: the true and
/// predicted QoE of each ABR algorithm's render.
#[derive(Debug, Clone)]
pub struct RankingCell {
    /// True QoE per ABR algorithm.
    pub truth: Vec<f64>,
    /// Predicted QoE per ABR algorithm (same order).
    pub predicted: Vec<f64>,
}

/// Fraction of discordant ABR pairs across cells (Fig. 2 y-axis): for every
/// (video, trace) cell and every pair of ABR algorithms, counts the pairs
/// whose predicted order contradicts the true order.
///
/// Returns `None` when no comparable pairs exist.
pub fn discordant_pair_fraction(cells: &[RankingCell]) -> Option<f64> {
    let mut discordant = 0usize;
    let mut total = 0usize;
    for cell in cells {
        if cell.truth.len() != cell.predicted.len() {
            continue;
        }
        let n = cell.truth.len();
        for i in 0..n {
            for j in i + 1..n {
                let dt = cell.truth[i] - cell.truth[j];
                let dp = cell.predicted[i] - cell.predicted[j];
                if dt == 0.0 || dp == 0.0 {
                    continue;
                }
                total += 1;
                if dt.signum() != dp.signum() {
                    discordant += 1;
                }
            }
        }
    }
    if total == 0 {
        None
    } else {
        Some(discordant as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ksqi::Ksqi;
    use crate::test_support::rebuffer_series;

    #[test]
    fn perfect_model_scores_perfectly() {
        let model = Ksqi::canonical();
        let renders = rebuffer_series();
        // Use the model's own predictions as ground truth.
        let truth = model.predict_batch(&renders).unwrap();
        let acc = evaluate_model(&model, &renders, &truth).unwrap();
        assert!(acc.relative_error < 1e-12);
        assert!(acc.plcc > 0.999);
        assert!(acc.srcc > 0.999);
    }

    #[test]
    fn degenerate_sets_are_rejected() {
        let model = Ksqi::canonical();
        let renders = rebuffer_series();
        assert!(evaluate_model(&model, &renders[..1], &[0.5]).is_err());
        assert!(evaluate_model(&model, &renders, &[0.5]).is_err());
        let zeros = vec![0.0; renders.len()];
        assert!(evaluate_model(&model, &renders, &zeros).is_err());
    }

    #[test]
    fn discordant_pairs_detect_rank_flips() {
        let cells = vec![
            RankingCell {
                truth: vec![0.9, 0.5, 0.3],
                predicted: vec![0.8, 0.6, 0.4], // same order: 0 discordant
            },
            RankingCell {
                truth: vec![0.9, 0.5, 0.3],
                predicted: vec![0.4, 0.6, 0.8], // fully reversed: 3 discordant
            },
        ];
        let frac = discordant_pair_fraction(&cells).unwrap();
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ties_and_empty_cells_are_skipped() {
        let cells = vec![RankingCell {
            truth: vec![0.5, 0.5],
            predicted: vec![0.4, 0.6],
        }];
        assert!(discordant_pair_fraction(&cells).is_none());
        assert!(discordant_pair_fraction(&[]).is_none());
        // Mismatched lengths are skipped, not panicked on.
        let cells = vec![RankingCell {
            truth: vec![0.5],
            predicted: vec![0.4, 0.6],
        }];
        assert!(discordant_pair_fraction(&cells).is_none());
    }
}
