//! SENSEI's QoE model: an additive base model reweighted per chunk (Eq. 2).
//!
//! "SENSEI reweights the QoE model as follows: Q = Σ w_i·q_i, where w_i is
//! the weight of the i-th chunk, reflecting how much more sensitive users
//! are to quality incidents in this chunk compared to other chunks" (§4.2).
//! The paper fixes KSQI as the base model ("we assume that KSQI reweighted
//! by Equation 2 is the QoE model of SENSEI"), and so do we.

use crate::ksqi::Ksqi;
use crate::{QoeError, QoeModel};
use sensei_video::{RenderedVideo, SensitivityWeights};

/// The SENSEI QoE model: KSQI chunk scores weighted by per-chunk
/// sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseiQoe {
    base: Ksqi,
    weights: SensitivityWeights,
    name: String,
}

impl SenseiQoe {
    /// Combines a fitted KSQI base with a per-chunk weight vector (from the
    /// crowdsourcing pipeline or ground truth in oracle experiments).
    pub fn new(base: Ksqi, weights: SensitivityWeights) -> Self {
        Self {
            base,
            weights,
            name: "SENSEI".to_string(),
        }
    }

    /// The per-chunk weights.
    pub fn weights(&self) -> &SensitivityWeights {
        &self.weights
    }

    /// The KSQI base model.
    pub fn base(&self) -> &Ksqi {
        &self.base
    }

    /// The weighted session quality before clamping — exposed for ABR
    /// objectives that need the raw value.
    ///
    /// # Errors
    ///
    /// Returns an error when the render's chunk count differs from the
    /// weight vector length.
    pub fn weighted_quality(&self, render: &RenderedVideo) -> Result<f64, QoeError> {
        if render.num_chunks() != self.weights.len() {
            return Err(QoeError::Video(sensei_video::VideoError::InvalidWeights(
                format!(
                    "render has {} chunks but weights cover {}",
                    render.num_chunks(),
                    self.weights.len()
                ),
            )));
        }
        let scores = self.base.chunk_scores(render);
        let w = self.weights.as_slice();
        let num: f64 = scores.iter().zip(w).map(|(q, wi)| q * wi).sum();
        let den: f64 = w.iter().sum();
        Ok(num / den)
    }
}

impl QoeModel for SenseiQoe {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, render: &RenderedVideo) -> Result<f64, QoeError> {
        Ok(self.weighted_quality(render)?.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{rebuffer_series, source};
    use sensei_video::SensitivityWeights;

    fn ground_truth_weights() -> SensitivityWeights {
        SensitivityWeights::ground_truth(&source())
    }

    #[test]
    fn uniform_weights_reduce_to_ksqi() {
        let src = source();
        let base = Ksqi::canonical();
        let uniform = SensitivityWeights::uniform(src.num_chunks()).unwrap();
        let sensei = SenseiQoe::new(base.clone(), uniform);
        for render in rebuffer_series() {
            let a = sensei.predict(&render).unwrap();
            let b = base.predict(&render).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn distinguishes_stall_positions_where_ksqi_cannot() {
        let sensei = SenseiQoe::new(Ksqi::canonical(), ground_truth_weights());
        let series = rebuffer_series();
        // Stall renders: series[k] stalls chunk k-1. Chunks 4-5 are key
        // moments (weight high), chunks 8-9 scenic (weight low).
        let q_key = sensei.predict(&series[5]).unwrap();
        let q_scenic = sensei.predict(&series[9]).unwrap();
        assert!(
            q_scenic > q_key + 0.01,
            "stall at key moment ({q_key}) must hurt more than at scenic ({q_scenic})"
        );
    }

    #[test]
    fn weight_length_mismatch_is_an_error() {
        let weights = SensitivityWeights::uniform(3).unwrap();
        let sensei = SenseiQoe::new(Ksqi::canonical(), weights);
        let series = rebuffer_series();
        assert!(sensei.predict(&series[0]).is_err());
    }

    #[test]
    fn prediction_is_clamped() {
        let sensei = SenseiQoe::new(Ksqi::canonical(), ground_truth_weights());
        for render in rebuffer_series() {
            let p = sensei.predict(&render).unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn weighted_quality_matches_hand_computation() {
        let base = Ksqi::canonical();
        let weights = ground_truth_weights();
        let sensei = SenseiQoe::new(base.clone(), weights.clone());
        let render = &rebuffer_series()[3];
        let scores = base.chunk_scores(render);
        let w = weights.as_slice();
        let expected =
            scores.iter().zip(w).map(|(q, wi)| q * wi).sum::<f64>() / w.iter().sum::<f64>();
        assert!((sensei.weighted_quality(render).unwrap() - expected).abs() < 1e-12);
    }
}
