//! KSQI: the additive, knowledge-driven QoE baseline.
//!
//! KSQI (Duanmu et al. 2019) "combines VMAF, rebuffering ratio, and quality
//! switches in a linear regression model" (§2.1) and has the additive form
//! `Q = Σ q_i` of Eq. 1 — which is exactly why the paper picks it as
//! SENSEI's base model. Our KSQI expresses the session QoE as an affine
//! function of the canonical per-chunk terms:
//!
//! ```text
//! Q = a·mean(vq) − b·mean(stall_norm) − c·mean(|Δvq|) + d
//! ```
//!
//! fit by ridge regression on MOS labels, and exposes the per-chunk
//! decomposition `q_i` required by SENSEI's reweighting (Eq. 2) and by the
//! Fugu objective (Eq. 3).

use crate::{validate_training_set, QoeError, QoeModel};
use sensei_ml::regress::LinearModel;
use sensei_video::RenderedVideo;

/// The KSQI model. Construct untrained via [`Ksqi::canonical`] or fit with
/// [`Ksqi::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct Ksqi {
    /// Coefficient on mean visual quality.
    a: f64,
    /// Coefficient on mean normalized stall (positive = penalty).
    b: f64,
    /// Coefficient on mean switch magnitude (positive = penalty).
    c: f64,
    /// Intercept.
    d: f64,
    name: String,
}

impl Ksqi {
    /// The canonical (untrained) coefficients, mirroring
    /// [`crate::ChunkQualityParams::default`] with a unit quality slope.
    pub fn canonical() -> Self {
        Self {
            a: 1.0,
            b: 0.9,
            c: 0.35,
            d: 0.0,
            name: "KSQI(canonical)".to_string(),
        }
    }

    /// Fits coefficients on `(renders, mos)` by ridge regression.
    ///
    /// # Errors
    ///
    /// Returns an error on an empty/mismatched training set, labels outside
    /// `[0, 1]`, or a singular regression (degenerate features).
    pub fn fit(renders: &[RenderedVideo], mos: &[f64]) -> Result<Self, QoeError> {
        validate_training_set(renders, mos)?;
        let x: Vec<Vec<f64>> = renders.iter().map(Self::features).collect();
        let model = LinearModel::fit(&x, mos, 1e-6, true)?;
        let w = model.weights();
        Ok(Self {
            a: w[0],
            b: -w[1], // regression learns signed slopes; store as penalties
            c: -w[2],
            d: model.intercept(),
            name: "KSQI".to_string(),
        })
    }

    /// Session-level features: `[mean vq, mean stall_norm, mean |Δvq|]`.
    fn features(render: &RenderedVideo) -> Vec<f64> {
        let n = render.num_chunks() as f64;
        let d = render.chunk_duration_s();
        let mean_vq = render.avg_vq();
        let mut stall = render.startup_delay_s();
        for c in render.chunks() {
            stall += c.rebuffer_s;
        }
        let mean_stall = stall / (n * d);
        let mean_switch = render.switch_magnitude() / n;
        vec![mean_vq, mean_stall, mean_switch]
    }

    /// The fitted coefficients `(a, b, c, d)` with `b`, `c` as positive
    /// penalties.
    pub fn coefficients(&self) -> (f64, f64, f64, f64) {
        (self.a, self.b, self.c, self.d)
    }

    /// Per-chunk decomposition `q_i` such that `predict = clamp(mean(q_i))`.
    /// This is the `q_i` of Eq. 1/2; SENSEI reweights it. The switch term
    /// fires only at boundaries where the bitrate changed.
    pub fn chunk_scores(&self, render: &RenderedVideo) -> Vec<f64> {
        let d = render.chunk_duration_s();
        let mut prev: Option<(f64, f64)> = None; // (vq, bitrate)
        render
            .chunks()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let stall = c.rebuffer_s
                    + if i == 0 {
                        render.startup_delay_s()
                    } else {
                        0.0
                    };
                let switch = match prev {
                    Some((pvq, pbr)) if (pbr - c.bitrate_kbps).abs() > 1e-9 => (c.vq - pvq).abs(),
                    _ => 0.0,
                };
                prev = Some((c.vq, c.bitrate_kbps));
                self.chunk_quality(c.vq, stall, switch, d)
            })
            .collect()
    }

    /// Chunk-level quality for ABR objectives (Fugu's `q(b, t)`): quality of
    /// a chunk streamed at visual quality `vq` with `stall_s` of stall and a
    /// quality-switch delta `switch_delta = |Δvq|` at its boundary (callers
    /// pass 0 when the bitrate did not change). The stall term is unbounded
    /// above (long stalls keep hurting); the score is floored at −4.
    // Inlined into the MPC planners' straight-line leaf loops so the
    // whole per-leaf computation is branch-light slice arithmetic the
    // autovectorizer can work with.
    #[inline]
    pub fn chunk_quality(
        &self,
        vq: f64,
        stall_s: f64,
        switch_delta: f64,
        chunk_duration_s: f64,
    ) -> f64 {
        let stall_norm = (stall_s / chunk_duration_s).max(0.0);
        (self.a * vq - self.b * stall_norm - self.c * switch_delta + self.d).max(-4.0)
    }
}

impl QoeModel for Ksqi {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, render: &RenderedVideo) -> Result<f64, QoeError> {
        let scores = self.chunk_scores(render);
        let q = scores.iter().sum::<f64>() / scores.len() as f64;
        Ok(q.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{rebuffer_series, source};
    use sensei_video::{BitrateLadder, Incident, RenderedVideo};

    /// Labels from a simple affine function of the KSQI features, so the fit
    /// must recover them nearly exactly.
    fn synthetic_labels(renders: &[RenderedVideo]) -> Vec<f64> {
        renders
            .iter()
            .map(|r| {
                let f = Ksqi::features(r);
                (0.2 + 0.8 * f[0] - 0.9 * f[1] - 0.3 * f[2]).clamp(0.0, 1.0)
            })
            .collect()
    }

    #[test]
    fn canonical_prefers_pristine() {
        let model = Ksqi::canonical();
        let series = rebuffer_series();
        let pristine = model.predict(&series[0]).unwrap();
        for render in &series[1..] {
            assert!(model.predict(render).unwrap() < pristine);
        }
    }

    #[test]
    fn canonical_is_position_blind() {
        // KSQI predicts the SAME QoE wherever the 1-second stall lands —
        // the §2.3 observation that motivates SENSEI.
        let model = Ksqi::canonical();
        let series = rebuffer_series();
        let qs: Vec<f64> = series[1..]
            .iter()
            .map(|r| model.predict(r).unwrap())
            .collect();
        let spread = qs.iter().cloned().fold(0.0_f64, f64::max)
            - qs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e-9, "KSQI should not distinguish positions");
    }

    #[test]
    fn fit_recovers_affine_ground_truth() {
        let mut renders = rebuffer_series();
        let src = source();
        let ladder = BitrateLadder::default_paper();
        // Vary both drop level and drop length: a drop has two switch
        // boundaries regardless of length, so varying length decouples the
        // mean-vq feature from the switch-magnitude feature.
        for level in 0..3 {
            for len_chunks in [1, 3, 5] {
                renders.push(
                    RenderedVideo::with_incidents(
                        &src,
                        &ladder,
                        &[Incident::BitrateDrop {
                            chunk: 2,
                            len_chunks,
                            level,
                        }],
                    )
                    .unwrap(),
                );
            }
        }
        let labels = synthetic_labels(&renders);
        let model = Ksqi::fit(&renders, &labels).unwrap();
        let (a, b, c, _) = model.coefficients();
        assert!((a - 0.8).abs() < 0.05, "a = {a}");
        assert!((b - 0.9).abs() < 0.1, "b = {b}");
        assert!((c - 0.3).abs() < 0.15, "c = {c}");
        let preds = model.predict_batch(&renders).unwrap();
        for (p, l) in preds.iter().zip(&labels) {
            assert!((p - l).abs() < 0.02, "pred {p} vs label {l}");
        }
    }

    #[test]
    fn chunk_scores_mean_equals_prediction() {
        let model = Ksqi::canonical();
        let series = rebuffer_series();
        for render in &series {
            let scores = model.chunk_scores(render);
            let mean = scores.iter().sum::<f64>() / scores.len() as f64;
            assert!((model.predict(render).unwrap() - mean.clamp(0.0, 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn chunk_quality_matches_chunk_scores() {
        let model = Ksqi::canonical();
        let series = rebuffer_series();
        let render = &series[3];
        let scores = model.chunk_scores(render);
        let chunks = render.chunks();
        // Chunk 1 (no startup delay, same bitrate as chunk 0 -> no switch).
        let manual = model.chunk_quality(
            chunks[1].vq,
            chunks[1].rebuffer_s,
            0.0,
            render.chunk_duration_s(),
        );
        assert!((scores[1] - manual).abs() < 1e-12);
    }

    #[test]
    fn fit_validates_input() {
        assert!(Ksqi::fit(&[], &[]).is_err());
        let series = rebuffer_series();
        let labels = vec![0.5; series.len() - 1];
        assert!(Ksqi::fit(&series, &labels).is_err());
        let mut bad = vec![0.5; series.len()];
        bad[0] = 1.5;
        assert!(matches!(
            Ksqi::fit(&series, &bad).unwrap_err(),
            QoeError::InvalidLabel { index: 0, .. }
        ));
    }
}
