//! P.1203-like QoE baseline: a random forest over session summaries.
//!
//! ITU-T P.1203 mode 0/1 implementations (Robitza et al. 2017) predict MOS
//! from stream-level features; the paper's version "combines QP values and
//! quality incident metrics in a random-forest model" (§2.1). Like the real
//! model, it sees *what* happened in a session (bitrates, stalls, switches,
//! motion statistics) but not *where* incidents landed relative to the
//! storyline — the structural blindness Fig. 2 exposes.

use crate::{validate_training_set, QoeError, QoeModel};
use sensei_ml::forest::{ForestParams, RandomForest};
use sensei_video::RenderedVideo;

/// The P.1203-like random-forest QoE model.
#[derive(Debug, Clone)]
pub struct P1203Like {
    forest: RandomForest,
    name: String,
}

impl P1203Like {
    /// Session summary features.
    ///
    /// Ten entries: mean/min visual quality, mean bitrate (Mbps), stall
    /// count/total/ratio, startup delay, switch count/magnitude, and mean
    /// motion (a QP-like content proxy).
    pub fn features(render: &RenderedVideo) -> Vec<f64> {
        let n = render.num_chunks() as f64;
        let stalls: Vec<f64> = render
            .chunks()
            .iter()
            .map(|c| c.rebuffer_s)
            .filter(|&s| s > 0.0)
            .collect();
        let min_vq = render
            .chunks()
            .iter()
            .map(|c| c.vq)
            .fold(f64::INFINITY, f64::min);
        let mean_motion = render.chunks().iter().map(|c| c.motion).sum::<f64>() / n;
        vec![
            render.avg_vq(),
            min_vq,
            render.avg_bitrate_kbps() / 1000.0,
            stalls.len() as f64,
            stalls.iter().sum::<f64>(),
            render.rebuffer_ratio(),
            render.startup_delay_s(),
            render.num_switches() as f64,
            render.switch_magnitude(),
            mean_motion,
        ]
    }

    /// Fits the forest on `(renders, mos)`.
    ///
    /// # Errors
    ///
    /// Returns an error on an empty/mismatched training set or labels
    /// outside `[0, 1]`.
    pub fn fit(renders: &[RenderedVideo], mos: &[f64], seed: u64) -> Result<Self, QoeError> {
        validate_training_set(renders, mos)?;
        let x: Vec<Vec<f64>> = renders.iter().map(Self::features).collect();
        let params = ForestParams {
            n_trees: 50,
            max_depth: 9,
            min_samples_split: 4,
            max_features: Some(4),
            bootstrap_fraction: 0.9,
        };
        let forest = RandomForest::fit(&x, mos, &params, seed)?;
        Ok(Self {
            forest,
            name: "P.1203".to_string(),
        })
    }
}

impl QoeModel for P1203Like {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, render: &RenderedVideo) -> Result<f64, QoeError> {
        Ok(self
            .forest
            .predict(&Self::features(render))?
            .clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rebuffer_series;

    fn labels_from_stall_count(renders: &[RenderedVideo]) -> Vec<f64> {
        renders
            .iter()
            .map(|r| (0.9 - 0.3 * r.total_rebuffer_s()).clamp(0.0, 1.0))
            .collect()
    }

    #[test]
    fn learns_stall_aversion() {
        let renders = rebuffer_series();
        let labels = labels_from_stall_count(&renders);
        let model = P1203Like::fit(&renders, &labels, 3).unwrap();
        // Pristine must beat stalled renders.
        let pristine = model.predict(&renders[0]).unwrap();
        let stalled = model.predict(&renders[1]).unwrap();
        assert!(
            pristine > stalled,
            "pristine {pristine} vs stalled {stalled}"
        );
    }

    #[test]
    fn is_position_blind_like_the_paper_claims() {
        // All stalled renders share identical summary features, so P.1203
        // cannot distinguish stall positions.
        let renders = rebuffer_series();
        let f1 = P1203Like::features(&renders[1]);
        let f2 = P1203Like::features(&renders[5]);
        for (a, b) in f1.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn feature_vector_shape_and_content() {
        let renders = rebuffer_series();
        let f = P1203Like::features(&renders[1]);
        assert_eq!(f.len(), 10);
        assert_eq!(f[3], 1.0); // one stall event
        assert!((f[4] - 1.0).abs() < 1e-9); // totaling 1 second
        assert!(f[0] > 0.0 && f[0] <= 1.0);
    }

    #[test]
    fn fit_is_deterministic() {
        let renders = rebuffer_series();
        let labels = labels_from_stall_count(&renders);
        let a = P1203Like::fit(&renders, &labels, 7).unwrap();
        let b = P1203Like::fit(&renders, &labels, 7).unwrap();
        assert_eq!(
            a.predict(&renders[2]).unwrap(),
            b.predict(&renders[2]).unwrap()
        );
    }

    #[test]
    fn fit_validates_input() {
        assert!(P1203Like::fit(&[], &[], 0).is_err());
        let renders = rebuffer_series();
        assert!(P1203Like::fit(&renders, &vec![2.0; renders.len()], 0).is_err());
    }

    #[test]
    fn predictions_stay_normalized() {
        let renders = rebuffer_series();
        let labels = labels_from_stall_count(&renders);
        let model = P1203Like::fit(&renders, &labels, 1).unwrap();
        for r in &renders {
            let p = model.predict(r).unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
