//! Warm-vs-cold parity: the cross-chunk warm-start carry must never
//! change a result bit.
//!
//! The MPC family (Fugu, SENSEI-Fugu with and without the pause action,
//! and both oracle variants) seeds each chunk step's branch-and-bound
//! incumbent with the shifted suffix of the previous step's winning
//! plan. Because the seed is scored with the search's own exact leaf
//! arithmetic, a warm search must be indistinguishable from a cold one
//! (`with_warm_start(false)`, the fresh-per-step reference) — same
//! `Decision` at every chunk, same rendered session, bit for bit. These
//! tests pin that contract across full sessions, manual `decide` sweeps
//! with mid-session `rebind`s, and the telemetry that proves the warm
//! path actually engaged.

use sensei_abr::{Fugu, OracleMpc, SenseiFugu};
use sensei_sim::{simulate, AbrPolicy, Decision, PlayerConfig, PlayerState, SessionContext};
use sensei_telemetry::{self as telemetry, Counter};
use sensei_trace::ThroughputTrace;
use sensei_video::content::{Genre, SceneKind, SceneSpec};
use sensei_video::{BitrateLadder, EncodedVideo, SensitivityWeights, SourceVideo};

/// A 20-chunk sports-like video with a key moment in the second half
/// (mirrors the crate's internal test fixture).
fn source() -> SourceVideo {
    SourceVideo::from_script(
        "warm-parity",
        Genre::Sports,
        &[
            SceneSpec::new(SceneKind::NormalPlay, 8),
            SceneSpec::new(SceneKind::Scenic, 4),
            SceneSpec::new(SceneKind::KeyMoment, 4),
            SceneSpec::new(SceneKind::NormalPlay, 4),
        ],
        55,
    )
    .unwrap()
}

fn encoded(src: &SourceVideo) -> EncodedVideo {
    EncodedVideo::encode(src, &BitrateLadder::default_paper(), 5)
}

/// Exact small-index → f64 conversion (chunk indices stay far below 2^32).
fn fl(i: usize) -> f64 {
    f64::from(u32::try_from(i).expect("small index"))
}

/// The trace mix the sessions run over: a constant link plus shaped
/// variable traces that force level changes (and SENSEI pauses).
fn traces() -> Vec<ThroughputTrace> {
    let mut out = vec![ThroughputTrace::constant("steady", 2500.0, 600.0).unwrap()];
    for seed in 0..3 {
        out.push(sensei_trace::generate::fcc_like(1500.0, 600, seed));
    }
    out.push(sensei_trace::generate::hsdpa_like(1200.0, 600, 7));
    out
}

/// Bitwise session equality: chosen levels plus every float surface of
/// the rendered result.
fn assert_sessions_identical(
    warm: &sensei_sim::SessionResult,
    cold: &sensei_sim::SessionResult,
    label: &str,
) {
    assert_eq!(warm.levels, cold.levels, "{label}: levels diverged");
    assert_eq!(
        warm.wall_time_s.to_bits(),
        cold.wall_time_s.to_bits(),
        "{label}: wall time diverged"
    );
    assert_eq!(
        warm.bits_downloaded.to_bits(),
        cold.bits_downloaded.to_bits(),
        "{label}: bits downloaded diverged"
    );
    assert_eq!(
        warm.render.total_rebuffer_s().to_bits(),
        cold.render.total_rebuffer_s().to_bits(),
        "{label}: rebuffer diverged"
    );
    assert_eq!(
        warm.render.avg_bitrate_kbps().to_bits(),
        cold.render.avg_bitrate_kbps().to_bits(),
        "{label}: avg bitrate diverged"
    );
    assert_eq!(
        warm.render.switch_magnitude().to_bits(),
        cold.render.switch_magnitude().to_bits(),
        "{label}: switch magnitude diverged"
    );
    for (i, (w, c)) in warm
        .render
        .chunks()
        .iter()
        .zip(cold.render.chunks())
        .enumerate()
    {
        assert_eq!(
            w.rebuffer_s.to_bits(),
            c.rebuffer_s.to_bits(),
            "{label}: chunk {i} rebuffer diverged"
        );
        assert_eq!(
            w.intentional_rebuffer_s.to_bits(),
            c.intentional_rebuffer_s.to_bits(),
            "{label}: chunk {i} intentional pause diverged"
        );
    }
}

#[test]
fn fugu_sessions_match_cold_bit_for_bit() {
    let src = source();
    let enc = encoded(&src);
    let config = PlayerConfig::default();
    // ONE warm instance reused across every trace (the fleet-runtime
    // shape: reset between sessions, carry within each session) vs a
    // fresh cold instance per session.
    let mut warm = Fugu::new();
    for trace in &traces() {
        let w = simulate(&src, &enc, trace, &mut warm, &config, None).unwrap();
        let mut cold = Fugu::new().with_warm_start(false);
        let c = simulate(&src, &enc, trace, &mut cold, &config, None).unwrap();
        assert_sessions_identical(&w, &c, &format!("Fugu on {}", trace.name()));
    }
}

#[test]
fn sensei_fugu_sessions_match_cold_bit_for_bit() {
    let src = source();
    let enc = encoded(&src);
    let config = PlayerConfig::default();
    let weights = SensitivityWeights::ground_truth(&src);
    let mut warm = SenseiFugu::new();
    let mut warm_no_pause = SenseiFugu::without_pause_action();
    for trace in &traces() {
        // With the pause action: the warm carry must survive the
        // pause-candidate loop (seed applies under every candidate's
        // search via the winner plan commit).
        let w = simulate(&src, &enc, trace, &mut warm, &config, Some(&weights)).unwrap();
        let mut cold = SenseiFugu::new().with_warm_start(false);
        let c = simulate(&src, &enc, trace, &mut cold, &config, Some(&weights)).unwrap();
        assert_sessions_identical(&w, &c, &format!("SenseiFugu on {}", trace.name()));

        // The no-pause ablation is a distinct decide path.
        let w2 = simulate(
            &src,
            &enc,
            trace,
            &mut warm_no_pause,
            &config,
            Some(&weights),
        )
        .unwrap();
        let mut cold2 = SenseiFugu::without_pause_action().with_warm_start(false);
        let c2 = simulate(&src, &enc, trace, &mut cold2, &config, Some(&weights)).unwrap();
        assert_sessions_identical(
            &w2,
            &c2,
            &format!("SenseiFugu(no-pause) on {}", trace.name()),
        );
    }
}

#[test]
fn oracle_sessions_match_cold_bit_for_bit_across_rebinds() {
    let src = source();
    let enc = encoded(&src);
    let config = PlayerConfig::default();
    let all = traces();
    // One long-lived aware instance rebound across traces (the session
    // runtime's reuse pattern) vs fresh cold per trace; same for the
    // unaware ablation.
    let mut warm_aware = OracleMpc::aware(&all[0]);
    let mut warm_unaware = OracleMpc::unaware(&all[0]);
    for trace in &all {
        warm_aware.rebind(trace);
        let w = simulate(&src, &enc, trace, &mut warm_aware, &config, None).unwrap();
        let mut cold = OracleMpc::aware(trace).with_warm_start(false);
        let c = simulate(&src, &enc, trace, &mut cold, &config, None).unwrap();
        assert_sessions_identical(&w, &c, &format!("OracleMpc(aware) on {}", trace.name()));

        warm_unaware.rebind(trace);
        let w2 = simulate(&src, &enc, trace, &mut warm_unaware, &config, None).unwrap();
        let mut cold2 = OracleMpc::unaware(trace).with_warm_start(false);
        let c2 = simulate(&src, &enc, trace, &mut cold2, &config, None).unwrap();
        assert_sessions_identical(&w2, &c2, &format!("OracleMpc(unaware) on {}", trace.name()));
    }
}

/// Drives warm and cold instances through the same hand-built state
/// sweep — consecutive chunk steps with a rolling throughput history,
/// a `rebind` to a different trace mid-sweep, and a `reset` later —
/// asserting every `Decision` matches bit for bit.
fn assert_decide_sweep_matches(
    warm: &mut dyn AbrPolicy,
    cold: &mut dyn AbrPolicy,
    ctx: &SessionContext<'_>,
    traces: &[ThroughputTrace],
    label: &str,
) {
    let n = ctx.num_chunks();
    let mut hist = vec![1400.0, 900.0, 1700.0];
    let mut dts = vec![1.1, 1.9, 0.8];
    let mut last_level = None;
    warm.reset();
    cold.reset();
    warm.rebind(&traces[0]);
    cold.rebind(&traces[0]);
    for chunk in 0..n {
        if chunk == n / 2 {
            // Mid-session rebind: any carried incumbent is now stale;
            // both sides must invalidate identically.
            warm.rebind(&traces[1]);
            cold.rebind(&traces[1]);
        }
        if chunk == (3 * n) / 4 {
            // Mid-sweep reset: the session-boundary hygiene path.
            warm.reset();
            cold.reset();
        }
        let state = PlayerState {
            next_chunk: chunk,
            buffer_s: 2.0 + 1.5 * fl(chunk % 7),
            last_level,
            throughput_history_kbps: &hist,
            download_time_history_s: &dts,
            elapsed_s: 4.0 * fl(chunk),
            playing: chunk > 0,
        };
        let w: Decision = warm.decide(&state, ctx);
        let c: Decision = cold.decide(&state, ctx);
        assert_eq!(w.level, c.level, "{label}: level diverged at chunk {chunk}");
        assert_eq!(
            w.pause_s.to_bits(),
            c.pause_s.to_bits(),
            "{label}: pause diverged at chunk {chunk}"
        );
        last_level = Some(w.level);
        // Roll the history so consecutive steps see evolving estimates.
        hist.push(800.0 + 350.0 * fl(chunk % 5));
        dts.push(0.6 + 0.2 * fl(chunk % 3));
        if hist.len() > 6 {
            hist.remove(0);
            dts.remove(0);
        }
    }
}

#[test]
fn decide_sweeps_with_mid_session_rebinds_match_cold() {
    let src = source();
    let enc = encoded(&src);
    let weights = SensitivityWeights::ground_truth(&src);
    let all = traces();
    let plain_ctx = SessionContext {
        encoded: &enc,
        vq: enc.vq_table(),
        weights: None,
        chunk_duration_s: src.chunk_duration_s(),
    };
    let weighted_ctx = SessionContext {
        encoded: &enc,
        vq: enc.vq_table(),
        weights: Some(&weights),
        chunk_duration_s: src.chunk_duration_s(),
    };
    assert_decide_sweep_matches(
        &mut Fugu::new(),
        &mut Fugu::new().with_warm_start(false),
        &plain_ctx,
        &all,
        "Fugu",
    );
    assert_decide_sweep_matches(
        &mut SenseiFugu::new(),
        &mut SenseiFugu::new().with_warm_start(false),
        &weighted_ctx,
        &all,
        "SenseiFugu",
    );
    assert_decide_sweep_matches(
        &mut SenseiFugu::without_pause_action(),
        &mut SenseiFugu::without_pause_action().with_warm_start(false),
        &weighted_ctx,
        &all,
        "SenseiFugu(no-pause)",
    );
    assert_decide_sweep_matches(
        &mut OracleMpc::aware(&all[0]),
        &mut OracleMpc::aware(&all[0]).with_warm_start(false),
        &plain_ctx,
        &all,
        "OracleMpc(aware)",
    );
    assert_decide_sweep_matches(
        &mut OracleMpc::unaware(&all[0]),
        &mut OracleMpc::unaware(&all[0]).with_warm_start(false),
        &plain_ctx,
        &all,
        "OracleMpc(unaware)",
    );
}

/// The parity above is only meaningful if the warm path actually runs:
/// a warm session must report warm-start hits (one per seeded decision)
/// and fewer-or-equal visited nodes; a cold session must report none.
#[test]
fn warm_sessions_report_hits_and_cold_sessions_none() {
    let src = source();
    let enc = encoded(&src);
    let config = PlayerConfig::default();
    let trace = sensei_trace::generate::fcc_like(1500.0, 600, 1);

    telemetry::begin();
    let _ = simulate(&src, &enc, &trace, &mut Fugu::new(), &config, None).unwrap();
    let warm_shard = telemetry::end();

    telemetry::begin();
    let _ = simulate(
        &src,
        &enc,
        &trace,
        &mut Fugu::new().with_warm_start(false),
        &config,
        None,
    )
    .unwrap();
    let cold_shard = telemetry::end();

    let warm_hits = warm_shard.counter(Counter::WarmStartHits);
    // Every decision after the first in a 20-chunk session is seedable.
    assert!(
        warm_hits >= (src.num_chunks() - 1) as u64,
        "warm session reported only {warm_hits} warm-start hits"
    );
    assert_eq!(
        cold_shard.counter(Counter::WarmStartHits),
        0,
        "cold session must not seed"
    );
    let warm_work = warm_shard.counter(Counter::PlanNodes);
    let cold_work = cold_shard.counter(Counter::PlanNodes);
    assert!(
        warm_work <= cold_work,
        "seeding must not visit more nodes: warm {warm_work} vs cold {cold_work}"
    );
    // The seeded incumbent must actually prune: some prunes fire before
    // any leaf improves on the seed.
    assert!(
        warm_shard.counter(Counter::SeededPrunes) > 0,
        "no prunes attributable to the seed"
    );
}
