//! Throughput prediction with discrete error scenarios.
//!
//! Fugu's objective (Eq. 3) sums over "any throughput variation γ (with
//! predicted probability p(γ))". We model the predictor the way the robust
//! MPC literature does: a harmonic-mean point estimate over the last few
//! chunk downloads, hedged with a small set of multiplicative scenarios —
//! one pessimistic, one nominal, one optimistic.

use sensei_sim::PlayerState;

/// One throughput scenario: `p(γ)` and the multiplier γ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputScenario {
    /// Scenario probability.
    pub probability: f64,
    /// Multiplier applied to the point estimate.
    pub factor: f64,
}

/// Harmonic-mean predictor with scenario hedging.
#[derive(Debug, Clone)]
pub struct ThroughputPredictor {
    /// Number of past samples in the harmonic mean.
    pub window: usize,
    /// The scenario set (probabilities must sum to 1).
    pub scenarios: Vec<ThroughputScenario>,
    /// Estimate used before any history exists, kbps.
    pub cold_start_kbps: f64,
}

impl Default for ThroughputPredictor {
    fn default() -> Self {
        Self {
            window: 5,
            // Hedged low, but not so low that the expected scenario rate
            // sits a full ladder level under the harmonic mean: the stall
            // risk-aversion multiplier already charges under-buffering, so
            // an expectation factor near 0.9 keeps the MPC competitive with
            // buffer-based control on fade-prone cellular traces while the
            // pessimistic scenario still hedges deep fades.
            scenarios: vec![
                ThroughputScenario {
                    probability: 0.3,
                    factor: 0.65,
                },
                ThroughputScenario {
                    probability: 0.5,
                    factor: 0.95,
                },
                ThroughputScenario {
                    probability: 0.2,
                    factor: 1.15,
                },
            ],
            cold_start_kbps: 1000.0,
        }
    }
}

impl ThroughputPredictor {
    /// Point estimate in kbps for the next chunk.
    pub fn predict_kbps(&self, state: &PlayerState<'_>) -> f64 {
        state
            .harmonic_mean_throughput(self.window)
            .unwrap_or(self.cold_start_kbps)
    }

    /// The scenario set as `(probability, kbps)` pairs.
    pub fn scenario_rates(&self, state: &PlayerState<'_>) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        self.scenario_rates_into(state, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::scenario_rates`]: fills `out`
    /// in place so MPC controllers can keep one rates buffer per policy
    /// instance instead of allocating a `Vec` per decision. The scenario
    /// `(probability, factor)` pairs are per-policy constants; only the
    /// harmonic-mean point estimate is per-decision.
    pub fn scenario_rates_into(&self, state: &PlayerState<'_>, out: &mut Vec<(f64, f64)>) {
        let point = self.predict_kbps(state);
        out.clear();
        out.extend(
            self.scenarios
                .iter()
                .map(|s| (s.probability, (point * s.factor).max(1.0))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with<'a>(history: &'a [f64], downloads: &'a [f64]) -> PlayerState<'a> {
        PlayerState {
            next_chunk: history.len(),
            buffer_s: 8.0,
            last_level: Some(2),
            download_time_history_s: downloads,
            throughput_history_kbps: history,
            elapsed_s: 10.0,
            playing: true,
        }
    }

    #[test]
    fn cold_start_uses_default() {
        let p = ThroughputPredictor::default();
        assert_eq!(p.predict_kbps(&state_with(&[], &[])), 1000.0);
    }

    #[test]
    fn prediction_tracks_recent_samples() {
        let p = ThroughputPredictor::default();
        let est = p.predict_kbps(&state_with(&[2000.0; 3], &[1.0; 3]));
        assert!((est - 2000.0).abs() < 1.0);
    }

    #[test]
    fn scenarios_bracket_the_estimate() {
        let p = ThroughputPredictor::default();
        let rates = p.scenario_rates(&state_with(&[2000.0; 5], &[1.0; 5]));
        assert_eq!(rates.len(), 3);
        let total_p: f64 = rates.iter().map(|r| r.0).sum();
        assert!((total_p - 1.0).abs() < 1e-12);
        assert!(rates[0].1 < 2000.0 && rates[2].1 > rates[1].1);
    }

    #[test]
    fn window_limits_lookback() {
        let p = ThroughputPredictor {
            window: 2,
            ..ThroughputPredictor::default()
        };
        // Ancient high samples must not leak in.
        let est = p.predict_kbps(&state_with(&[50_000.0, 50_000.0, 500.0, 500.0], &[1.0; 4]));
        assert!((est - 500.0).abs() < 1.0, "est = {est}");
    }
}
