//! Idealistic offline controllers for the §2.4 potential-gains experiment.
//!
//! The paper's Fig. 6 compares "two simple ABR algorithms whose only
//! difference is the QoE model they explicitly optimize", both given the
//! *entire throughput trace in advance* to eliminate prediction error. The
//! paper solves a full-trace bitrate assignment; we approximate it with a
//! receding-horizon controller that integrates the *exact* future
//! throughput (no scenarios, no estimation) — documented in DESIGN.md as a
//! substitution. The sensitivity-aware variant weights chunk quality and
//! may schedule intentional rebuffering; the unaware variant optimizes the
//! same objective with uniform weights.

use sensei_qoe::Ksqi;
use sensei_sim::{AbrPolicy, Decision, PlayerState, SessionContext};
use sensei_trace::{CumulativeTrace, ThroughputTrace};

/// Oracle-throughput receding-horizon controller.
#[derive(Debug, Clone)]
pub struct OracleMpc {
    cum: CumulativeTrace,
    qoe: Ksqi,
    horizon: usize,
    rtt_s: f64,
    max_buffer_s: f64,
    /// Whether the controller may schedule intentional rebuffering.
    allow_pause: bool,
    /// Whether the controller uses the manifest's sensitivity weights.
    sensitivity_aware: bool,
    /// Multiplier on stall time during planning. Even with exact future
    /// throughput, planning risk-neutrally against a mean-additive model
    /// trades "cheap" stalls for bitrate that peak-end raters punish —
    /// the same miscalibration [`crate::Fugu`] corrects.
    risk_aversion: f64,
    name: String,
}

impl OracleMpc {
    /// The §2.4 *dynamic-sensitivity-aware* idealistic ABR.
    pub fn aware(trace: &ThroughputTrace) -> Self {
        Self {
            cum: CumulativeTrace::new(trace),
            qoe: Ksqi::canonical(),
            horizon: 6,
            rtt_s: 0.08,
            max_buffer_s: 24.0,
            allow_pause: true,
            sensitivity_aware: true,
            risk_aversion: 3.0,
            name: "Oracle(aware)".to_string(),
        }
    }

    /// The §2.4 *dynamic-sensitivity-unaware* idealistic ABR (optimizes
    /// plain KSQI).
    pub fn unaware(trace: &ThroughputTrace) -> Self {
        Self {
            allow_pause: false,
            sensitivity_aware: false,
            name: "Oracle(unaware)".to_string(),
            ..Self::aware(trace)
        }
    }

    /// Depth-first enumeration of every length-`h` plan under one pause
    /// candidate, with exact-throughput walks shared across plan
    /// prefixes — the oracle-side counterpart of [`crate::Fugu`]'s
    /// prefix-sharing search (leaves visited in the flat enumeration's
    /// lexicographic order, per-chunk arithmetic in the same sequence, so
    /// scores and tie-breaks are bit-identical to scoring each plan from
    /// scratch). Updates `(best_q, best)` in place.
    #[allow(clippy::too_many_arguments)]
    fn search_plans(
        &self,
        depth: usize,
        h: usize,
        stack: &mut [OracleWalk],
        pause: f64,
        pause_cost: f64,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: &[f64],
        best_q: &mut f64,
        best: &mut Decision,
        plan0: usize,
    ) {
        let d = ctx.chunk_duration_s;
        let n_levels = ctx.num_levels();
        let chunk = state.next_chunk + depth;
        for level in 0..n_levels {
            let plan0 = if depth == 0 { level } else { plan0 };
            let parent = stack[depth];
            let size = ctx
                .encoded
                .size_bits(chunk, level)
                .expect("plan stays in range");
            let dt = self.rtt_s + self.cum.download_time(parent.t + self.rtt_s, size);
            let stall = (dt - parent.buf).max(0.0);
            let mut buf = (parent.buf - dt).max(0.0) + d;
            buf = buf.min(self.max_buffer_s);
            let vq = ctx.vq[chunk][level];
            let switch = match parent.prev {
                Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                _ => 0.0,
            };
            stack[depth + 1] = OracleWalk {
                t: parent.t + dt,
                buf,
                prev: Some((vq, level)),
                total: parent.total
                    + weights[depth]
                        * self
                            .qoe
                            .chunk_quality(vq, stall * self.risk_aversion, switch, d),
            };
            if depth + 1 == h {
                let q = stack[depth + 1].total - pause_cost;
                if q > *best_q {
                    *best_q = q;
                    *best = Decision {
                        level: plan0,
                        pause_s: pause,
                    };
                }
            } else {
                self.search_plans(
                    depth + 1,
                    h,
                    stack,
                    pause,
                    pause_cost,
                    state,
                    ctx,
                    weights,
                    best_q,
                    best,
                    plan0,
                );
            }
        }
    }
}

/// Running state of one exact-throughput plan prefix: wall clock, buffer,
/// previous `(vq, level)`, and accumulated weighted quality.
#[derive(Debug, Clone, Copy)]
struct OracleWalk {
    t: f64,
    buf: f64,
    prev: Option<(f64, usize)>,
    total: f64,
}

impl AbrPolicy for OracleMpc {
    fn name(&self) -> &str {
        &self.name
    }

    /// Oracles are constructed around a specific trace, so reusing one
    /// instance across sessions requires re-indexing the new network. The
    /// cumulative index rebuilds into its existing buffers, keeping the
    /// per-session cost allocation-free.
    fn rebind(&mut self, trace: &ThroughputTrace) {
        self.cum.rebind(trace);
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        let remaining = ctx.num_chunks() - state.next_chunk;
        let h = self.horizon.min(remaining);
        if h == 0 {
            return Decision::level(0);
        }
        let weights: Vec<f64> = if self.sensitivity_aware {
            match ctx.weights {
                Some(w) => {
                    let mut v = w.window(state.next_chunk, h).to_vec();
                    v.resize(h, 1.0);
                    v
                }
                None => vec![1.0; h],
            }
        } else {
            vec![1.0; h]
        };
        let playhead_w = if self.sensitivity_aware {
            ctx.weights
                .map(|w| {
                    let buffered = (state.buffer_s / ctx.chunk_duration_s).ceil() as usize;
                    let playhead = state.next_chunk.saturating_sub(buffered);
                    w.get(playhead.min(w.len() - 1)).unwrap_or(1.0)
                })
                .unwrap_or(1.0)
        } else {
            1.0
        };
        let (_, stall_penalty, _, _) = self.qoe.coefficients();
        let pauses: &[f64] = if self.allow_pause && state.playing {
            &[0.0, 1.0, 2.0]
        } else {
            &[0.0]
        };

        let mut best = Decision::level(0);
        let mut best_q = f64::NEG_INFINITY;
        let prev = state
            .last_level
            .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
        let mut stack = vec![
            OracleWalk {
                t: 0.0,
                buf: 0.0,
                prev: None,
                total: 0.0,
            };
            h + 1
        ];
        for &pause in pauses {
            // Charged at the same risk multiplier the planner applies to
            // predicted stalls, so relocating a stall is never spuriously
            // profitable (mirrors SENSEI-Fugu's accounting).
            let pause_cost = playhead_w
                * stall_penalty
                * self.risk_aversion
                * (pause / ctx.chunk_duration_s).clamp(0.0, 1.0);
            stack[0] = OracleWalk {
                t: state.elapsed_s,
                buf: state.buffer_s + pause,
                prev,
                total: 0.0,
            };
            self.search_plans(
                0,
                h,
                &mut stack,
                pause,
                pause_cost,
                state,
                ctx,
                &weights,
                &mut best_q,
                &mut best,
                0,
            );
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_crowd::TrueQoe;
    use sensei_sim::{simulate, PlayerConfig};
    use sensei_video::SensitivityWeights;

    #[test]
    fn oracle_avoids_stalls_a_predictor_cannot_foresee() {
        // A trace with a deep fade: the oracle knows it is coming.
        let mut samples = vec![3000.0; 30];
        samples.extend(vec![300.0; 20]);
        samples.extend(vec![3000.0; 100]);
        let trace = ThroughputTrace::new("fade", 1.0, samples).unwrap();
        let src = source();
        let enc = encoded(&src);
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut OracleMpc::unaware(&trace),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(
            stalls < 1.0,
            "oracle stalled {stalls}s despite full knowledge"
        );
    }

    #[test]
    fn aware_beats_unaware_on_true_qoe_under_tight_bandwidth() {
        // The Fig. 6 claim, in miniature.
        let src = source();
        let enc = encoded(&src);
        let weights = SensitivityWeights::ground_truth(&src);
        let oracle = TrueQoe::default();
        let config = PlayerConfig::default();
        let mut aware_total = 0.0;
        let mut unaware_total = 0.0;
        for seed in 0..5 {
            let trace = sensei_trace::generate::hsdpa_like(1300.0, 600, 40 + seed);
            let a = simulate(
                &src,
                &enc,
                &trace,
                &mut OracleMpc::aware(&trace),
                &config,
                Some(&weights),
            )
            .unwrap();
            let u = simulate(
                &src,
                &enc,
                &trace,
                &mut OracleMpc::unaware(&trace),
                &config,
                None,
            )
            .unwrap();
            aware_total += oracle.qoe01(&src, &a.render).unwrap();
            unaware_total += oracle.qoe01(&src, &u.render).unwrap();
        }
        assert!(
            aware_total > unaware_total,
            "aware {aware_total:.3} vs unaware {unaware_total:.3}"
        );
    }

    #[test]
    fn unaware_never_pauses() {
        let src = source();
        let enc = encoded(&src);
        let trace = sensei_trace::generate::hsdpa_like(1300.0, 600, 9);
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut OracleMpc::unaware(&trace),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        let intentional: f64 = result
            .render
            .chunks()
            .iter()
            .map(|c| c.intentional_rebuffer_s)
            .sum();
        assert_eq!(intentional, 0.0);
    }
}
