//! Idealistic offline controllers for the §2.4 potential-gains experiment.
//!
//! The paper's Fig. 6 compares "two simple ABR algorithms whose only
//! difference is the QoE model they explicitly optimize", both given the
//! *entire throughput trace in advance* to eliminate prediction error. The
//! paper solves a full-trace bitrate assignment; we approximate it with a
//! receding-horizon controller that integrates the *exact* future
//! throughput (no scenarios, no estimation) — documented in DESIGN.md as a
//! substitution. The sensitivity-aware variant weights chunk quality and
//! may schedule intentional rebuffering; the unaware variant optimizes the
//! same objective with uniform weights.
//!
//! ## Planning cost, and where it goes
//!
//! The horizon enumeration is the fleet's throughput cliff: `levels^h`
//! leaves per decision, each leaf historically re-walking the trace. Five
//! structural moves cut it without changing one result bit (asserted
//! against a flat reference odometer in this module's tests):
//!
//! 1. **Prefix sharing** — plans enumerate as a depth-first tree, so a
//!    shared prefix is walked once (inherited from the earlier refactor).
//! 2. **Download-time memoization** — the trace walk's step
//!    `rtt + download_time(t + rtt, size)` is a pure function of
//!    `(t, chunk, level)` for a fixed trace, so results are cached in a
//!    per-instance table keyed by the *exact bits* of `t`. Pause
//!    candidates share the entire wall-clock tree (a pause shifts buffer,
//!    not wall clock), lanes of a tile replay the same network, and the
//!    chosen subtree recurs across chunk steps — all hits. A hit returns
//!    exactly what recomputation would, so caching is bit-invisible.
//! 3. **Exact branch-and-bound with guided order** — subtrees are
//!    explored most-promising-first and skipped when a floating-point-
//!    monotone no-stall upper bound shows they cannot change the
//!    decision. The winner update tracks exactly the tuple the flat
//!    reference returns — the maximum score, the earliest pause
//!    candidate attaining it, and the smallest first action within that
//!    candidate — so neither the visit order nor the pruning can move a
//!    result bit.
//! 4. **Cross-chunk warm starts** — the shifted suffix of step *t*'s
//!    winning plan is a feasible leaf of step *t+1*'s tree under the
//!    no-pause candidate (which always runs first). It is scored first
//!    with the exact walk arithmetic and seeds the incumbent, so the
//!    very first `descend` prunes against a near-optimal bound. Seeding
//!    is indistinguishable from the search having visited that leaf
//!    first: the tie rule (`==` wins only inside the best's own pause
//!    candidate with a smaller first action) still steers every tie to
//!    the reference winner.
//! 5. **Block leaf scoring** — the `n_levels` sibling leaves under one
//!    parent share the entire walk prefix, so their download times are
//!    prefetched in one memo pass and their scores computed in one
//!    straight-line loop, each element exactly one reference walk step,
//!    consumed in the unchanged visit order.

// sensei-lint: allow(no-unordered-iteration) — the memo below is keyed lookups only, never iterated
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

use crate::WarmSlot;
use sensei_qoe::Ksqi;
use sensei_sim::{AbrPolicy, BatchStates, Decision, PlayerState, SessionContext};
use sensei_telemetry as telemetry;
use sensei_trace::{CumulativeTrace, ThroughputTrace};

/// Memo entries above this count trigger a wholesale clear (the table is a
/// pure cache, so clearing at any point is bit-invisible). Sized so one
/// decision's worst-case key set (~`levels^h` wall-clock nodes) fits with
/// two orders of magnitude to spare.
const MEMO_CAP: usize = 1 << 18;

/// Download-time memo: `(t.to_bits(), chunk·256 + level) → dt`.
///
/// A `HashMap` is sound here because the memo is only ever probed by
/// key (`get`/`insert`/`clear`): iteration order can never reach a
/// result bit, and the FxHash probe is ~2× cheaper than an ordered map
/// on this hot path.
// sensei-lint: allow(no-unordered-iteration) — pure get/insert/clear cache; iteration order unobservable
type DtMemo = HashMap<(u64, u64), f64, FxBuildHasher>;

/// A tiny multiply-xor hasher for the memo's integer keys. `SipHash`'s
/// DoS resistance buys nothing against our own plan enumeration and costs
/// ~2× on the hot path; no external crates, so hand-rolled.
#[derive(Debug, Clone, Copy, Default)]
struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// See [`FxBuildHasher`].
#[derive(Debug)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = self.0.rotate_left(26);
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }
}

/// Reusable planning scratch: allocated once per policy instance and
/// recycled across decisions, lanes, and (for the memo) whole batches.
#[derive(Debug, Clone, Default)]
struct OracleScratch {
    /// `h + 1` rows of running walk state, indexed by depth.
    stack: Vec<OracleWalk>,
    /// The horizon's chunk weights (uniform for the unaware variant).
    weights: Vec<f64>,
    /// `sizes[depth·L + level]`: chunk size in bits.
    sizes: Vec<f64>,
    /// `vqs[depth·L + level]`: visual quality.
    vqs: Vec<f64>,
    /// `umax[depth]`: no-stall upper bound on the weighted quality any
    /// level can contribute at `depth`, maximized over every (previous
    /// level, level) pair — switch penalty included (branch-and-bound).
    umax: Vec<f64>,
    /// `ufirst[depth·L + lprev]`: the same bound conditioned on the
    /// *actual* previous level `lprev`, used for the first remaining step
    /// of a node (whose last chosen level the search knows).
    ufirst: Vec<f64>,
    /// Whether the bound in `umax` is floating-point monotone (all
    /// weights and QoE penalties nonnegative); pruning is disabled
    /// otherwise.
    prunable: bool,
    /// `ord[depth·L + k]`: the levels of `depth` in descending no-stall
    /// score order — the exploration order of the pruned search. Any
    /// order yields identical results (see [`OracleSearch::descend`]);
    /// leading with the bound's own argmax makes a feasible no-stall
    /// plan prune everything else near the root.
    ord: Vec<usize>,
    /// Per-level score accumulator used to build `ord`.
    scores: Vec<f64>,
    /// The download-time memo (see module docs).
    memo: DtMemo,
    /// The DFS path (one level per depth) above the current node.
    cur_plan: Vec<usize>,
    /// The full winning plan of the last search — the next chunk step's
    /// warm-start seed.
    best_plan: Vec<usize>,
    /// Warm-start seed scratch (shifted suffix of the previous plan).
    seed: Vec<usize>,
    /// Per-level download times of one sibling-leaf block.
    dts: Vec<f64>,
    /// `leaf_q[level]`: each sibling leaf's score at the last depth,
    /// produced by the block scorer and consumed in visit order.
    leaf_q: Vec<f64>,
}

/// Oracle-throughput receding-horizon controller.
#[derive(Debug, Clone)]
pub struct OracleMpc {
    cum: CumulativeTrace,
    qoe: Ksqi,
    horizon: usize,
    rtt_s: f64,
    max_buffer_s: f64,
    /// Whether the controller may schedule intentional rebuffering.
    allow_pause: bool,
    /// Whether the controller uses the manifest's sensitivity weights.
    sensitivity_aware: bool,
    /// Multiplier on stall time during planning. Even with exact future
    /// throughput, planning risk-neutrally against a mean-additive model
    /// trades "cheap" stalls for bitrate that peak-end raters punish —
    /// the same miscalibration [`crate::Fugu`] corrects.
    risk_aversion: f64,
    name: String,
    scratch: OracleScratch,
    /// Cross-chunk warm-start carry for the scalar lifecycle (the batched
    /// path swaps per-lane slots through here).
    warm: WarmSlot,
    /// Per-lane warm-start carries for [`AbrPolicy::select_batch`].
    lane_warm: Vec<WarmSlot>,
    /// When false, searches never seed from or commit to the carry slots
    /// — the warm-vs-cold parity suite's reference mode.
    warm_start_enabled: bool,
}

impl OracleMpc {
    /// The §2.4 *dynamic-sensitivity-aware* idealistic ABR.
    pub fn aware(trace: &ThroughputTrace) -> Self {
        Self {
            cum: CumulativeTrace::new(trace),
            qoe: Ksqi::canonical(),
            horizon: 6,
            rtt_s: 0.08,
            max_buffer_s: 24.0,
            allow_pause: true,
            sensitivity_aware: true,
            risk_aversion: 3.0,
            name: "Oracle(aware)".to_string(),
            scratch: OracleScratch::default(),
            warm: WarmSlot::default(),
            lane_warm: Vec::new(),
            warm_start_enabled: true,
        }
    }

    /// Toggles the cross-chunk warm start (on by default). Disabling it
    /// forces every search to start cold — bit-identical results, more
    /// nodes — which is the warm-vs-cold parity suite's reference.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm_start_enabled = enabled;
        if !enabled {
            self.warm.invalidate();
            self.lane_warm.clear();
        }
        self
    }

    /// The §2.4 *dynamic-sensitivity-unaware* idealistic ABR (optimizes
    /// plain KSQI).
    pub fn unaware(trace: &ThroughputTrace) -> Self {
        Self {
            allow_pause: false,
            sensitivity_aware: false,
            name: "Oracle(unaware)".to_string(),
            ..Self::aware(trace)
        }
    }

    /// Fills every per-decision table that depends only on the chunk
    /// position — the horizon's weight window, the per-(depth, level)
    /// size/vq manifest lookups, and the branch-and-bound quality caps.
    /// All lanes of a batch sit at the same chunk step, so the batched
    /// entry point runs this once per chunk instead of once per lane.
    /// Returns the effective horizon (0 at the video end).
    fn prepare(&mut self, next_chunk: usize, ctx: &SessionContext<'_>) -> usize {
        let remaining = ctx.num_chunks() - next_chunk;
        let h = self.horizon.min(remaining);
        if h == 0 {
            return 0;
        }
        if self.scratch.memo.len() > MEMO_CAP {
            self.scratch.memo.clear();
        }
        let weights = &mut self.scratch.weights;
        weights.clear();
        if self.sensitivity_aware {
            if let Some(w) = ctx.weights {
                weights.extend_from_slice(w.window(next_chunk, h));
            }
        }
        weights.resize(h, 1.0);
        let n_levels = ctx.num_levels();
        self.scratch.sizes.clear();
        self.scratch.vqs.clear();
        for depth in 0..h {
            let chunk = next_chunk + depth;
            for level in 0..n_levels {
                self.scratch.sizes.push(
                    ctx.encoded
                        .size_bits(chunk, level)
                        .expect("plan stays in range"),
                );
                self.scratch.vqs.push(ctx.vq[chunk][level]);
            }
        }
        // The bound is sound only when every bound step is FP-monotone:
        // nonnegative weights and nonnegative stall/switch penalties.
        // A fitted KSQI could in principle have negative penalties, in
        // which case pruning is simply disabled (full enumeration).
        let (_, b, c, _) = self.qoe.coefficients();
        self.scratch.prunable = b >= 0.0 && c >= 0.0 && weights.iter().all(|&w| w >= 0.0);
        self.scratch.umax.clear();
        self.scratch.ufirst.clear();
        self.scratch.ord.clear();
        if self.scratch.prunable {
            let d = ctx.chunk_duration_s;
            let OracleScratch {
                weights,
                vqs,
                umax,
                ufirst,
                ord,
                scores,
                ..
            } = &mut self.scratch;
            for depth in 0..h {
                scores.clear();
                for level in 0..n_levels {
                    // No stall, no switch: with nonnegative penalties this
                    // dominates the quality any walk can realize here.
                    let q = self
                        .qoe
                        .chunk_quality(vqs[depth * n_levels + level], 0.0, 0.0, d);
                    scores.push(weights[depth] * q);
                }
                // Guided order: highest no-stall score first. Purely a
                // search-speed heuristic — the update rule in `descend`
                // makes the search result order-invariant.
                let base = ord.len();
                ord.extend(0..n_levels);
                ord[base..].sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(core::cmp::Ordering::Equal)
                });
            }
            // Switch-aware per-depth bounds (no stall term — the oracle's
            // download times depend on the wall clock, which the bound
            // cannot know). `ufirst` conditions the first remaining step
            // on the node's actual previous level so its switch penalty is
            // the exact one the walk charges; `umax` relaxes deeper steps
            // over every (previous level, level) pair. `chunk_quality` is
            // FP-monotone in the switch penalty, so every entry dominates
            // the walk's corresponding per-step term as floating point.
            // Depth 0 rows stay at the placeholder (the bound is only
            // evaluated at depth ≥ 1).
            ufirst.resize(h * n_levels, 0.0);
            umax.resize(h, 0.0);
            for depth in 1..h {
                let mut overall = f64::NEG_INFINITY;
                for lprev in 0..n_levels {
                    let pvq = vqs[(depth - 1) * n_levels + lprev];
                    let mut best = f64::NEG_INFINITY;
                    for level in 0..n_levels {
                        let vq = vqs[depth * n_levels + level];
                        let switch = if level != lprev {
                            (vq - pvq).abs()
                        } else {
                            0.0
                        };
                        let term = weights[depth] * self.qoe.chunk_quality(vq, 0.0, switch, d);
                        if term > best {
                            best = term;
                        }
                    }
                    ufirst[depth * n_levels + lprev] = best;
                    if best > overall {
                        overall = best;
                    }
                }
                umax[depth] = overall;
            }
        }
        h
    }

    /// The per-lane decision, assuming [`Self::prepare`] has run for
    /// `(state.next_chunk, h)`.
    fn decide_prepared(
        &mut self,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        h: usize,
    ) -> Decision {
        let playhead_w = if self.sensitivity_aware {
            ctx.weights
                .map(|w| {
                    let buffered = (state.buffer_s / ctx.chunk_duration_s).ceil() as usize;
                    let playhead = state.next_chunk.saturating_sub(buffered);
                    w.get(playhead.min(w.len() - 1)).unwrap_or(1.0)
                })
                .unwrap_or(1.0)
        } else {
            1.0
        };
        let (_, stall_penalty, _, _) = self.qoe.coefficients();
        let pauses: &[f64] = if self.allow_pause && state.playing {
            &[0.0, 1.0, 2.0]
        } else {
            &[0.0]
        };
        let prev = state
            .last_level
            .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
        let n_levels = ctx.num_levels();
        // Warm start: the shifted suffix of the previous chunk step's
        // winning plan, when this search is its immediate successor. The
        // seed is scored below with the exact walk arithmetic under the
        // no-pause candidate, so seeding is result-invariant (module
        // docs, optimization 4).
        let seeded = self.warm_start_enabled
            && self
                .warm
                .seed_into(state.next_chunk, h, n_levels, &mut self.scratch.seed);
        let OracleScratch {
            stack,
            weights,
            sizes,
            vqs,
            umax,
            ufirst,
            prunable,
            ord,
            scores: _,
            memo,
            cur_plan,
            best_plan,
            seed,
            dts,
            leaf_q,
        } = &mut self.scratch;
        stack.clear();
        stack.resize(
            h + 1,
            OracleWalk {
                t: 0.0,
                buf: 0.0,
                prev: None,
                total: 0.0,
            },
        );
        cur_plan.clear();
        cur_plan.resize(h, 0);
        best_plan.clear();
        dts.clear();
        dts.resize(n_levels, 0.0);
        leaf_q.clear();
        leaf_q.resize(n_levels, 0.0);
        let mut search = OracleSearch {
            cum: &self.cum,
            qoe: &self.qoe,
            rtt_s: self.rtt_s,
            max_buffer_s: self.max_buffer_s,
            risk_aversion: self.risk_aversion,
            d: ctx.chunk_duration_s,
            next_chunk: state.next_chunk,
            h,
            n_levels: ctx.num_levels(),
            weights,
            sizes,
            vqs,
            umax,
            ufirst,
            ord,
            prunable: *prunable,
            stack,
            memo,
            cur_plan,
            best_plan,
            dts,
            leaf_q,
            seeded,
            improved: false,
            seeded_prunes: 0,
            pause: 0.0,
            pause_cost: 0.0,
            pause_idx: 0,
            best_pause_idx: 0,
            best_q: f64::NEG_INFINITY,
            best: Decision::level(0),
            nodes: 0,
            pruned: 0,
            memo_lookups: 0,
            memo_hits: 0,
        };
        for (pause_idx, &pause) in pauses.iter().enumerate() {
            // Charged at the same risk multiplier the planner applies to
            // predicted stalls, so relocating a stall is never spuriously
            // profitable (mirrors SENSEI-Fugu's accounting).
            search.pause = pause;
            search.pause_idx = pause_idx;
            search.pause_cost = playhead_w
                * stall_penalty
                * self.risk_aversion
                * (pause / ctx.chunk_duration_s).clamp(0.0, 1.0);
            search.stack[0] = OracleWalk {
                t: state.elapsed_s,
                buf: state.buffer_s + pause,
                prev,
                total: 0.0,
            };
            if pause_idx == 0 && seeded {
                // Score the seed leaf exactly under the no-pause
                // candidate (which always runs, and runs first): the
                // same walk steps and final pause-cost subtraction the
                // tree search performs for any leaf, so the seeded
                // incumbent is indistinguishable from the search having
                // visited that leaf first.
                for (depth, &level) in seed.iter().enumerate() {
                    search.nodes += 1;
                    search.step(depth, level);
                }
                let q = search.stack[h].total - search.pause_cost;
                search.best_q = q;
                search.best_pause_idx = 0;
                search.best = Decision {
                    level: seed[0],
                    pause_s: pause,
                };
                search.best_plan.clear();
                search.best_plan.extend_from_slice(seed);
            }
            search.descend(0, 0);
        }
        telemetry::count(telemetry::Counter::PlanNodes, search.nodes);
        telemetry::count(telemetry::Counter::PlanPrunes, search.pruned);
        telemetry::count(telemetry::Counter::DtMemoLookups, search.memo_lookups);
        telemetry::count(telemetry::Counter::DtMemoHits, search.memo_hits);
        telemetry::count(telemetry::Counter::WarmStartHits, u64::from(seeded));
        telemetry::count(telemetry::Counter::SeededPrunes, search.seeded_prunes);
        let decision = search.best;
        if self.warm_start_enabled {
            self.warm.commit(state.next_chunk, &self.scratch.best_plan);
        }
        decision
    }
}

/// Running state of one exact-throughput plan prefix: wall clock, buffer,
/// previous `(vq, level)`, and accumulated weighted quality.
#[derive(Debug, Clone, Copy)]
struct OracleWalk {
    t: f64,
    buf: f64,
    prev: Option<(f64, usize)>,
    total: f64,
}

/// Depth-first enumeration of every length-`h` plan under one pause
/// candidate, with exact-throughput walks shared across plan prefixes —
/// the oracle-side counterpart of [`crate::Fugu`]'s prefix-sharing search.
/// Subtrees are visited in the guided `ord` order; the update and pruning
/// rules in [`Self::descend`] keep the decision bit-identical to scoring
/// each `(pause, plan)` pair from scratch in the flat reference order.
struct OracleSearch<'a> {
    cum: &'a CumulativeTrace,
    qoe: &'a Ksqi,
    rtt_s: f64,
    max_buffer_s: f64,
    risk_aversion: f64,
    d: f64,
    next_chunk: usize,
    h: usize,
    n_levels: usize,
    weights: &'a [f64],
    sizes: &'a [f64],
    vqs: &'a [f64],
    umax: &'a [f64],
    ufirst: &'a [f64],
    ord: &'a [usize],
    prunable: bool,
    stack: &'a mut [OracleWalk],
    memo: &'a mut DtMemo,
    /// The DFS path (one level per depth) above the current node.
    cur_plan: &'a mut Vec<usize>,
    /// The full winning plan — kept for the next step's warm start.
    best_plan: &'a mut Vec<usize>,
    /// Per-level download times of one sibling-leaf block.
    dts: &'a mut Vec<f64>,
    /// Each sibling leaf's score, by level (block leaf scoring).
    leaf_q: &'a mut Vec<f64>,
    /// Whether the incumbent was seeded from the previous chunk's plan.
    seeded: bool,
    /// Whether any leaf has improved on the (seeded) incumbent yet.
    improved: bool,
    /// Prunes taken against the still-unimproved seeded incumbent.
    seeded_prunes: u64,
    pause: f64,
    pause_cost: f64,
    /// Index of the pause candidate currently being searched (candidates
    /// run in declaration order).
    pause_idx: usize,
    /// Index of the pause candidate that produced `best`.
    best_pause_idx: usize,
    best_q: f64,
    best: Decision,
    /// Telemetry tallies, flushed once per decision: `(depth, level)`
    /// expansions, bound-pruned subtrees, and download-time memo traffic.
    /// Plain local adds keep the hot loop free of thread-local traffic.
    nodes: u64,
    pruned: u64,
    memo_lookups: u64,
    memo_hits: u64,
}

impl OracleSearch<'_> {
    /// Recursively enumerates levels at `depth`, updating `(best_q, best)`
    /// on leaves; `plan0` is the candidate first action of this subtree.
    ///
    /// **Why any exploration order is exact.** A leaf's computed score
    /// depends only on its `(pause, plan)` pair, and the only observables
    /// are the best score and the winner's `(pause, first action)`. The
    /// flat reference — pauses in declaration order, plans lexicographic,
    /// strictly-greater updates — returns exactly the maximum score, the
    /// earliest pause candidate attaining it, and the smallest first
    /// action within that candidate (the root level is the odometer's
    /// most significant digit). The update rule below maintains that
    /// tuple directly: `>` wins outright, `==` wins only inside the
    /// best's own pause candidate with a smaller `plan0` (candidates run
    /// in order, so a tie from a *later* candidate never wins). That
    /// frees the search to visit subtrees in the guided `ord` order.
    ///
    /// **Why pruning is exact.** A subtree is skipped only when the
    /// no-stall bound shows it cannot change that tuple: strictly below
    /// `best_q` nothing inside can win or tie; equal to `best_q`, a tie
    /// inside matters only if it could lower the winning `plan0` within
    /// the best's own pause candidate. The bound extends the node's
    /// running total with the switch-aware per-depth caps — `ufirst` for
    /// the first remaining step (conditioned on the node's actual
    /// previous level, which is on the DFS path), `umax` for deeper
    /// steps — through the same left-to-right fold (and final pause-cost
    /// subtraction) the leaf computation performs; each operation is
    /// monotone under IEEE-754 round-to-nearest, so the bound dominates
    /// every leaf's *computed* value as floating point.
    fn descend(&mut self, depth: usize, plan0: usize) {
        if self.prunable && depth > 0 {
            // `prev` is always `Some` at depth ≥ 1 (row `depth` was
            // written by `step(depth − 1, …)`).
            let prev_level = self.stack[depth].prev.map_or(0, |(_, l)| l);
            let mut bnd = self.stack[depth].total + self.ufirst[depth * self.n_levels + prev_level];
            for j in depth + 1..self.h {
                bnd += self.umax[j];
            }
            let ub = bnd - self.pause_cost;
            let tie_can_improve = self.pause_idx == self.best_pause_idx && plan0 < self.best.level;
            if ub < self.best_q || (ub == self.best_q && !tie_can_improve) {
                self.pruned += 1;
                if self.seeded && !self.improved {
                    self.seeded_prunes += 1;
                }
                return;
            }
        }
        if depth + 1 == self.h {
            // The `n_levels` sibling leaves under this parent are scored
            // as one block pass, then consumed in the exact visit order
            // below (module docs, optimization 5).
            self.score_leaves(depth);
            for k in 0..self.n_levels {
                self.nodes += 1;
                let level = if self.prunable {
                    self.ord[depth * self.n_levels + k]
                } else {
                    k
                };
                let plan0 = if depth == 0 { level } else { plan0 };
                let q = self.leaf_q[level];
                if q > self.best_q
                    || (q == self.best_q
                        && self.pause_idx == self.best_pause_idx
                        && plan0 < self.best.level)
                {
                    self.best_q = q;
                    self.best_pause_idx = self.pause_idx;
                    self.best = Decision {
                        level: plan0,
                        pause_s: self.pause,
                    };
                    self.improved = true;
                    self.best_plan.clear();
                    self.best_plan.extend_from_slice(&self.cur_plan[..depth]);
                    self.best_plan.push(level);
                }
            }
            return;
        }
        for k in 0..self.n_levels {
            self.nodes += 1;
            // `ord` is only filled when pruning is active; the unpruned
            // fallback keeps the reference's lexicographic order.
            let level = if self.prunable {
                self.ord[depth * self.n_levels + k]
            } else {
                k
            };
            let plan0 = if depth == 0 { level } else { plan0 };
            self.cur_plan[depth] = level;
            self.step(depth, level);
            self.descend(depth + 1, plan0);
        }
    }

    /// Extends the walk at `depth` by `level`, writing the child row —
    /// identical arithmetic (and memo traffic) to one step of the
    /// reference trace walk.
    fn step(&mut self, depth: usize, level: usize) {
        let parent = self.stack[depth];
        let dt = self.download_time(parent.t, depth, level);
        let stall = (dt - parent.buf).max(0.0);
        let mut buf = (parent.buf - dt).max(0.0) + self.d;
        buf = buf.min(self.max_buffer_s);
        let vq = self.vqs[depth * self.n_levels + level];
        let switch = match parent.prev {
            Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
            _ => 0.0,
        };
        self.stack[depth + 1] = OracleWalk {
            t: parent.t + dt,
            buf,
            prev: Some((vq, level)),
            total: parent.total
                + self.weights[depth]
                    * self
                        .qoe
                        .chunk_quality(vq, stall * self.risk_aversion, switch, self.d),
        };
    }

    /// The memoized walk step `rtt + download_time(t + rtt, size)` — a
    /// pure function of `(t, chunk, level)` for a fixed trace, keyed by
    /// the *exact bits* of `t`. A hit returns exactly what recomputation
    /// would, so caching is bit-invisible (module docs, optimization 2).
    fn download_time(&mut self, t: f64, depth: usize, level: usize) -> f64 {
        let chunk = self.next_chunk + depth;
        let key = (t.to_bits(), ((chunk as u64) << 8) | level as u64);
        self.memo_lookups += 1;
        match self.memo.get(&key) {
            Some(&dt) => {
                self.memo_hits += 1;
                dt
            }
            None => {
                let size = self.sizes[depth * self.n_levels + level];
                let dt = self.rtt_s + self.cum.download_time(t + self.rtt_s, size);
                self.memo.insert(key, dt);
                dt
            }
        }
    }

    /// Scores every sibling leaf under the parent row at `depth` in one
    /// block: the per-level download times are prefetched through the
    /// memo first, then each level runs one straight-line walk step plus
    /// the final pause-cost subtraction. Every element computes
    /// **exactly** one reference step — `(parent.total + w·q) −
    /// pause_cost` with the identical stall, switch, and KSQI arithmetic
    /// — so each `leaf_q[level]` is bit-identical to what the per-leaf
    /// walk produced before this restructuring. (Memo *insertion* order
    /// changes from visit order to level order; the memo is keyed
    /// exactly, so insertion order is unobservable.)
    fn score_leaves(&mut self, depth: usize) {
        let parent = self.stack[depth];
        for level in 0..self.n_levels {
            self.dts[level] = self.download_time(parent.t, depth, level);
        }
        let n_levels = self.n_levels;
        let w = self.weights[depth];
        let risk = self.risk_aversion;
        let d = self.d;
        for level in 0..n_levels {
            let stall = (self.dts[level] - parent.buf).max(0.0);
            let vq = self.vqs[depth * n_levels + level];
            let switch = match parent.prev {
                Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                _ => 0.0,
            };
            let q = self.qoe.chunk_quality(vq, stall * risk, switch, d);
            self.leaf_q[level] = (parent.total + w * q) - self.pause_cost;
        }
    }
}

impl AbrPolicy for OracleMpc {
    fn name(&self) -> &str {
        &self.name
    }

    /// Oracles are constructed around a specific trace, so reusing one
    /// instance across sessions requires re-indexing the new network. The
    /// cumulative index rebuilds into its existing buffers, keeping the
    /// per-session cost allocation-free — and the download-time memo is
    /// invalidated, because its entries are only valid for the trace they
    /// were computed against.
    fn rebind(&mut self, trace: &ThroughputTrace) {
        self.cum.rebind(trace);
        self.scratch.memo.clear();
        // A rebound oracle plans a different network, so every warm-start
        // carry (scalar and per-lane) is dropped.
        self.warm.invalidate();
        for slot in &mut self.lane_warm {
            slot.invalidate();
        }
    }

    /// Session-boundary hygiene: the warm-start carry never crosses a
    /// session, so a reused instance plans exactly like a fresh one.
    fn reset(&mut self) {
        self.warm.invalidate();
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        let h = self.prepare(state.next_chunk, ctx);
        if h == 0 {
            return Decision::level(0);
        }
        self.decide_prepared(state, ctx, h)
    }

    /// Recycles the memo at the batch boundary: entries from the previous
    /// batch's trace (already cleared by `rebind`) or from far-away chunk
    /// positions rarely hit again, and a bounded table keeps lookups hot.
    fn begin_batch(&mut self, lanes: usize) {
        self.reset();
        self.scratch.memo.clear();
        // Fresh per-lane warm-start carry slots for the new lane set.
        self.lane_warm.clear();
        self.lane_warm.resize_with(lanes, WarmSlot::default);
    }

    /// Plans every lane of the batch in one pass: the horizon weight
    /// window, manifest tables, and bound caps are prepared once per
    /// chunk step (they depend only on the shared chunk position), and
    /// every lane's search then runs over the same prepared tables the
    /// scalar path uses — plus a download-time memo that lets lanes reuse
    /// each other's trace walks. Decisions are bit-identical to
    /// [`Self::decide`] per lane.
    fn select_batch(
        &mut self,
        states: &BatchStates<'_>,
        ctx: &SessionContext<'_>,
        out: &mut [Decision],
    ) {
        let h = self.prepare(states.next_chunk(), ctx);
        if h == 0 {
            for slot in out.iter_mut().take(states.len()) {
                *slot = Decision::level(0);
            }
            return;
        }
        if self.lane_warm.len() < states.len() {
            self.lane_warm.resize_with(states.len(), WarmSlot::default);
        }
        for (i, slot) in out.iter_mut().enumerate().take(states.len()) {
            let state = states.state(i);
            std::mem::swap(&mut self.warm, &mut self.lane_warm[i]);
            *slot = self.decide_prepared(&state, ctx, h);
            std::mem::swap(&mut self.warm, &mut self.lane_warm[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_crowd::TrueQoe;
    use sensei_sim::{simulate, PlayerConfig};
    use sensei_video::SensitivityWeights;

    #[test]
    fn oracle_avoids_stalls_a_predictor_cannot_foresee() {
        // A trace with a deep fade: the oracle knows it is coming.
        let mut samples = vec![3000.0; 30];
        samples.extend(vec![300.0; 20]);
        samples.extend(vec![3000.0; 100]);
        let trace = ThroughputTrace::new("fade", 1.0, samples).unwrap();
        let src = source();
        let enc = encoded(&src);
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut OracleMpc::unaware(&trace),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(
            stalls < 1.0,
            "oracle stalled {stalls}s despite full knowledge"
        );
    }

    #[test]
    fn aware_beats_unaware_on_true_qoe_under_tight_bandwidth() {
        // The Fig. 6 claim, in miniature.
        let src = source();
        let enc = encoded(&src);
        let weights = SensitivityWeights::ground_truth(&src);
        let oracle = TrueQoe::default();
        let config = PlayerConfig::default();
        let mut aware_total = 0.0;
        let mut unaware_total = 0.0;
        for seed in 0..5 {
            let trace = sensei_trace::generate::hsdpa_like(1300.0, 600, 40 + seed);
            let a = simulate(
                &src,
                &enc,
                &trace,
                &mut OracleMpc::aware(&trace),
                &config,
                Some(&weights),
            )
            .unwrap();
            let u = simulate(
                &src,
                &enc,
                &trace,
                &mut OracleMpc::unaware(&trace),
                &config,
                None,
            )
            .unwrap();
            aware_total += oracle.qoe01(&src, &a.render).unwrap();
            unaware_total += oracle.qoe01(&src, &u.render).unwrap();
        }
        assert!(
            aware_total > unaware_total,
            "aware {aware_total:.3} vs unaware {unaware_total:.3}"
        );
    }

    #[test]
    fn unaware_never_pauses() {
        let src = source();
        let enc = encoded(&src);
        let trace = sensei_trace::generate::hsdpa_like(1300.0, 600, 9);
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut OracleMpc::unaware(&trace),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        let intentional: f64 = result
            .render
            .chunks()
            .iter()
            .map(|c| c.intentional_rebuffer_s)
            .sum();
        assert_eq!(intentional, 0.0);
    }

    /// The pre-optimization semantics, restated as a flat reference: every
    /// `(pause, plan)` pair scored by an independent exact-throughput walk
    /// (fresh trace integration per plan, no prefix sharing, no memo, no
    /// pruning), pauses in declaration order, plans in odometer
    /// (lexicographic) order, strictly-greater winner updates. The
    /// memoized branch-and-bound search must reproduce its decisions —
    /// level, pause, and score provenance — exactly.
    fn reference_decide(
        mpc: &OracleMpc,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
    ) -> Decision {
        let remaining = ctx.num_chunks() - state.next_chunk;
        let h = mpc.horizon.min(remaining);
        if h == 0 {
            return Decision::level(0);
        }
        let weights: Vec<f64> = if mpc.sensitivity_aware {
            match ctx.weights {
                Some(w) => {
                    let mut v = w.window(state.next_chunk, h).to_vec();
                    v.resize(h, 1.0);
                    v
                }
                None => vec![1.0; h],
            }
        } else {
            vec![1.0; h]
        };
        let playhead_w = if mpc.sensitivity_aware {
            ctx.weights
                .map(|w| {
                    let buffered = (state.buffer_s / ctx.chunk_duration_s).ceil() as usize;
                    let playhead = state.next_chunk.saturating_sub(buffered);
                    w.get(playhead.min(w.len() - 1)).unwrap_or(1.0)
                })
                .unwrap_or(1.0)
        } else {
            1.0
        };
        let (_, stall_penalty, _, _) = mpc.qoe.coefficients();
        let pauses: &[f64] = if mpc.allow_pause && state.playing {
            &[0.0, 1.0, 2.0]
        } else {
            &[0.0]
        };
        let n_levels = ctx.num_levels();
        let d = ctx.chunk_duration_s;
        let mut best = Decision::level(0);
        let mut best_q = f64::NEG_INFINITY;
        for &pause in pauses {
            let pause_cost =
                playhead_w * stall_penalty * mpc.risk_aversion * (pause / d).clamp(0.0, 1.0);
            let mut plan = vec![0usize; h];
            'plans: loop {
                // Score this plan from scratch.
                let mut t = state.elapsed_s;
                let mut buf = state.buffer_s + pause;
                let mut prev = state
                    .last_level
                    .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
                let mut total = 0.0;
                for (j, &level) in plan.iter().enumerate() {
                    let chunk = state.next_chunk + j;
                    let size = ctx.encoded.size_bits(chunk, level).unwrap();
                    let dt = mpc.rtt_s + mpc.cum.download_time(t + mpc.rtt_s, size);
                    let stall = (dt - buf).max(0.0);
                    buf = (buf - dt).max(0.0) + d;
                    buf = buf.min(mpc.max_buffer_s);
                    let vq = ctx.vq[chunk][level];
                    let switch = match prev {
                        Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                        _ => 0.0,
                    };
                    prev = Some((vq, level));
                    total += weights[j]
                        * mpc
                            .qoe
                            .chunk_quality(vq, stall * mpc.risk_aversion, switch, d);
                    t += dt;
                }
                let q = total - pause_cost;
                if q > best_q {
                    best_q = q;
                    best = Decision {
                        level: plan[0],
                        pause_s: pause,
                    };
                }
                // Odometer increment (lexicographic plan order); a full
                // wrap ends this pause candidate's enumeration.
                let mut pos = h;
                loop {
                    if pos == 0 {
                        break 'plans;
                    }
                    pos -= 1;
                    plan[pos] += 1;
                    if plan[pos] < n_levels {
                        break;
                    }
                    plan[pos] = 0;
                }
            }
        }
        best
    }

    #[test]
    fn memoized_search_matches_the_flat_reference() {
        let src = source();
        let enc = encoded(&src);
        let weights = SensitivityWeights::ground_truth(&src);
        let trace = sensei_trace::generate::hsdpa_like(1400.0, 600, 23);
        // Horizon 4 keeps the 3 · levels^h · h reference walks tractable
        // in debug builds; the search structure (prefix sharing, memo,
        // bound, pause loop) is identical at every horizon, and the full
        // default horizon is additionally spot-checked below.
        let mut configs = [OracleMpc::aware(&trace), OracleMpc::unaware(&trace)];
        for mpc in &mut configs {
            mpc.horizon = 4;
            let ctx = SessionContext {
                encoded: &enc,
                vq: enc.vq_table(),
                weights: mpc.sensitivity_aware.then_some(&weights),
                chunk_duration_s: src.chunk_duration_s(),
            };
            for next_chunk in [0, 2, 7, src.num_chunks() - 2, src.num_chunks() - 1] {
                for buffer_s in [0.5, 4.0, 12.5, 23.5] {
                    for elapsed_s in [0.0, 37.25, 188.0] {
                        let state = PlayerState {
                            next_chunk,
                            buffer_s,
                            last_level: Some(2),
                            throughput_history_kbps: &[1000.0; 4],
                            download_time_history_s: &[1.0; 4],
                            elapsed_s,
                            playing: true,
                        };
                        let fast = mpc.decide(&state, &ctx);
                        let slow = reference_decide(mpc, &state, &ctx);
                        assert_eq!(
                            fast.level, slow.level,
                            "{} level at chunk {next_chunk}, buf {buffer_s}, t {elapsed_s}",
                            mpc.name
                        );
                        assert_eq!(
                            fast.pause_s.to_bits(),
                            slow.pause_s.to_bits(),
                            "{} pause at chunk {next_chunk}, buf {buffer_s}, t {elapsed_s}",
                            mpc.name
                        );
                    }
                }
            }
        }
        // Full default horizon, one representative mid-session state per
        // variant (the reference enumerates 3 · 5^6 plans here — costly,
        // so just one state each).
        for mpc in &mut [OracleMpc::aware(&trace), OracleMpc::unaware(&trace)] {
            let ctx = SessionContext {
                encoded: &enc,
                vq: enc.vq_table(),
                weights: mpc.sensitivity_aware.then_some(&weights),
                chunk_duration_s: src.chunk_duration_s(),
            };
            let state = PlayerState {
                next_chunk: 6,
                buffer_s: 9.0,
                last_level: Some(1),
                throughput_history_kbps: &[1200.0; 5],
                download_time_history_s: &[1.0; 5],
                elapsed_s: 51.5,
                playing: true,
            };
            let fast = mpc.decide(&state, &ctx);
            let slow = reference_decide(mpc, &state, &ctx);
            assert_eq!((fast.level, fast.pause_s), (slow.level, slow.pause_s));
        }
    }

    #[test]
    fn warm_memo_matches_cold_instance_bit_for_bit() {
        // One long-lived instance whose memo fills up across many
        // decisions must decide exactly like a fresh instance per state:
        // memo hits are bit-invisible.
        let src = source();
        let enc = encoded(&src);
        let weights = SensitivityWeights::ground_truth(&src);
        let trace = sensei_trace::generate::hsdpa_like(1100.0, 600, 7);
        let mut warm = OracleMpc::aware(&trace);
        let ctx = SessionContext {
            encoded: &enc,
            vq: enc.vq_table(),
            weights: Some(&weights),
            chunk_duration_s: src.chunk_duration_s(),
        };
        for next_chunk in 0..src.num_chunks() {
            for (buffer_s, elapsed_s) in [(1.0, 10.0), (8.0, 77.7), (20.0, 140.0)] {
                let state = PlayerState {
                    next_chunk,
                    buffer_s,
                    last_level: Some(3),
                    throughput_history_kbps: &[900.0; 3],
                    download_time_history_s: &[1.0; 3],
                    elapsed_s,
                    playing: true,
                };
                let warm_d = warm.decide(&state, &ctx);
                let cold_d = OracleMpc::aware(&trace).decide(&state, &ctx);
                assert_eq!(warm_d.level, cold_d.level);
                assert_eq!(warm_d.pause_s.to_bits(), cold_d.pause_s.to_bits());
            }
        }
        assert!(
            !warm.scratch.memo.is_empty(),
            "the memo should actually be exercised"
        );
    }
}
