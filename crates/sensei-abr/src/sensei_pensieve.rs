//! SENSEI-Pensieve: Pensieve with sensitivity in the state, rebuffering in
//! the action space, and a reweighted reward (§5.2).
//!
//! The paper's two "minor changes": (1) rebuffering times are restricted to
//! {0, 1, 2} seconds at chunk boundaries; (2) instead of choosing among
//! bitrate×rebuffer combinations, the agent "either selects a bitrate or
//! initiates a rebuffering event at the next chunk. If it chooses the
//! latter, SENSEI-Pensieve will increment the buffer state by the chosen
//! rebuffering time and rerun the ABR algorithm immediately." The reward
//! reweights each chunk's quality by its sensitivity weight.

use crate::pensieve::{state_vector, PensieveConfig, STATE_DIM};
use crate::AbrError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sensei_ml::rl::{ActorCritic, Transition};
use sensei_qoe::Ksqi;
#[cfg(test)]
use sensei_sim::PlayerConfig;
use sensei_sim::{simulate, AbrPolicy, Decision, PlayerState, SessionContext};
use sensei_trace::ThroughputTrace;
use sensei_video::{EncodedVideo, SensitivityWeights, SourceVideo};

/// Lookahead window of weights appended to the state (§5.1: h = 5).
pub const WEIGHT_HORIZON: usize = 5;

/// SENSEI-Pensieve's state dimensionality.
pub const SENSEI_STATE_DIM: usize = STATE_DIM + WEIGHT_HORIZON;

/// Actions: the 5 ladder levels, then pause-1s, then pause-2s.
const N_ACTIONS: usize = 7;

/// A trained SENSEI-Pensieve agent.
#[derive(Debug, Clone)]
pub struct SenseiPensieve {
    agent: ActorCritic,
    name: String,
}

/// Extends the Pensieve state with the sensitivity weights of the next h
/// chunks (uniform 1.0 when the manifest carries none or past the end).
fn sensei_state(state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Vec<f64> {
    let mut v = state_vector(state, ctx);
    match ctx.weights {
        Some(w) => {
            let window = w.window(state.next_chunk, WEIGHT_HORIZON);
            for i in 0..WEIGHT_HORIZON {
                v.push(window.get(i).copied().unwrap_or(1.0));
            }
        }
        None => v.extend(std::iter::repeat_n(1.0, WEIGHT_HORIZON)),
    }
    v
}

/// Decides level and pause with the "rerun after a pause action" loop.
/// Generic over action selection so training (sampling) and evaluation
/// (greedy) share the exact decision semantics. The selector receives the
/// currently *allowed* actions: pause actions are masked out during
/// startup and once the {0, 1, 2}-second pause budget is spent.
fn decide_with<F>(
    state: &PlayerState<'_>,
    ctx: &SessionContext<'_>,
    max_pause_s: f64,
    mut act: F,
) -> (Decision, Vec<(Vec<f64>, usize)>)
where
    F: FnMut(&[f64], &[usize]) -> usize,
{
    let n_levels = ctx.num_levels();
    let bitrate_actions: Vec<usize> = (0..n_levels).collect();
    let mut taken = Vec::new();
    let mut pause_total = 0.0;
    let mut working = *state;
    loop {
        let mut allowed = bitrate_actions.clone();
        if working.playing {
            if pause_total + 1.0 <= max_pause_s + 1e-9 {
                allowed.push(5);
            }
            if pause_total + 2.0 <= max_pause_s + 1e-9 {
                allowed.push(6);
            }
        }
        let s = sensei_state(&working, ctx);
        let a = act(&s, &allowed);
        taken.push((s, a));
        if a >= 5 {
            let pause = (a - 4) as f64; // 1 s or 2 s
            pause_total += pause;
            // "Increment the buffer state by the chosen rebuffering time
            // and rerun" — the paused playback leaves more buffer by the
            // time the next chunk arrives.
            working.buffer_s += pause;
        } else {
            return (
                Decision {
                    level: a.min(n_levels - 1),
                    pause_s: pause_total,
                },
                taken,
            );
        }
    }
}

/// Training-time shim: samples actions and records every (state, action)
/// including pause actions.
struct Explorer<'a> {
    agent: &'a ActorCritic,
    rng: &'a mut StdRng,
    max_pause_s: f64,
    /// Per chunk decision: the (state, action) pairs taken (pauses + final
    /// bitrate).
    per_chunk: Vec<Vec<(Vec<f64>, usize)>>,
}

impl AbrPolicy for Explorer<'_> {
    fn name(&self) -> &str {
        "SENSEI-Pensieve(training)"
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        let (decision, taken) = decide_with(state, ctx, self.max_pause_s, |s, allowed| {
            self.agent
                .sample_action_masked(s, allowed, self.rng)
                .expect("state dims match")
        });
        self.per_chunk.push(taken);
        decision
    }
}

impl SenseiPensieve {
    /// Trains SENSEI-Pensieve. Every corpus entry carries the sensitivity
    /// weights its manifest would ship (ground truth in oracle experiments,
    /// crowd-inferred in end-to-end ones).
    ///
    /// # Errors
    ///
    /// Returns an error on an empty corpus/trace set or simulator failure.
    pub fn train(
        corpus: &[(SourceVideo, EncodedVideo, SensitivityWeights)],
        traces: &[ThroughputTrace],
        config: &PensieveConfig,
        seed: u64,
    ) -> Result<Self, AbrError> {
        if corpus.is_empty() || traces.is_empty() {
            return Err(AbrError::Training(
                "training requires at least one video and one trace".to_string(),
            ));
        }
        let qoe = Ksqi::canonical();
        let mut agent = ActorCritic::new(SENSEI_STATE_DIM, N_ACTIONS, config.a2c.clone(), seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E_2021);
        for ep in 0..config.episodes {
            agent.set_entropy_coef(crate::pensieve::annealed_entropy(
                config.a2c.entropy_coef,
                ep,
                config.episodes,
            ));
            let (source, encoded, weights) = &corpus[ep % corpus.len()];
            let trace = &traces[(ep / corpus.len()) % traces.len()];
            let mut explorer = Explorer {
                agent: &agent,
                rng: &mut rng,
                max_pause_s: config.player.max_pause_s,
                per_chunk: Vec::new(),
            };
            let result = simulate(
                source,
                encoded,
                trace,
                &mut explorer,
                &config.player,
                Some(weights),
            )?;
            // Reward: sensitivity-weighted per-chunk quality. The final
            // (bitrate) action of each chunk carries the chunk's reward;
            // pause actions carry 0 and receive credit through the
            // discounted return.
            let scores = qoe.chunk_scores(&result.render);
            let w = weights.as_slice();
            let mut episode = Vec::new();
            for (chunk, taken) in explorer.per_chunk.into_iter().enumerate() {
                let last = taken.len() - 1;
                for (i, (state, action)) in taken.into_iter().enumerate() {
                    let reward = if i == last {
                        w[chunk] * scores[chunk]
                    } else {
                        0.0
                    };
                    episode.push(Transition {
                        state,
                        action,
                        reward,
                    });
                }
            }
            agent.train_episode(&episode)?;
        }
        Ok(Self {
            agent,
            name: "SENSEI-Pensieve".to_string(),
        })
    }

    /// Wraps a pre-trained agent (used by tests and ablations).
    pub fn from_agent(agent: ActorCritic) -> Result<Self, AbrError> {
        if agent.state_dim() != SENSEI_STATE_DIM || agent.n_actions() != N_ACTIONS {
            return Err(AbrError::InvalidParameter {
                name: "agent dims",
                value: agent.state_dim() as f64,
            });
        }
        Ok(Self {
            agent,
            name: "SENSEI-Pensieve".to_string(),
        })
    }
}

impl AbrPolicy for SenseiPensieve {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        let (decision, _) = decide_with(state, ctx, 2.0, |s, allowed| {
            self.agent
                .best_action_masked(s, allowed)
                .expect("state dims match")
        });
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_crowd::TrueQoe;

    fn quick_config() -> PensieveConfig {
        PensieveConfig {
            episodes: 3000,
            ..PensieveConfig::sensei_default()
        }
    }

    fn train_traces(seed: u64) -> Vec<ThroughputTrace> {
        let mut traces = Vec::new();
        for (i, m) in [600.0, 1000.0, 1500.0, 2200.0, 3200.0].iter().enumerate() {
            traces.push(sensei_trace::generate::hsdpa_like(*m, 600, seed + i as u64));
            traces.push(sensei_trace::generate::fcc_like(
                *m,
                600,
                seed + 40 + i as u64,
            ));
        }
        traces
    }

    #[test]
    fn training_validates_inputs() {
        assert!(matches!(
            SenseiPensieve::train(&[], &[], &PensieveConfig::default(), 0),
            Err(AbrError::Training(_))
        ));
    }

    #[test]
    fn state_includes_weight_window() {
        let src = source();
        let enc = encoded(&src);
        let weights = SensitivityWeights::ground_truth(&src);
        let vq: Vec<Vec<f64>> = (0..src.num_chunks()).map(|_| vec![0.5; 5]).collect();
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: Some(&weights),
            chunk_duration_s: 4.0,
        };
        let state = PlayerState {
            next_chunk: 12, // key-moment region of the test video
            buffer_s: 8.0,
            last_level: Some(2),
            throughput_history_kbps: &[1500.0; 5],
            download_time_history_s: &[2.0; 5],
            elapsed_s: 60.0,
            playing: true,
        };
        let v = sensei_state(&state, &ctx);
        assert_eq!(v.len(), SENSEI_STATE_DIM);
        // The appended window covers the key moments: weights above 1.
        let window = &v[STATE_DIM..];
        assert!(window.iter().any(|&w| w > 1.2), "window = {window:?}");
    }

    #[test]
    fn pause_actions_rerun_and_cap_at_two_seconds() {
        // An action source that always asks to pause must terminate with a
        // capped pause and a bitrate choice.
        let src = source();
        let enc = encoded(&src);
        let vq: Vec<Vec<f64>> = (0..src.num_chunks()).map(|_| vec![0.5; 5]).collect();
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: None,
            chunk_duration_s: 4.0,
        };
        let state = PlayerState {
            next_chunk: 3,
            buffer_s: 8.0,
            last_level: Some(2),
            throughput_history_kbps: &[1500.0; 3],
            download_time_history_s: &[2.0; 3],
            elapsed_s: 20.0,
            playing: true,
        };
        let (decision, taken) = decide_with(&state, &ctx, 2.0, |_, allowed| {
            // Prefer the longest pause available, else level 2.
            if allowed.contains(&6) {
                6
            } else if allowed.contains(&5) {
                5
            } else {
                2
            }
        });
        // After a 2-second pause the budget is spent: the mask removes the
        // pause actions and the loop must settle on a bitrate.
        assert!((decision.pause_s - 2.0).abs() < 1e-9);
        assert_eq!(decision.level, 2);
        assert_eq!(taken.len(), 2);
    }

    #[test]
    fn pauses_are_ignored_during_startup() {
        let src = source();
        let enc = encoded(&src);
        let vq: Vec<Vec<f64>> = (0..src.num_chunks()).map(|_| vec![0.5; 5]).collect();
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: None,
            chunk_duration_s: 4.0,
        };
        let state = PlayerState {
            next_chunk: 0,
            buffer_s: 0.0,
            last_level: None,
            throughput_history_kbps: &[],
            download_time_history_s: &[],
            elapsed_s: 0.0,
            playing: false,
        };
        // Pause actions are masked out before playback starts.
        let (decision, _) = decide_with(&state, &ctx, 2.0, |_, allowed| {
            assert!(!allowed.contains(&5) && !allowed.contains(&6));
            *allowed.last().unwrap()
        });
        assert_eq!(decision.pause_s, 0.0);
    }

    #[test]
    fn improves_true_qoe_over_plain_pensieve() {
        let src = source();
        let enc = encoded(&src);
        let weights = SensitivityWeights::ground_truth(&src);
        let traces = train_traces(700);
        let sensei = SenseiPensieve::train(
            &[(src.clone(), enc.clone(), weights.clone())],
            &traces,
            &quick_config(),
            13,
        )
        .unwrap();
        let plain_cfg = PensieveConfig {
            episodes: 3000,
            ..PensieveConfig::default()
        };
        let plain =
            crate::Pensieve::train(&[(src.clone(), enc.clone())], &traces, &plain_cfg, 13).unwrap();
        let oracle = TrueQoe::default();
        let config = PlayerConfig::default();
        let mut s_total = 0.0;
        let mut p_total = 0.0;
        for seed in 0..4 {
            let eval = sensei_trace::generate::hsdpa_like(1400.0, 600, 800 + seed);
            let s = simulate(
                &src,
                &enc,
                &eval,
                &mut sensei.clone(),
                &config,
                Some(&weights),
            )
            .unwrap();
            let p = simulate(&src, &enc, &eval, &mut plain.clone(), &config, None).unwrap();
            s_total += oracle.qoe01(&src, &s.render).unwrap();
            p_total += oracle.qoe01(&src, &p.render).unwrap();
        }
        // RL at test scale is noisy; require SENSEI-Pensieve to at least
        // match plain Pensieve on true QoE (it typically wins clearly).
        assert!(
            s_total > p_total * 0.97,
            "SENSEI-Pensieve {s_total:.3} vs Pensieve {p_total:.3}"
        );
    }

    #[test]
    fn from_agent_checks_dimensions() {
        use sensei_ml::rl::A2cConfig;
        let wrong = ActorCritic::new(4, 3, A2cConfig::default(), 0).unwrap();
        assert!(SenseiPensieve::from_agent(wrong).is_err());
        let right = ActorCritic::new(SENSEI_STATE_DIM, N_ACTIONS, A2cConfig::default(), 0).unwrap();
        assert!(SenseiPensieve::from_agent(right).is_ok());
    }
}
