//! Pensieve: deep-reinforcement-learning bitrate control.
//!
//! Mao et al. (SIGCOMM 2017) train a policy network whose state summarizes
//! recent streaming history and whose discrete actions pick the next
//! chunk's bitrate, with the QoE objective as reward. The original uses
//! A3C; the asynchronous part is purely a throughput optimization, so this
//! reproduction trains a single-threaded A2C ([`sensei_ml::rl`]) inside the
//! session simulator. Per §7.1 the reward is KSQI (which "strictly
//! improves" on Pensieve's original linear QoE).
//!
//! State (Pensieve's, adapted to this simulator):
//! last chunk's visual quality; buffer; last 8 throughput samples; last 8
//! download times; next-chunk sizes at all 5 levels; fraction of chunks
//! remaining — 24 dimensions. Actions: the 5 ladder levels.

use crate::AbrError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sensei_ml::rl::{A2cConfig, ActorCritic, Transition};
use sensei_qoe::Ksqi;
use sensei_sim::{simulate, AbrPolicy, Decision, PlayerConfig, PlayerState, SessionContext};
use sensei_trace::ThroughputTrace;
use sensei_video::{EncodedVideo, SourceVideo};

/// Number of history taps in the state.
const HISTORY: usize = 8;

/// State dimensionality for a 5-level ladder.
pub const STATE_DIM: usize = 1 + 1 + HISTORY + HISTORY + 5 + 1;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct PensieveConfig {
    /// Training episodes (one simulated session each).
    pub episodes: usize,
    /// Actor-critic hyperparameters.
    pub a2c: A2cConfig,
    /// Player used during training.
    pub player: PlayerConfig,
}

impl Default for PensieveConfig {
    fn default() -> Self {
        Self {
            episodes: 3000,
            a2c: A2cConfig {
                // ABR credit is mostly local (the stall a decision causes
                // lands on that chunk), so a moderate discount sharpens the
                // per-action signal dramatically at this training scale.
                gamma: 0.6,
                entropy_coef: 0.03,
                lr_policy: 3e-3,
                lr_value: 3e-3,
                hidden: 64,
            },
            player: PlayerConfig::default(),
        }
    }
}

impl PensieveConfig {
    /// Defaults tuned for SENSEI-Pensieve: a higher discount so the agent
    /// can learn multi-chunk trades ("lower quality now so the key moment
    /// ahead stays smooth"), which is SENSEI's central mechanism. Plain
    /// Pensieve's credit is more local and trains best with the smaller
    /// default gamma. Pushing the discount much past this (e.g. 0.9) makes
    /// the value targets noisy enough at the few-thousand-episode scale
    /// that the policy collapses to a single constant action, so 0.75
    /// buys the lookahead without losing training stability.
    pub fn sensei_default() -> Self {
        let mut cfg = Self::default();
        cfg.a2c.gamma = 0.75;
        cfg
    }
}

/// Anneals the entropy bonus from its configured value down to ~1/10th of
/// it across training — explore early, exploit late.
pub(crate) fn annealed_entropy(initial: f64, episode: usize, total: usize) -> f64 {
    let progress = episode as f64 / total.max(1) as f64;
    initial * (1.0 - 0.9 * progress)
}

/// A trained Pensieve agent (greedy at evaluation time).
#[derive(Debug, Clone)]
pub struct Pensieve {
    agent: ActorCritic,
    qoe: Ksqi,
    name: String,
}

/// Builds the Pensieve state vector from player state and context.
pub(crate) fn state_vector(state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Vec<f64> {
    let mut v = Vec::with_capacity(STATE_DIM);
    // Last chunk's visual quality (0 before the first chunk).
    let last_vq = match state.last_level {
        Some(l) if state.next_chunk > 0 => ctx.vq[state.next_chunk - 1][l],
        _ => 0.0,
    };
    v.push(last_vq);
    v.push(state.buffer_s / 10.0);
    // Throughput taps, newest last, zero-padded; normalized by 10 Mbps.
    let tput = &state.throughput_history_kbps;
    for i in 0..HISTORY {
        let idx = (tput.len() + i).checked_sub(HISTORY);
        v.push(idx.and_then(|j| tput.get(j)).copied().unwrap_or(0.0) / 10_000.0);
    }
    let dl = &state.download_time_history_s;
    for i in 0..HISTORY {
        let idx = (dl.len() + i).checked_sub(HISTORY);
        v.push(idx.and_then(|j| dl.get(j)).copied().unwrap_or(0.0) / 10.0);
    }
    // Next chunk sizes in megabytes (zero-padded past the end).
    let n_levels = ctx.num_levels();
    for level in 0..5 {
        let size = if level < n_levels && state.next_chunk < ctx.num_chunks() {
            ctx.encoded
                .size_bits(state.next_chunk, level)
                .unwrap_or(0.0)
        } else {
            0.0
        };
        v.push(size / 8e6);
    }
    v.push((ctx.num_chunks() - state.next_chunk) as f64 / ctx.num_chunks() as f64);
    v
}

/// Training-time shim: samples from the policy and records the trajectory.
struct Explorer<'a> {
    agent: &'a ActorCritic,
    rng: &'a mut StdRng,
    states: Vec<Vec<f64>>,
    actions: Vec<usize>,
}

impl AbrPolicy for Explorer<'_> {
    fn name(&self) -> &str {
        "Pensieve(training)"
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        let s = state_vector(state, ctx);
        let a = self
            .agent
            .sample_action(&s, self.rng)
            .expect("state vector matches agent dims");
        self.states.push(s);
        self.actions.push(a);
        Decision::level(a.min(ctx.num_levels() - 1))
    }
}

impl Pensieve {
    /// Trains Pensieve on a corpus of `(source, encoded)` videos and
    /// training traces.
    ///
    /// # Errors
    ///
    /// Returns an error on an empty corpus/trace set or simulator failure.
    pub fn train(
        corpus: &[(SourceVideo, EncodedVideo)],
        traces: &[ThroughputTrace],
        config: &PensieveConfig,
        seed: u64,
    ) -> Result<Self, AbrError> {
        if corpus.is_empty() || traces.is_empty() {
            return Err(AbrError::Training(
                "training requires at least one video and one trace".to_string(),
            ));
        }
        let qoe = Ksqi::canonical();
        let mut agent = ActorCritic::new(STATE_DIM, 5, config.a2c.clone(), seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E_2021);
        for ep in 0..config.episodes {
            agent.set_entropy_coef(annealed_entropy(
                config.a2c.entropy_coef,
                ep,
                config.episodes,
            ));
            let (source, encoded) = &corpus[ep % corpus.len()];
            let trace = &traces[(ep / corpus.len()) % traces.len()];
            let mut explorer = Explorer {
                agent: &agent,
                rng: &mut rng,
                states: Vec::new(),
                actions: Vec::new(),
            };
            let result = simulate(source, encoded, trace, &mut explorer, &config.player, None)?;
            // Reward: the QoE model's per-chunk decomposition.
            let rewards = qoe.chunk_scores(&result.render);
            let episode: Vec<Transition> = explorer
                .states
                .into_iter()
                .zip(explorer.actions)
                .zip(rewards)
                .map(|((state, action), reward)| Transition {
                    state,
                    action,
                    reward,
                })
                .collect();
            agent.train_episode(&episode)?;
        }
        Ok(Self {
            agent,
            qoe,
            name: "Pensieve".to_string(),
        })
    }

    /// The underlying agent, for SENSEI-Pensieve's reuse and inspection.
    pub fn agent(&self) -> &ActorCritic {
        &self.agent
    }

    /// The QoE model used as reward.
    pub fn qoe(&self) -> &Ksqi {
        &self.qoe
    }
}

impl AbrPolicy for Pensieve {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        let s = state_vector(state, ctx);
        let a = self
            .agent
            .best_action(&s)
            .expect("state vector matches agent dims");
        Decision::level(a.min(ctx.num_levels() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_qoe::QoeModel;

    fn quick_config() -> PensieveConfig {
        PensieveConfig {
            episodes: 1500,
            ..PensieveConfig::default()
        }
    }

    /// Diverse-mean training traces, as Pensieve's own recipe requires —
    /// constant-mean corpora let degenerate constant policies win.
    fn train_traces(seed: u64) -> Vec<ThroughputTrace> {
        let mut traces = Vec::new();
        for (i, m) in [600.0, 1000.0, 1500.0, 2200.0, 3200.0].iter().enumerate() {
            traces.push(sensei_trace::generate::hsdpa_like(*m, 600, seed + i as u64));
            traces.push(sensei_trace::generate::fcc_like(
                *m,
                600,
                seed + 40 + i as u64,
            ));
        }
        traces
    }

    #[test]
    fn training_validates_inputs() {
        assert!(matches!(
            Pensieve::train(&[], &[], &PensieveConfig::default(), 0),
            Err(AbrError::Training(_))
        ));
    }

    #[test]
    fn state_vector_has_documented_shape() {
        let src = source();
        let enc = encoded(&src);
        let vq: Vec<Vec<f64>> = (0..src.num_chunks()).map(|_| vec![0.5; 5]).collect();
        let ctx = SessionContext {
            encoded: &enc,
            vq: &vq,
            weights: None,
            chunk_duration_s: 4.0,
        };
        let state = PlayerState {
            next_chunk: 3,
            buffer_s: 12.0,
            last_level: Some(2),
            throughput_history_kbps: &[1000.0, 2000.0, 3000.0],
            download_time_history_s: &[1.0, 2.0, 1.5],
            elapsed_s: 20.0,
            playing: true,
        };
        let v = state_vector(&state, &ctx);
        assert_eq!(v.len(), STATE_DIM);
        // Buffer normalized.
        assert!((v[1] - 1.2).abs() < 1e-12);
        // History zero-padded at the front.
        assert_eq!(v[2], 0.0);
        assert!((v[9] - 0.3).abs() < 1e-12); // newest = 3000/10000
    }

    #[test]
    fn trained_policy_avoids_catastrophic_stalling() {
        let src = source();
        let enc = encoded(&src);
        let pensieve = Pensieve::train(
            &[(src.clone(), enc.clone())],
            &train_traces(200),
            &quick_config(),
            7,
        )
        .unwrap();
        // Evaluate on a held-out trace.
        let eval = sensei_trace::generate::hsdpa_like(1500.0, 600, 999);
        let result = simulate(
            &src,
            &enc,
            &eval,
            &mut pensieve.clone(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        let ratio = result.render.rebuffer_ratio();
        assert!(ratio < 0.25, "rebuffer ratio = {ratio:.3}");
        // And it should use meaningfully more than the bottom rate.
        assert!(result.render.avg_bitrate_kbps() > 400.0);
    }

    #[test]
    fn trained_policy_is_competitive_with_bba() {
        let src = source();
        let enc = encoded(&src);
        let pensieve = Pensieve::train(
            &[(src.clone(), enc.clone())],
            &train_traces(300),
            &quick_config(),
            11,
        )
        .unwrap();
        let qoe = Ksqi::canonical();
        let mut p_total = 0.0;
        let mut b_total = 0.0;
        for s in 0..4 {
            let eval = sensei_trace::generate::hsdpa_like(1800.0, 600, 500 + s);
            let config = PlayerConfig::default();
            let p = simulate(&src, &enc, &eval, &mut pensieve.clone(), &config, None).unwrap();
            let b = simulate(
                &src,
                &enc,
                &eval,
                &mut crate::Bba::paper_default(),
                &config,
                None,
            )
            .unwrap();
            p_total += qoe.predict(&p.render).unwrap();
            b_total += qoe.predict(&b.render).unwrap();
        }
        // RL training at test scale is modest; require Pensieve to be at
        // least in BBA's league (within 10%), typically above it.
        assert!(
            p_total > b_total * 0.9,
            "Pensieve {p_total:.3} vs BBA {b_total:.3}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let src = source();
        let enc = encoded(&src);
        let traces = vec![sensei_trace::generate::fcc_like(2000.0, 600, 1)];
        let cfg = PensieveConfig {
            episodes: 20,
            ..PensieveConfig::default()
        };
        let run = || {
            let p = Pensieve::train(&[(src.clone(), enc.clone())], &traces, &cfg, 3).unwrap();
            let eval = sensei_trace::generate::fcc_like(2000.0, 600, 2);
            let r = simulate(
                &src,
                &enc,
                &eval,
                &mut p.clone(),
                &PlayerConfig::default(),
                None,
            )
            .unwrap();
            r.levels
        };
        assert_eq!(run(), run());
    }
}
