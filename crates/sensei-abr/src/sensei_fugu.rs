//! SENSEI-Fugu: Fugu with sensitivity weights and intentional rebuffering
//! (Eq. 4).
//!
//! Two changes over Fugu, exactly the §5.2 recipe:
//!
//! 1. The horizon objective weights each chunk's quality by its
//!    sensitivity: `Σ_γ p(γ) Σ_j w_j · q(b_j, t_j)`.
//! 2. The action space gains an intentional rebuffering time for the next
//!    chunk, drawn from {0, 1, 2} seconds. Pausing now freezes playback at
//!    the current playhead chunk (charged at *that* chunk's weight) and
//!    buys buffer headroom for the high-sensitivity chunks ahead — the
//!    "borrow from low-sensitivity chunks" optimization of Fig. 11(d).

use crate::fugu::Fugu;
use crate::WarmSlot;
use sensei_qoe::Ksqi;
use sensei_sim::{AbrPolicy, BatchStates, Decision, PlayerState, SessionContext};
use sensei_trace::ThroughputTrace;

/// The intentional-rebuffer action levels (§5.2: "{0, 1, 2} seconds ...
/// only ... at chunk boundaries").
pub const PAUSE_LEVELS_S: [f64; 3] = [0.0, 1.0, 2.0];

/// The SENSEI-Fugu policy.
#[derive(Debug, Clone)]
pub struct SenseiFugu {
    inner: Fugu,
    qoe: Ksqi,
    /// When false, the policy only reweights the objective and never
    /// pauses — the "only bitrate adaptation" ablation of Fig. 18b.
    allow_pause: bool,
    /// Intentional stall spent so far this session, seconds.
    pause_spent_s: f64,
    /// Per-lane pause ledgers when the instance serves a batch: the pause
    /// budget is **per-session** state, so each lane keeps its own spend
    /// (see [`AbrPolicy::select_batch`] below).
    lane_pause_spent_s: Vec<f64>,
    /// Horizon weight scratch, refilled per decision — one long-lived
    /// buffer instead of a `Vec` allocation per decision.
    weights_scratch: Vec<f64>,
    /// Per-lane warm-start carries, swapped into the inner MPC's scalar
    /// slot around each lane's search — same pattern as the pause ledger.
    lane_warm: Vec<WarmSlot>,
    /// The winning pause candidate's full plan: every candidate runs its
    /// own search, so the carry must commit the *winner's* plan, not the
    /// last one searched.
    winner_plan: Vec<usize>,
}

impl SenseiFugu {
    /// Fraction of the video duration the policy may spend on intentional
    /// stalls. Peak-end raters punish *concentrated* stalls far beyond
    /// their total length, so the budget keeps the new action surgical.
    const PAUSE_BUDGET_FRACTION: f64 = 0.04;

    /// Builds SENSEI-Fugu with the full action space.
    pub fn new() -> Self {
        Self {
            inner: Fugu::new(),
            qoe: Ksqi::canonical(),
            allow_pause: true,
            pause_spent_s: 0.0,
            lane_pause_spent_s: Vec::new(),
            weights_scratch: Vec::new(),
            lane_warm: Vec::new(),
            winner_plan: Vec::new(),
        }
    }

    /// Toggles the inner MPC's cross-chunk warm start (on by default);
    /// see [`Fugu::with_warm_start`].
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.inner = self.inner.with_warm_start(enabled);
        if !enabled {
            self.lane_warm.clear();
        }
        self
    }

    /// The Fig. 18b ablation: weighted objective, no new actions.
    pub fn without_pause_action() -> Self {
        Self {
            allow_pause: false,
            ..Self::new()
        }
    }

    /// Overrides the objective QoE model (kept in sync with the inner MPC).
    pub fn with_qoe(mut self, qoe: Ksqi) -> Self {
        self.inner = self.inner.with_qoe(qoe.clone());
        self.qoe = qoe;
        self
    }

    /// Overrides the inner MPC's stall risk-aversion multiplier.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is below 1 (see [`Fugu::with_risk_aversion`]).
    pub fn with_risk_aversion(mut self, factor: f64) -> Self {
        self.inner = self.inner.with_risk_aversion(factor);
        self
    }

    /// Overrides the inner MPC's throughput predictor.
    pub fn with_predictor(mut self, predictor: crate::ThroughputPredictor) -> Self {
        self.inner = self.inner.with_predictor(predictor);
        self
    }

    /// Fills the scratch weight vector covering the horizon starting at
    /// `next_chunk`; falls back to uniform when the manifest carried no
    /// weights. Lane-invariant within a batch tile, so the batched path
    /// fills it once per chunk step.
    fn fill_horizon_weights(&mut self, next_chunk: usize, ctx: &SessionContext<'_>, h: usize) {
        self.weights_scratch.clear();
        if let Some(w) = ctx.weights {
            self.weights_scratch
                .extend_from_slice(w.window(next_chunk, h));
        }
        self.weights_scratch.resize(h, 1.0);
    }

    /// Weight of the chunk currently at the playhead (where an intentional
    /// pause would land).
    fn playhead_weight(state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> f64 {
        let Some(w) = ctx.weights else { return 1.0 };
        let buffered_chunks = (state.buffer_s / ctx.chunk_duration_s).ceil() as usize;
        let playhead = state.next_chunk.saturating_sub(buffered_chunks);
        w.get(playhead.min(w.len() - 1)).unwrap_or(1.0)
    }
}

impl Default for SenseiFugu {
    fn default() -> Self {
        Self::new()
    }
}

impl AbrPolicy for SenseiFugu {
    fn name(&self) -> &str {
        if self.allow_pause {
            "SENSEI-Fugu"
        } else {
            "SENSEI-Fugu(no-pause)"
        }
    }

    fn reset(&mut self) {
        self.pause_spent_s = 0.0;
        // Session-boundary hygiene for the inner MPC's warm-start carry.
        self.inner.reset();
    }

    /// Trace-boundary hygiene: drop every warm-start carry (the inner
    /// scalar slot and all lane slots) along with the inner rebind.
    fn rebind(&mut self, trace: &ThroughputTrace) {
        self.inner.rebind(trace);
        for slot in &mut self.lane_warm {
            slot.invalidate();
        }
    }

    /// The pause budget is per-session state, so a batch keeps one ledger
    /// slot per lane — and likewise one warm-start carry slot per lane.
    fn begin_batch(&mut self, lanes: usize) {
        self.reset();
        self.lane_pause_spent_s.clear();
        self.lane_pause_spent_s.resize(lanes, 0.0);
        self.lane_warm.clear();
        self.lane_warm.resize_with(lanes, WarmSlot::default);
    }

    /// Plans every lane of the batch over shared per-tile tables, swapping
    /// each lane's pause ledger into the scalar slot so every lane sees
    /// exactly the budget state a dedicated per-session instance would.
    /// All lanes of a batch sit at the same chunk step, so the manifest
    /// size/vq tables and the horizon weight window are filled once for
    /// the whole tile — byte-identical decisions to the scalar path.
    fn select_batch(
        &mut self,
        states: &BatchStates<'_>,
        ctx: &SessionContext<'_>,
        out: &mut [Decision],
    ) {
        let remaining = ctx.num_chunks() - states.next_chunk();
        let h = crate::fugu::DEFAULT_HORIZON.min(remaining);
        if h == 0 {
            for slot in out.iter_mut().take(states.len()) {
                *slot = Decision::level(0);
            }
            return;
        }
        self.inner.fill_chunk_tables(states.next_chunk(), h, ctx);
        self.fill_horizon_weights(states.next_chunk(), ctx, h);
        if self.lane_warm.len() < states.len() {
            self.lane_warm.resize_with(states.len(), WarmSlot::default);
        }
        for (i, slot) in out.iter_mut().enumerate().take(states.len()) {
            self.pause_spent_s = self.lane_pause_spent_s[i];
            std::mem::swap(self.inner.warm_slot_mut(), &mut self.lane_warm[i]);
            *slot = self.decide_prepared(&states.state(i), ctx, h);
            std::mem::swap(self.inner.warm_slot_mut(), &mut self.lane_warm[i]);
            self.lane_pause_spent_s[i] = self.pause_spent_s;
        }
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        let remaining = ctx.num_chunks() - state.next_chunk;
        let h = crate::fugu::DEFAULT_HORIZON.min(remaining);
        if h == 0 {
            return Decision::level(0);
        }
        self.inner.fill_chunk_tables(state.next_chunk, h, ctx);
        self.fill_horizon_weights(state.next_chunk, ctx, h);
        self.decide_prepared(state, ctx, h)
    }
}

impl SenseiFugu {
    /// One decision over prepared tables: assumes the inner MPC's chunk
    /// tables and the horizon weight window are filled for
    /// `(state.next_chunk, h)`. The scenario rates and download times are
    /// filled here once and shared by every pause candidate — a candidate
    /// perturbs only the buffer, which neither table reads.
    fn decide_prepared(
        &mut self,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        h: usize,
    ) -> Decision {
        self.inner.prepare_rates(state, ctx, h);
        let playhead_w = Self::playhead_weight(state, ctx);
        let (_, stall_penalty, _, _) = self.qoe.coefficients();
        let budget = Self::PAUSE_BUDGET_FRACTION * ctx.num_chunks() as f64 * ctx.chunk_duration_s;

        let mut best = (0usize, 0.0f64);
        let mut best_q = f64::NEG_INFINITY;
        // Pausing banks buffer for upcoming high-sensitivity chunks. That
        // is meaningless when the buffer is already starving or the link
        // cannot even sustain the lowest rung - there a pause only
        // concentrates stalls, which peak-end raters punish brutally.
        let predicted = state.harmonic_mean_throughput(5).unwrap_or(0.0);
        let pause_sensible = state.buffer_s >= 2.0 * ctx.chunk_duration_s
            && predicted * 0.85 > ctx.encoded.ladder().min_kbps();
        let pauses: &[f64] = if self.allow_pause && state.playing && pause_sensible {
            &PAUSE_LEVELS_S
        } else {
            &PAUSE_LEVELS_S[..1]
        };
        for &pause in pauses {
            if pause > 0.0 && self.pause_spent_s + pause > budget {
                continue;
            }
            // Pausing delays playback: the horizon walk sees extra buffer,
            // and the stall is charged at the playhead chunk's weight —
            // at the SAME risk multiplier the planner applies to predicted
            // stalls, so relocation is never spuriously profitable.
            let mut paused_state = *state;
            paused_state.buffer_s += pause;
            let pause_cost = playhead_w
                * stall_penalty
                * self.inner.risk_aversion()
                * (pause / ctx.chunk_duration_s).clamp(0.0, 1.0);
            // Hysteresis: an intentional stall must buy a clear planned
            // improvement, not a prediction-noise-sized one.
            let margin = if pause > 0.0 { 0.05 } else { 0.0 };
            let (level, plan_q) =
                self.inner
                    .plan_prepared(&paused_state, ctx, Some(&self.weights_scratch), h);
            let q = plan_q - pause_cost - margin;
            if q > best_q {
                best_q = q;
                best = (level, pause);
                // Remember the winning candidate's full plan: the pause
                // 0.0 candidate always runs, so this is always set.
                self.winner_plan.clear();
                self.winner_plan.extend_from_slice(self.inner.last_plan());
            }
        }
        // Carry the *winner's* plan to the next chunk step — a later
        // candidate's search may have overwritten the inner last-plan
        // scratch with a losing plan.
        self.inner
            .commit_warm_plan(state.next_chunk, &self.winner_plan);
        self.pause_spent_s += best.1;
        Decision {
            level: best.0,
            pause_s: best.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_crowd::TrueQoe;
    use sensei_sim::{simulate, PlayerConfig};
    use sensei_trace::ThroughputTrace;
    use sensei_video::SensitivityWeights;

    #[test]
    fn reduces_to_fugu_with_uniform_weights_and_ample_bandwidth() {
        let src = source();
        let enc = encoded(&src);
        let trace = ThroughputTrace::constant("fast", 10_000.0, 600.0).unwrap();
        let uniform = SensitivityWeights::uniform(src.num_chunks()).unwrap();
        let config = PlayerConfig::default();
        let s = simulate(
            &src,
            &enc,
            &trace,
            &mut SenseiFugu::new(),
            &config,
            Some(&uniform),
        )
        .unwrap();
        let f = simulate(&src, &enc, &trace, &mut crate::Fugu::new(), &config, None).unwrap();
        // With no sensitivity variation and plenty of bandwidth the two
        // should track closely (identical average bitrate).
        assert!((s.render.avg_bitrate_kbps() - f.render.avg_bitrate_kbps()).abs() < 200.0);
        let s_stall = s.render.total_rebuffer_s() - s.render.startup_delay_s();
        assert!(s_stall < 0.5, "no reason to pause: stall = {s_stall}");
    }

    #[test]
    fn improves_true_qoe_over_fugu_on_tight_links() {
        // The headline behavior: with ground-truth weights on a link that
        // cannot afford top bitrate everywhere, SENSEI-Fugu aligns quality
        // with sensitivity and wins on true QoE.
        let src = source();
        let enc = encoded(&src);
        let weights = SensitivityWeights::ground_truth(&src);
        let oracle = TrueQoe::default();
        let config = PlayerConfig::default();
        let mut sensei_total = 0.0;
        let mut fugu_total = 0.0;
        for seed in 0..6 {
            let trace = sensei_trace::generate::fcc_like(1500.0, 600, 100 + seed);
            let s = simulate(
                &src,
                &enc,
                &trace,
                &mut SenseiFugu::new(),
                &config,
                Some(&weights),
            )
            .unwrap();
            let f = simulate(&src, &enc, &trace, &mut crate::Fugu::new(), &config, None).unwrap();
            sensei_total += oracle.qoe01(&src, &s.render).unwrap();
            fugu_total += oracle.qoe01(&src, &f.render).unwrap();
        }
        assert!(
            sensei_total > fugu_total,
            "SENSEI-Fugu {sensei_total:.3} vs Fugu {fugu_total:.3}"
        );
    }

    #[test]
    fn no_pause_ablation_never_pauses() {
        let src = source();
        let enc = encoded(&src);
        let weights = SensitivityWeights::ground_truth(&src);
        let trace = sensei_trace::generate::hsdpa_like(1200.0, 600, 3);
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut SenseiFugu::without_pause_action(),
            &PlayerConfig::default(),
            Some(&weights),
        )
        .unwrap();
        let intentional: f64 = result
            .render
            .chunks()
            .iter()
            .map(|c| c.intentional_rebuffer_s)
            .sum();
        assert_eq!(intentional, 0.0);
    }

    #[test]
    fn runs_without_weights_in_manifest() {
        // A SENSEI player on a legacy manifest degrades to weighted=uniform.
        let src = source();
        let enc = encoded(&src);
        let trace = ThroughputTrace::constant("t", 2000.0, 600.0).unwrap();
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut SenseiFugu::new(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.levels.len(), src.num_chunks());
    }
}
