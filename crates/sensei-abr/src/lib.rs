//! Adaptive-bitrate algorithms for the SENSEI reproduction.
//!
//! The paper's baselines (§7.1) and SENSEI's variants of them (§5.2):
//!
//! * [`bba`] — Buffer-Based Adaptation (Huang et al. 2014): a reservoir/
//!   cushion map from buffer occupancy to bitrate. No explicit QoE
//!   objective, hence "cannot be optimized by SENSEI as is" (§5.1).
//! * [`predictor`] — harmonic-mean throughput prediction with discrete
//!   error scenarios `p(γ)`, the uncertainty model in Fugu's objective
//!   (Eq. 3).
//! * [`fugu`] — Fugu (Yan et al. 2020) as described by the paper: MPC over
//!   a horizon of h = 5 chunks maximizing expected KSQI chunk quality over
//!   throughput scenarios.
//! * [`sensei_fugu`] — SENSEI-Fugu (Eq. 4): the same controller with
//!   per-chunk weights in the objective and the intentional-rebuffering
//!   action.
//! * [`pensieve`] — Pensieve (Mao et al. 2017): an actor-critic policy
//!   trained in the simulator, rewarded by KSQI chunk quality.
//! * [`sensei_pensieve`] — SENSEI-Pensieve: weights of the next h chunks
//!   appended to the state, rebuffering added to the action space, reward
//!   reweighted (§5.2).
//! * [`offline`] — the idealistic §2.4 controllers that know the entire
//!   throughput trace, used to bound the potential gains (Fig. 6).
//! * [`das_ip`] — DAS-IP (Singh & Kumar, arXiv:1612.05864): a per-level
//!   index policy that replaces the MPC horizon enumeration with an
//!   `O(levels)` argmax, the fleet-scale cost point of the family.

// Ladder levels, plan indices, and horizon depths move between
// integer and f64 domains constantly; every float→index conversion
// is clamped to the ladder by construction, and counts stay far
// below 2^52. The merge-law cast rules are enforced where they
// matter (sensei-fleet) by sensei-lint's `no-lossy-cast`.
#![allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]

pub mod bba;
pub mod das_ip;
pub mod fugu;
pub mod offline;
pub mod pensieve;
pub mod predictor;
pub mod sensei_fugu;
pub mod sensei_pensieve;

pub use bba::Bba;
pub use das_ip::DasIp;
pub use fugu::Fugu;
pub use offline::OracleMpc;
pub use pensieve::{Pensieve, PensieveConfig};
pub use predictor::{ThroughputPredictor, ThroughputScenario};
pub use sensei_fugu::SenseiFugu;
pub use sensei_pensieve::SenseiPensieve;

/// Cross-chunk warm-start carry: the full winning plan of one chunk
/// step's search, committed so the *next* step can seed its incumbent
/// with the shifted suffix. Shared by the MPC family ([`Fugu`],
/// [`SenseiFugu`]'s inner search, [`OracleMpc`]); batched policies keep
/// one slot per lane, exactly like SENSEI-Fugu's per-lane pause ledger.
///
/// Seeding is **result-invariant**: the seed is scored with the exact
/// leaf arithmetic of the search it primes, so it is indistinguishable
/// from the search having visited that leaf first — a stale or
/// mismatched slot can only cost speed, never a bit. The only
/// correctness obligations are hygiene (invalidate on `reset`/`rebind`
/// and at batch boundaries so state never leaks across sessions) and
/// safety (every seeded level must index the current ladder).
#[derive(Debug, Clone, Default)]
pub(crate) struct WarmSlot {
    /// Whether `plan` holds a committed plan from chunk step `next_chunk`.
    valid: bool,
    /// The chunk step `plan` was committed at.
    next_chunk: usize,
    /// The committed winning plan (one ladder level per horizon depth).
    plan: Vec<usize>,
}

impl WarmSlot {
    /// Drops the carried plan (session/batch/trace boundary hygiene).
    pub(crate) fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Records `plan` as the winner of chunk step `next_chunk`.
    pub(crate) fn commit(&mut self, next_chunk: usize, plan: &[usize]) {
        self.valid = true;
        self.next_chunk = next_chunk;
        self.plan.clear();
        self.plan.extend_from_slice(plan);
    }

    /// Builds the warm-start seed for a search at `next_chunk` over
    /// horizon `h` into `seed`: the shifted suffix of the committed plan
    /// (step `t`'s plan minus its consumed first action), padded with its
    /// last level to fill the horizon. Returns false — and leaves the
    /// search unseeded — unless the slot holds the *immediately
    /// preceding* chunk step's plan and every seeded level indexes the
    /// ladder (`< n_levels`). Seed *quality* is irrelevant to
    /// correctness (any in-range plan is a real leaf); the guards only
    /// keep indexing safe and the carry per-session.
    pub(crate) fn seed_into(
        &self,
        next_chunk: usize,
        h: usize,
        n_levels: usize,
        seed: &mut Vec<usize>,
    ) -> bool {
        if !self.valid || h == 0 || next_chunk != self.next_chunk.wrapping_add(1) {
            return false;
        }
        seed.clear();
        if self.plan.len() > 1 {
            seed.extend_from_slice(&self.plan[1..]);
        }
        let pad = seed.last().copied().unwrap_or(0);
        seed.resize(h, pad);
        seed.iter().all(|&level| level < n_levels)
    }
}

/// Errors produced by ABR construction and training.
#[derive(Debug, Clone, PartialEq)]
pub enum AbrError {
    /// A hyperparameter is invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Training failed (empty corpus, simulator failure).
    Training(String),
    /// An underlying ML error.
    Ml(sensei_ml::MlError),
    /// An underlying simulator error.
    Sim(sensei_sim::SimError),
}

impl std::fmt::Display for AbrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbrError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            AbrError::Training(msg) => write!(f, "training failed: {msg}"),
            AbrError::Ml(e) => write!(f, "ml error: {e}"),
            AbrError::Sim(e) => write!(f, "sim error: {e}"),
        }
    }
}

impl std::error::Error for AbrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AbrError::Ml(e) => Some(e),
            AbrError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sensei_ml::MlError> for AbrError {
    fn from(e: sensei_ml::MlError) -> Self {
        AbrError::Ml(e)
    }
}

impl From<sensei_sim::SimError> for AbrError {
    fn from(e: sensei_sim::SimError) -> Self {
        AbrError::Sim(e)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for ABR tests.
    use sensei_video::content::{Genre, SceneKind, SceneSpec};
    use sensei_video::{BitrateLadder, EncodedVideo, SourceVideo};

    /// A 20-chunk sports-like video with a key moment in the second half.
    pub fn source() -> SourceVideo {
        SourceVideo::from_script(
            "abr-test",
            Genre::Sports,
            &[
                SceneSpec::new(SceneKind::NormalPlay, 8),
                SceneSpec::new(SceneKind::Scenic, 4),
                SceneSpec::new(SceneKind::KeyMoment, 4),
                SceneSpec::new(SceneKind::NormalPlay, 4),
            ],
            55,
        )
        .unwrap()
    }

    pub fn encoded(src: &SourceVideo) -> EncodedVideo {
        EncodedVideo::encode(src, &BitrateLadder::default_paper(), 5)
    }
}
