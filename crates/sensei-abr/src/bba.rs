//! Buffer-Based Adaptation (BBA).
//!
//! Huang et al. (SIGCOMM 2014): pick the bitrate as a function of buffer
//! occupancy alone — a *reservoir* of low-bitrate safety at the bottom, a
//! linear *cushion* mapping buffer to bitrate, and the top rate beyond.
//! BBA is the paper's common baseline (every Fig. 12–14 gain is "over
//! BBA").

use sensei_sim::{AbrPolicy, BatchStates, Decision, PlayerState, SessionContext};

/// The BBA policy.
#[derive(Debug, Clone)]
pub struct Bba {
    /// Buffer level below which the lowest bitrate is forced, seconds.
    reservoir_s: f64,
    /// Width of the linear mapping region, seconds.
    cushion_s: f64,
}

impl Bba {
    /// Builds BBA with explicit reservoir/cushion (both must be positive).
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters (configuration bug, not runtime
    /// input).
    pub fn new(reservoir_s: f64, cushion_s: f64) -> Self {
        assert!(
            reservoir_s > 0.0 && cushion_s > 0.0,
            "BBA reservoir/cushion must be positive: {reservoir_s}, {cushion_s}"
        );
        Self {
            reservoir_s,
            cushion_s,
        }
    }

    /// Paper-scale defaults for a 24-second buffer cap: 5 s reservoir,
    /// 14 s cushion.
    pub fn paper_default() -> Self {
        Self::new(5.0, 14.0)
    }

    /// The buffer→level map, exposed for tests.
    pub fn level_for_buffer(&self, buffer_s: f64, num_levels: usize) -> usize {
        if num_levels == 0 {
            return 0;
        }
        let top = num_levels - 1;
        if buffer_s <= self.reservoir_s {
            0
        } else if buffer_s >= self.reservoir_s + self.cushion_s {
            top
        } else {
            let frac = (buffer_s - self.reservoir_s) / self.cushion_s;
            ((frac * top as f64).floor() as usize).min(top)
        }
    }
}

impl AbrPolicy for Bba {
    fn name(&self) -> &str {
        "BBA"
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        Decision::level(self.level_for_buffer(state.buffer_s, ctx.num_levels()))
    }

    /// BBA's threshold rule is a pure function of buffer occupancy, so the
    /// batched entry point maps the whole lane-buffer slice through the
    /// reservoir/cushion map in one tight loop — one virtual call per
    /// chunk step instead of one per lane, and a loop the compiler can
    /// unroll and vectorize.
    fn select_batch(
        &mut self,
        states: &BatchStates<'_>,
        ctx: &SessionContext<'_>,
        out: &mut [Decision],
    ) {
        let num_levels = ctx.num_levels();
        for (slot, &buffer_s) in out.iter_mut().zip(states.buffers()) {
            *slot = Decision::level(self.level_for_buffer(buffer_s, num_levels));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_sim::{simulate, PlayerConfig};
    use sensei_trace::ThroughputTrace;

    #[test]
    fn map_is_monotone_in_buffer() {
        let bba = Bba::paper_default();
        let mut prev = 0;
        for b in 0..30 {
            let level = bba.level_for_buffer(b as f64, 5);
            assert!(level >= prev, "level dropped as buffer grew");
            prev = level;
        }
    }

    #[test]
    fn reservoir_and_cushion_boundaries() {
        let bba = Bba::new(5.0, 10.0);
        assert_eq!(bba.level_for_buffer(0.0, 5), 0);
        assert_eq!(bba.level_for_buffer(5.0, 5), 0);
        assert_eq!(bba.level_for_buffer(15.0, 5), 4);
        assert_eq!(bba.level_for_buffer(100.0, 5), 4);
        // Mid-cushion sits mid-ladder.
        let mid = bba.level_for_buffer(10.0, 5);
        assert!((1..=3).contains(&mid));
    }

    #[test]
    #[should_panic(expected = "reservoir")]
    fn rejects_bad_parameters() {
        let _ = Bba::new(0.0, 10.0);
    }

    #[test]
    fn ramps_up_on_a_fast_link_with_few_stalls() {
        let src = source();
        let enc = encoded(&src);
        let trace = ThroughputTrace::constant("fast", 8000.0, 600.0).unwrap();
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut Bba::paper_default(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        // Starts conservative, reaches the top rate once the buffer fills.
        assert_eq!(result.levels[0], 0);
        assert_eq!(*result.levels.last().unwrap(), 4);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 0.5, "stalls = {stalls}");
    }

    #[test]
    fn stays_low_on_a_slow_link() {
        let src = source();
        let enc = encoded(&src);
        let trace = ThroughputTrace::constant("slow", 500.0, 600.0).unwrap();
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut Bba::paper_default(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        assert!(result.render.avg_bitrate_kbps() < 800.0);
    }
}
