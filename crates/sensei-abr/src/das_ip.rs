//! DAS-IP: an index policy for bitrate adaptation, after Singh & Kumar,
//! "Optimal Adaptive Bitrate Streaming via Index Policies"
//! (arXiv:1612.05864), who show the MPC horizon enumeration can be
//! replaced by a per-level *index* — a Whittle-style scalar computed from
//! the current buffer level and predicted throughput — whose argmax is the
//! bitrate choice. Complexity per decision is `O(levels × scenarios)`
//! with no horizon tree at all, which is what makes MPC-quality control
//! affordable at fleet scale.
//!
//! ## The index
//!
//! For candidate level `l` under throughput scenario `s` (probability
//! `p_s`, rate `r_s` from the same hedged harmonic-mean predictor Fugu
//! uses), the policy simulates exactly one chunk:
//!
//! ```text
//! dt_ls    = rtt + size_l / r_s                     (download time)
//! stall_ls = max(dt_ls − buffer, 0)
//! buf'_ls  = min(max(buffer − dt_ls, 0) + d, B_max) (post-chunk buffer)
//! ```
//!
//! and scores `index_l = Σ_s p_s · [ q(vq_l, risk · stall_ls, switch_l)
//! + κ · min(buf'_ls, B_safe) / B_safe ]`, where `q` is the canonical
//! KSQI chunk quality the MPC family plans against. The first term is the
//! myopic expected quality of downloading `l` right now; the second is
//! the *buffer subsidy* — the index-policy analogue of the passive
//! action's value in a Whittle decomposition — which credits levels that
//! leave headroom for future chunks and is what substitutes for the
//! horizon lookahead. `κ` is calibrated so the subsidy trades against
//! roughly one ladder step of visual quality across the safe range
//! `[0, B_safe]`.

use crate::predictor::ThroughputPredictor;
use sensei_qoe::Ksqi;
use sensei_sim::{AbrPolicy, BatchStates, Decision, PlayerState, SessionContext};

/// Reusable per-decision scratch (see the MPC family's scratch pattern).
#[derive(Debug, Clone, Default)]
struct IndexScratch {
    /// Scenario `(probability, kbps)` pairs.
    rates: Vec<(f64, f64)>,
    /// Per-level chunk size in bits at the next chunk.
    sizes: Vec<f64>,
    /// Per-level visual quality at the next chunk.
    vqs: Vec<f64>,
}

/// The DAS-IP index policy.
#[derive(Debug, Clone)]
pub struct DasIp {
    predictor: ThroughputPredictor,
    qoe: Ksqi,
    rtt_s: f64,
    max_buffer_s: f64,
    /// Stall multiplier during scoring, kept equal to the MPC family's so
    /// the two control families price rebuffering identically.
    risk_aversion: f64,
    /// `κ`: weight of the buffer subsidy against KSQI quality units.
    safety_weight: f64,
    /// `B_safe`: buffer level (seconds) past which more headroom earns no
    /// further subsidy.
    safe_buffer_s: f64,
    scratch: IndexScratch,
}

impl DasIp {
    /// Builds DAS-IP with the default predictor and canonical KSQI.
    pub fn new() -> Self {
        Self {
            predictor: ThroughputPredictor::default(),
            qoe: Ksqi::canonical(),
            rtt_s: 0.08,
            max_buffer_s: 24.0,
            risk_aversion: 3.0,
            safety_weight: 1.5,
            safe_buffer_s: 12.0,
            scratch: IndexScratch::default(),
        }
    }

    /// Overrides the throughput predictor.
    pub fn with_predictor(mut self, predictor: ThroughputPredictor) -> Self {
        self.predictor = predictor;
        self
    }

    /// Overrides the QoE model the index scores against.
    pub fn with_qoe(mut self, qoe: Ksqi) -> Self {
        self.qoe = qoe;
        self
    }

    /// Fills the per-level size/vq row for `next_chunk`. The row is
    /// lane-invariant, so the batched entry point fills it once per chunk
    /// step for the whole tile.
    fn fill_chunk_row(&mut self, next_chunk: usize, ctx: &SessionContext<'_>) {
        let n_levels = ctx.num_levels();
        self.scratch.sizes.clear();
        self.scratch.vqs.clear();
        for level in 0..n_levels {
            self.scratch.sizes.push(
                ctx.encoded
                    .size_bits(next_chunk, level)
                    .expect("next chunk in range"),
            );
            self.scratch.vqs.push(ctx.vq[next_chunk][level]);
        }
    }

    /// Computes every level's index and returns the argmax (first winner
    /// on ties, matching the MPC family's strictly-greater updates),
    /// assuming [`Self::fill_chunk_row`] has run for `state.next_chunk`.
    fn decide_prepared(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        let IndexScratch { rates, sizes, vqs } = &mut self.scratch;
        self.predictor.scenario_rates_into(state, rates);
        let d = ctx.chunk_duration_s;
        let prev = state
            .last_level
            .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
        let mut best_level = 0usize;
        let mut best_index = f64::NEG_INFINITY;
        for (level, (&size, &vq)) in sizes.iter().zip(vqs.iter()).enumerate() {
            let switch = match prev {
                Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                _ => 0.0,
            };
            let mut index = 0.0;
            for &(p, rate_kbps) in rates.iter() {
                let dt = self.rtt_s + size / (rate_kbps * 1000.0);
                let stall = (dt - state.buffer_s).max(0.0);
                let mut buf = (state.buffer_s - dt).max(0.0) + d;
                buf = buf.min(self.max_buffer_s);
                let q = self
                    .qoe
                    .chunk_quality(vq, stall * self.risk_aversion, switch, d);
                let subsidy =
                    self.safety_weight * (buf.min(self.safe_buffer_s) / self.safe_buffer_s);
                index += p * (q + subsidy);
            }
            if index > best_index {
                best_index = index;
                best_level = level;
            }
        }
        Decision::level(best_level)
    }
}

impl Default for DasIp {
    fn default() -> Self {
        Self::new()
    }
}

impl AbrPolicy for DasIp {
    fn name(&self) -> &str {
        "DAS-IP"
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        if state.next_chunk >= ctx.num_chunks() {
            return Decision::level(0);
        }
        self.fill_chunk_row(state.next_chunk, ctx);
        self.decide_prepared(state, ctx)
    }

    /// Scores every lane of the batch in one pass over the shared
    /// per-level size/vq row (all lanes of a tile sit at the same chunk),
    /// leaving only the O(levels × scenarios) index fold in the lane
    /// loop. Bit-identical to [`Self::decide`] per lane.
    fn select_batch(
        &mut self,
        states: &BatchStates<'_>,
        ctx: &SessionContext<'_>,
        out: &mut [Decision],
    ) {
        if states.next_chunk() >= ctx.num_chunks() {
            for slot in out.iter_mut().take(states.len()) {
                *slot = Decision::level(0);
            }
            return;
        }
        self.fill_chunk_row(states.next_chunk(), ctx);
        for (i, slot) in out.iter_mut().enumerate().take(states.len()) {
            let state = states.state(i);
            *slot = self.decide_prepared(&state, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_sim::{simulate, PlayerConfig};
    use sensei_trace::ThroughputTrace;

    fn run(trace_kbps: f64) -> sensei_sim::SessionResult {
        let src = source();
        let enc = encoded(&src);
        let trace = ThroughputTrace::constant("t", trace_kbps, 600.0).unwrap();
        simulate(
            &src,
            &enc,
            &trace,
            &mut DasIp::new(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap()
    }

    #[test]
    fn high_bandwidth_reaches_top_rate_without_stalls() {
        let result = run(10_000.0);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 0.2, "stalls = {stalls}");
        let tail: Vec<usize> = result.levels[10..].to_vec();
        assert!(tail.iter().all(|&l| l == 4), "tail = {tail:?}");
    }

    #[test]
    fn low_bandwidth_stays_low_and_avoids_stalls() {
        let result = run(700.0);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 1.0, "stalls = {stalls}");
        assert!(result.render.avg_bitrate_kbps() < 1000.0);
    }

    #[test]
    fn tracks_fugu_on_variable_traces() {
        // The index policy must stay in the MPC family's QoE
        // neighbourhood (that is its entire reason to exist) at a tiny
        // fraction of the planning cost.
        let src = source();
        let enc = encoded(&src);
        let qoe = Ksqi::canonical();
        let config = PlayerConfig::default();
        let mut das_total = 0.0;
        let mut fugu_total = 0.0;
        for seed in 0..6 {
            let trace = sensei_trace::generate::fcc_like(1800.0, 600, 200 + seed);
            let i = simulate(&src, &enc, &trace, &mut DasIp::new(), &config, None).unwrap();
            let f = simulate(&src, &enc, &trace, &mut crate::Fugu::new(), &config, None).unwrap();
            das_total += sensei_qoe::QoeModel::predict(&qoe, &i.render).unwrap();
            fugu_total += sensei_qoe::QoeModel::predict(&qoe, &f.render).unwrap();
        }
        let das = das_total / 6.0;
        let fugu = fugu_total / 6.0;
        assert!(
            das > fugu - 0.35,
            "DAS-IP {das:.3} fell out of Fugu's neighbourhood ({fugu:.3})"
        );
    }

    #[test]
    fn buffer_subsidy_tempers_greed_when_starved() {
        // With a starved buffer the index must not pick the same level a
        // pure myopic-quality argmax would on a generous estimate.
        let src = source();
        let enc = encoded(&src);
        let ctx = SessionContext {
            encoded: &enc,
            vq: enc.vq_table(),
            weights: None,
            chunk_duration_s: src.chunk_duration_s(),
        };
        let mut das = DasIp::new();
        let hist = [2500.0; 5];
        let dts = [1.0; 5];
        let starved = PlayerState {
            next_chunk: 5,
            buffer_s: 1.0,
            last_level: Some(2),
            throughput_history_kbps: &hist,
            download_time_history_s: &dts,
            elapsed_s: 20.0,
            playing: true,
        };
        let mut flush = starved;
        flush.buffer_s = 20.0;
        let lean = das.decide(&starved, &ctx).level;
        let rich = das.decide(&flush, &ctx).level;
        assert!(
            lean <= rich,
            "starved pick {lean} should not exceed flush pick {rich}"
        );
    }
}
