//! Fugu: model-predictive bitrate control (Eq. 3).
//!
//! As §5.2 describes it: "before downloading the i-th chunk, Fugu considers
//! the throughput prediction for the next h chunks. For any throughput
//! variation γ (with predicted probability p(γ)) and bitrate selection B,
//! it simulates when each of the next h chunks will be downloaded and
//! estimates the rebuffering time of each chunk. It then picks the bitrate
//! vector maximizing the expected total quality", where per-chunk quality
//! `q(b, t)` is a simplified KSQI.
//!
//! This module implements exactly that: exhaustive enumeration of bitrate
//! plans over the horizon, a per-scenario buffer walk, and the canonical
//! KSQI chunk quality.

use crate::predictor::ThroughputPredictor;
use sensei_qoe::Ksqi;
use sensei_sim::{AbrPolicy, Decision, PlayerState, SessionContext};

/// The paper's planning horizon ("We pick h = 5 since we observe that QoE
/// gains flatten beyond a horizon of 4 chunks").
pub const DEFAULT_HORIZON: usize = 5;

/// The Fugu MPC policy.
#[derive(Debug, Clone)]
pub struct Fugu {
    predictor: ThroughputPredictor,
    qoe: Ksqi,
    horizon: usize,
    rtt_s: f64,
    max_buffer_s: f64,
    /// Multiplier on predicted stall time during planning. Deployed MPC
    /// controllers weight rebuffering far above its average-QoE cost
    /// because real raters judge sessions by their worst moment; planning
    /// risk-neutrally against a mean-additive model stalls too often.
    risk_aversion: f64,
}

impl Fugu {
    /// Builds Fugu with the default predictor and canonical KSQI.
    pub fn new() -> Self {
        Self {
            predictor: ThroughputPredictor::default(),
            qoe: Ksqi::canonical(),
            horizon: DEFAULT_HORIZON,
            rtt_s: 0.08,
            max_buffer_s: 24.0,
            risk_aversion: 3.0,
        }
    }

    /// Overrides the stall risk-aversion multiplier used during planning.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not at least 1 (planning must never treat
    /// stalls as cheaper than the QoE model does).
    pub fn with_risk_aversion(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "risk aversion must be >= 1, got {factor}");
        self.risk_aversion = factor;
        self
    }

    /// The stall risk-aversion multiplier in effect.
    pub fn risk_aversion(&self) -> f64 {
        self.risk_aversion
    }

    /// Overrides the throughput predictor (window and scenario set).
    pub fn with_predictor(mut self, predictor: ThroughputPredictor) -> Self {
        self.predictor = predictor;
        self
    }

    /// The throughput predictor in effect.
    pub fn predictor(&self) -> &ThroughputPredictor {
        &self.predictor
    }

    /// Overrides the QoE model used as the objective (the paper fits KSQI
    /// for fairness across all algorithms).
    pub fn with_qoe(mut self, qoe: Ksqi) -> Self {
        self.qoe = qoe;
        self
    }

    /// Overrides the planning horizon.
    ///
    /// # Panics
    ///
    /// Panics when `horizon` is 0 (configuration bug).
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be at least 1");
        self.horizon = horizon;
        self
    }

    /// Scores one bitrate plan under one throughput scenario: a buffer walk
    /// yielding Σ_j q(b_j, t_j).
    #[allow(clippy::too_many_arguments)]
    fn plan_quality(
        &self,
        plan: &[usize],
        rate_kbps: f64,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: Option<&[f64]>,
    ) -> f64 {
        let d = ctx.chunk_duration_s;
        let mut buf = state.buffer_s;
        let mut prev: Option<(f64, usize)> = state
            .last_level
            .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
        let mut total = 0.0;
        for (j, &level) in plan.iter().enumerate() {
            let chunk = state.next_chunk + j;
            let size = ctx
                .encoded
                .size_bits(chunk, level)
                .expect("plan stays in range");
            let dt = self.rtt_s + size / (rate_kbps * 1000.0);
            let stall = (dt - buf).max(0.0);
            buf = (buf - dt).max(0.0) + d;
            buf = buf.min(self.max_buffer_s);
            let vq = ctx.vq[chunk][level];
            let switch = match prev {
                Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                _ => 0.0,
            };
            prev = Some((vq, level));
            let q = self
                .qoe
                .chunk_quality(vq, stall * self.risk_aversion, switch, d);
            total += weights.map_or(q, |w| w[j] * q);
        }
        total
    }

    /// Expected plan quality against pre-resolved scenario rates.
    /// The rates depend on the player state alone, so plan enumeration
    /// resolves them once instead of re-allocating the scenario vector for
    /// each of the `levels^h` candidate plans.
    fn expected_plan_quality_with(
        &self,
        scenario_rates: &[(f64, f64)],
        plan: &[usize],
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: Option<&[f64]>,
    ) -> f64 {
        scenario_rates
            .iter()
            .map(|&(p, rate)| p * self.plan_quality(plan, rate, state, ctx, weights))
            .sum()
    }

    /// Enumerates all plans over the effective horizon; returns the best
    /// plan's first action and its expected quality.
    pub(crate) fn best_plan(
        &self,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: Option<&[f64]>,
    ) -> (usize, f64) {
        let n_levels = ctx.num_levels();
        let remaining = ctx.num_chunks() - state.next_chunk;
        let h = self.horizon.min(remaining);
        if h == 0 {
            return (0, 0.0);
        }
        let scenario_rates = self.predictor.scenario_rates(state);
        let mut plan = vec![0usize; h];
        let mut best_plan0 = 0usize;
        let mut best_q = f64::NEG_INFINITY;
        loop {
            let q = self.expected_plan_quality_with(&scenario_rates, &plan, state, ctx, weights);
            if q > best_q {
                best_q = q;
                best_plan0 = plan[0];
            }
            // Odometer increment over the plan space.
            let mut pos = h;
            loop {
                if pos == 0 {
                    return (best_plan0, best_q);
                }
                pos -= 1;
                plan[pos] += 1;
                if plan[pos] < n_levels {
                    break;
                }
                plan[pos] = 0;
            }
        }
    }
}

impl Default for Fugu {
    fn default() -> Self {
        Self::new()
    }
}

impl AbrPolicy for Fugu {
    fn name(&self) -> &str {
        "Fugu"
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        Decision::level(self.best_plan(state, ctx, None).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_sim::{simulate, PlayerConfig};
    use sensei_trace::ThroughputTrace;

    fn run(trace_kbps: f64) -> sensei_sim::SessionResult {
        let src = source();
        let enc = encoded(&src);
        let trace = ThroughputTrace::constant("t", trace_kbps, 600.0).unwrap();
        simulate(
            &src,
            &enc,
            &trace,
            &mut Fugu::new(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap()
    }

    #[test]
    fn high_bandwidth_reaches_top_rate_without_stalls() {
        let result = run(10_000.0);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 0.2, "stalls = {stalls}");
        // The tail of the session should run at the top bitrate.
        let tail: Vec<usize> = result.levels[10..].to_vec();
        assert!(tail.iter().all(|&l| l == 4), "tail = {tail:?}");
    }

    #[test]
    fn low_bandwidth_stays_low_and_avoids_stalls() {
        let result = run(700.0);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 1.0, "stalls = {stalls}");
        assert!(result.render.avg_bitrate_kbps() < 1000.0);
    }

    #[test]
    fn beats_bba_on_variable_traces() {
        use crate::bba::Bba;
        let src = source();
        let enc = encoded(&src);
        let qoe = Ksqi::canonical();
        let mut fugu_total = 0.0;
        let mut bba_total = 0.0;
        for seed in 0..5 {
            let trace = sensei_trace::generate::fcc_like(1800.0, 600, seed);
            let config = PlayerConfig::default();
            let f = simulate(&src, &enc, &trace, &mut Fugu::new(), &config, None).unwrap();
            let b = simulate(&src, &enc, &trace, &mut Bba::paper_default(), &config, None).unwrap();
            fugu_total += sensei_qoe::QoeModel::predict(&qoe, &f.render).unwrap();
            bba_total += sensei_qoe::QoeModel::predict(&qoe, &b.render).unwrap();
        }
        assert!(
            fugu_total > bba_total,
            "Fugu {fugu_total:.3} should beat BBA {bba_total:.3} on its own objective"
        );
    }

    #[test]
    fn horizon_truncates_at_video_end() {
        // A 3-chunk video with horizon 5 must not panic.
        let src = sensei_video::SourceVideo::from_script(
            "short",
            sensei_video::Genre::Sports,
            &[sensei_video::content::SceneSpec::new(
                sensei_video::SceneKind::NormalPlay,
                3,
            )],
            1,
        )
        .unwrap();
        let enc = sensei_video::EncodedVideo::encode(
            &src,
            &sensei_video::BitrateLadder::default_paper(),
            1,
        );
        let trace = ThroughputTrace::constant("t", 3000.0, 600.0).unwrap();
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut Fugu::new(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.levels.len(), 3);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_is_rejected() {
        let _ = Fugu::new().with_horizon(0);
    }
}
