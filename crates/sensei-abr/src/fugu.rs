//! Fugu: model-predictive bitrate control (Eq. 3).
//!
//! As §5.2 describes it: "before downloading the i-th chunk, Fugu considers
//! the throughput prediction for the next h chunks. For any throughput
//! variation γ (with predicted probability p(γ)) and bitrate selection B,
//! it simulates when each of the next h chunks will be downloaded and
//! estimates the rebuffering time of each chunk. It then picks the bitrate
//! vector maximizing the expected total quality", where per-chunk quality
//! `q(b, t)` is a simplified KSQI.
//!
//! This module implements exactly that: exhaustive enumeration of bitrate
//! plans over the horizon, a per-scenario buffer walk, and the canonical
//! KSQI chunk quality.

use crate::predictor::ThroughputPredictor;
use sensei_qoe::Ksqi;
use sensei_sim::{AbrPolicy, Decision, PlayerState, SessionContext};

/// The paper's planning horizon ("We pick h = 5 since we observe that QoE
/// gains flatten beyond a horizon of 4 chunks").
pub const DEFAULT_HORIZON: usize = 5;

/// The Fugu MPC policy.
#[derive(Debug, Clone)]
pub struct Fugu {
    predictor: ThroughputPredictor,
    qoe: Ksqi,
    horizon: usize,
    rtt_s: f64,
    max_buffer_s: f64,
    /// Multiplier on predicted stall time during planning. Deployed MPC
    /// controllers weight rebuffering far above its average-QoE cost
    /// because real raters judge sessions by their worst moment; planning
    /// risk-neutrally against a mean-additive model stalls too often.
    risk_aversion: f64,
}

impl Fugu {
    /// Builds Fugu with the default predictor and canonical KSQI.
    pub fn new() -> Self {
        Self {
            predictor: ThroughputPredictor::default(),
            qoe: Ksqi::canonical(),
            horizon: DEFAULT_HORIZON,
            rtt_s: 0.08,
            max_buffer_s: 24.0,
            risk_aversion: 3.0,
        }
    }

    /// Overrides the stall risk-aversion multiplier used during planning.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not at least 1 (planning must never treat
    /// stalls as cheaper than the QoE model does).
    pub fn with_risk_aversion(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "risk aversion must be >= 1, got {factor}");
        self.risk_aversion = factor;
        self
    }

    /// The stall risk-aversion multiplier in effect.
    pub fn risk_aversion(&self) -> f64 {
        self.risk_aversion
    }

    /// Overrides the throughput predictor (window and scenario set).
    pub fn with_predictor(mut self, predictor: ThroughputPredictor) -> Self {
        self.predictor = predictor;
        self
    }

    /// The throughput predictor in effect.
    pub fn predictor(&self) -> &ThroughputPredictor {
        &self.predictor
    }

    /// Overrides the QoE model used as the objective (the paper fits KSQI
    /// for fairness across all algorithms).
    pub fn with_qoe(mut self, qoe: Ksqi) -> Self {
        self.qoe = qoe;
        self
    }

    /// Overrides the planning horizon.
    ///
    /// # Panics
    ///
    /// Panics when `horizon` is 0 (configuration bug).
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be at least 1");
        self.horizon = horizon;
        self
    }

    /// Enumerates all plans over the effective horizon; returns the best
    /// plan's first action and its expected quality.
    ///
    /// The enumeration runs as a depth-first walk over the plan *tree*
    /// rather than a flat odometer over the `levels^h` plan list: the
    /// `levels^(j+1)` plans sharing a length-`j+1` prefix share that
    /// prefix's buffer walk, so each prefix is scored **once** instead of
    /// once per completion — `Σ_j levels^j ≈ levels^h · levels/(levels−1)`
    /// chunk evaluations instead of `levels^h · h`, an ~`h`-fold cut at
    /// the paper's horizon. Leaves are visited in exactly the odometer's
    /// lexicographic order and every per-chunk operation is performed in
    /// the same sequence, so the winning plan, its score, and every
    /// tie-break are bit-identical to the flat enumeration (asserted
    /// against a reference odometer in this module's tests).
    pub(crate) fn best_plan(
        &self,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: Option<&[f64]>,
    ) -> (usize, f64) {
        let n_levels = ctx.num_levels();
        let remaining = ctx.num_chunks() - state.next_chunk;
        let h = self.horizon.min(remaining);
        if h == 0 {
            return (0, 0.0);
        }
        let scenario_rates = self.predictor.scenario_rates(state);
        let prev = state
            .last_level
            .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
        // One per-scenario running state per tree depth: row 0 is the
        // pre-plan state, row j+1 the state after the length-(j+1) prefix.
        let mut search = PlanSearch {
            rtt_s: self.rtt_s,
            max_buffer_s: self.max_buffer_s,
            risk_aversion: self.risk_aversion,
            qoe: &self.qoe,
            ctx,
            weights,
            next_chunk: state.next_chunk,
            h,
            n_levels,
            rates: &scenario_rates,
            stack: vec![
                ScenarioWalk {
                    buf: state.buffer_s,
                    prev,
                    total: 0.0,
                };
                (h + 1) * scenario_rates.len()
            ],
            best_q: f64::NEG_INFINITY,
            best_plan0: 0,
        };
        search.descend(0, 0);
        (search.best_plan0, search.best_q)
    }
}

/// Per-scenario running state of one plan prefix: the buffer walk's
/// position, the previous chunk's `(vq, level)` for switch penalties, and
/// the accumulated weighted quality.
#[derive(Debug, Clone, Copy)]
struct ScenarioWalk {
    buf: f64,
    prev: Option<(f64, usize)>,
    total: f64,
}

/// Depth-first plan enumeration state (see [`Fugu::best_plan`]).
struct PlanSearch<'a, 'b> {
    rtt_s: f64,
    max_buffer_s: f64,
    risk_aversion: f64,
    qoe: &'a Ksqi,
    ctx: &'a SessionContext<'b>,
    weights: Option<&'a [f64]>,
    next_chunk: usize,
    h: usize,
    n_levels: usize,
    rates: &'a [(f64, f64)],
    /// `(h + 1) × scenarios` rows of running state, indexed by depth.
    stack: Vec<ScenarioWalk>,
    best_q: f64,
    best_plan0: usize,
}

impl PlanSearch<'_, '_> {
    /// Extends every scenario's walk at `depth` by `level`, writing the
    /// child row; identical arithmetic (and order) to one iteration of
    /// the flat plan scorer's buffer walk.
    fn step(&mut self, depth: usize, level: usize) {
        let s = self.rates.len();
        let d = self.ctx.chunk_duration_s;
        let chunk = self.next_chunk + depth;
        let size = self
            .ctx
            .encoded
            .size_bits(chunk, level)
            .expect("plan stays in range");
        let vq = self.ctx.vq[chunk][level];
        for si in 0..s {
            let parent = self.stack[depth * s + si];
            let rate_kbps = self.rates[si].1;
            let dt = self.rtt_s + size / (rate_kbps * 1000.0);
            let stall = (dt - parent.buf).max(0.0);
            let mut buf = (parent.buf - dt).max(0.0) + d;
            buf = buf.min(self.max_buffer_s);
            let switch = match parent.prev {
                Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                _ => 0.0,
            };
            let q = self
                .qoe
                .chunk_quality(vq, stall * self.risk_aversion, switch, d);
            self.stack[(depth + 1) * s + si] = ScenarioWalk {
                buf,
                prev: Some((vq, level)),
                total: parent.total + self.weights.map_or(q, |w| w[depth] * q),
            };
        }
    }

    /// Recursively enumerates levels at `depth`; `plan0` is the root
    /// level of the current subtree (the candidate first action).
    fn descend(&mut self, depth: usize, plan0: usize) {
        let s = self.rates.len();
        for level in 0..self.n_levels {
            let plan0 = if depth == 0 { level } else { plan0 };
            self.step(depth, level);
            if depth + 1 == self.h {
                // Expected quality over the scenario set, folded in
                // scenario order from 0.0 — the same reduction the flat
                // enumeration performs per plan.
                let mut q = 0.0;
                for si in 0..s {
                    q += self.rates[si].0 * self.stack[(depth + 1) * s + si].total;
                }
                if q > self.best_q {
                    self.best_q = q;
                    self.best_plan0 = plan0;
                }
            } else {
                self.descend(depth + 1, plan0);
            }
        }
    }
}

impl Default for Fugu {
    fn default() -> Self {
        Self::new()
    }
}

impl AbrPolicy for Fugu {
    fn name(&self) -> &str {
        "Fugu"
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        Decision::level(self.best_plan(state, ctx, None).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_sim::{simulate, PlayerConfig};
    use sensei_trace::ThroughputTrace;

    fn run(trace_kbps: f64) -> sensei_sim::SessionResult {
        let src = source();
        let enc = encoded(&src);
        let trace = ThroughputTrace::constant("t", trace_kbps, 600.0).unwrap();
        simulate(
            &src,
            &enc,
            &trace,
            &mut Fugu::new(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap()
    }

    #[test]
    fn high_bandwidth_reaches_top_rate_without_stalls() {
        let result = run(10_000.0);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 0.2, "stalls = {stalls}");
        // The tail of the session should run at the top bitrate.
        let tail: Vec<usize> = result.levels[10..].to_vec();
        assert!(tail.iter().all(|&l| l == 4), "tail = {tail:?}");
    }

    #[test]
    fn low_bandwidth_stays_low_and_avoids_stalls() {
        let result = run(700.0);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 1.0, "stalls = {stalls}");
        assert!(result.render.avg_bitrate_kbps() < 1000.0);
    }

    #[test]
    fn beats_bba_on_variable_traces() {
        use crate::bba::Bba;
        let src = source();
        let enc = encoded(&src);
        let qoe = Ksqi::canonical();
        let mut fugu_total = 0.0;
        let mut bba_total = 0.0;
        for seed in 0..5 {
            let trace = sensei_trace::generate::fcc_like(1800.0, 600, seed);
            let config = PlayerConfig::default();
            let f = simulate(&src, &enc, &trace, &mut Fugu::new(), &config, None).unwrap();
            let b = simulate(&src, &enc, &trace, &mut Bba::paper_default(), &config, None).unwrap();
            fugu_total += sensei_qoe::QoeModel::predict(&qoe, &f.render).unwrap();
            bba_total += sensei_qoe::QoeModel::predict(&qoe, &b.render).unwrap();
        }
        assert!(
            fugu_total > bba_total,
            "Fugu {fugu_total:.3} should beat BBA {bba_total:.3} on its own objective"
        );
    }

    #[test]
    fn horizon_truncates_at_video_end() {
        // A 3-chunk video with horizon 5 must not panic.
        let src = sensei_video::SourceVideo::from_script(
            "short",
            sensei_video::Genre::Sports,
            &[sensei_video::content::SceneSpec::new(
                sensei_video::SceneKind::NormalPlay,
                3,
            )],
            1,
        )
        .unwrap();
        let enc = sensei_video::EncodedVideo::encode(
            &src,
            &sensei_video::BitrateLadder::default_paper(),
            1,
        );
        let trace = ThroughputTrace::constant("t", 3000.0, 600.0).unwrap();
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut Fugu::new(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.levels.len(), 3);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_is_rejected() {
        let _ = Fugu::new().with_horizon(0);
    }

    /// The pre-refactor flat enumeration, kept as the reference the
    /// prefix-sharing DFS must reproduce bit for bit: every plan scored
    /// from scratch by an independent buffer walk per scenario, plans
    /// visited in odometer (lexicographic) order.
    fn reference_best_plan(
        fugu: &Fugu,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: Option<&[f64]>,
    ) -> (usize, f64) {
        let plan_quality = |plan: &[usize], rate_kbps: f64| -> f64 {
            let d = ctx.chunk_duration_s;
            let mut buf = state.buffer_s;
            let mut prev: Option<(f64, usize)> = state
                .last_level
                .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
            let mut total = 0.0;
            for (j, &level) in plan.iter().enumerate() {
                let chunk = state.next_chunk + j;
                let size = ctx.encoded.size_bits(chunk, level).unwrap();
                let dt = 0.08 + size / (rate_kbps * 1000.0);
                let stall = (dt - buf).max(0.0);
                buf = (buf - dt).max(0.0) + d;
                buf = buf.min(24.0);
                let vq = ctx.vq[chunk][level];
                let switch = match prev {
                    Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                    _ => 0.0,
                };
                prev = Some((vq, level));
                let q =
                    Ksqi::canonical().chunk_quality(vq, stall * fugu.risk_aversion(), switch, d);
                total += weights.map_or(q, |w| w[j] * q);
            }
            total
        };
        let n_levels = ctx.num_levels();
        let h = DEFAULT_HORIZON.min(ctx.num_chunks() - state.next_chunk);
        let scenario_rates = fugu.predictor().scenario_rates(state);
        let mut plan = vec![0usize; h];
        let mut best_plan0 = 0usize;
        let mut best_q = f64::NEG_INFINITY;
        loop {
            let q: f64 = scenario_rates
                .iter()
                .map(|&(p, rate)| p * plan_quality(&plan, rate))
                .sum();
            if q > best_q {
                best_q = q;
                best_plan0 = plan[0];
            }
            let mut pos = h;
            loop {
                if pos == 0 {
                    return (best_plan0, best_q);
                }
                pos -= 1;
                plan[pos] += 1;
                if plan[pos] < n_levels {
                    break;
                }
                plan[pos] = 0;
            }
        }
    }

    #[test]
    fn dfs_enumeration_matches_the_flat_reference_bit_for_bit() {
        use sensei_sim::SessionContext;
        let src = source();
        let enc = encoded(&src);
        let ctx = SessionContext {
            encoded: &enc,
            vq: enc.vq_table(),
            weights: None,
            chunk_duration_s: src.chunk_duration_s(),
        };
        let fugu = Fugu::new();
        let weight_rows: [Option<Vec<f64>>; 2] =
            [None, Some(vec![1.4, 0.6, 1.0, 2.0, 0.8, 1.1, 0.9])];
        // A spread of buffer levels, histories, and positions — including
        // the truncated-horizon video tail and near-tie states.
        let histories: [&[f64]; 3] = [
            &[1200.0, 900.0, 1500.0],
            &[400.0, 420.0, 380.0, 410.0, 395.0],
            &[5000.0; 6],
        ];
        for weights in &weight_rows {
            for hist in histories {
                for next_chunk in [0, 3, src.num_chunks() - 3, src.num_chunks() - 1] {
                    for buffer_s in [0.5, 4.0, 11.0, 23.0] {
                        let state = PlayerState {
                            next_chunk,
                            buffer_s,
                            last_level: Some(2),
                            throughput_history_kbps: hist,
                            download_time_history_s: &[1.0; 6][..hist.len()],
                            elapsed_s: 30.0,
                            playing: true,
                        };
                        let w = weights
                            .as_deref()
                            .map(|w| &w[..DEFAULT_HORIZON.min(src.num_chunks() - next_chunk)]);
                        let fast = fugu.best_plan(&state, &ctx, w);
                        let slow = reference_best_plan(&fugu, &state, &ctx, w);
                        assert_eq!(fast.0, slow.0, "chosen level at chunk {next_chunk}");
                        assert_eq!(
                            fast.1.to_bits(),
                            slow.1.to_bits(),
                            "plan score at chunk {next_chunk} (buffer {buffer_s})"
                        );
                    }
                }
            }
        }
    }
}
