//! Fugu: model-predictive bitrate control (Eq. 3).
//!
//! As §5.2 describes it: "before downloading the i-th chunk, Fugu considers
//! the throughput prediction for the next h chunks. For any throughput
//! variation γ (with predicted probability p(γ)) and bitrate selection B,
//! it simulates when each of the next h chunks will be downloaded and
//! estimates the rebuffering time of each chunk. It then picks the bitrate
//! vector maximizing the expected total quality", where per-chunk quality
//! `q(b, t)` is a simplified KSQI.
//!
//! This module implements exactly that: exhaustive enumeration of bitrate
//! plans over the horizon, a per-scenario buffer walk, and the canonical
//! KSQI chunk quality. Five structural optimizations keep the enumeration
//! fast without changing a single result bit (asserted against a flat
//! reference odometer in this module's tests and the warm-vs-cold parity
//! suite):
//!
//! 1. **Prefix sharing** — plans are enumerated as a depth-first tree so
//!    every shared prefix is scored once (an ~h-fold cut).
//! 2. **Hoisted tables** — the per-(chunk, level, scenario) download time
//!    `rtt + size/rate` and the per-(chunk, level) size/vq lookups are
//!    state-independent within one decision, so they are computed once
//!    into reusable scratch instead of once per tree node.
//! 3. **Exact branch-and-bound with guided order** — subtrees are
//!    explored most-promising-first and skipped when a floating-point-
//!    monotone upper bound on every leaf they contain shows they cannot
//!    change the result. The update rule tracks exactly the pair the
//!    lexicographic reference returns — the maximum score and the
//!    smallest first action attaining it — so neither the visit order
//!    nor the pruning can move a single result bit.
//! 4. **Cross-chunk warm starts** — consecutive decisions solve almost
//!    the same problem shifted by one chunk, so the shifted suffix of
//!    step *t*'s winning plan is a feasible leaf of step *t+1*'s tree.
//!    It is scored first with the exact leaf arithmetic and seeds the
//!    incumbent, so the very first `descend` already prunes against a
//!    near-optimal bound. Seeding is indistinguishable from the search
//!    having visited that leaf first: the tie machinery (`==` wins only
//!    with a smaller first action) guarantees the lexicographic winner
//!    is still reached even when the seed's first action is larger.
//! 5. **Block leaf scoring** — the `n_levels` sibling leaves under one
//!    parent share everything but the level, so they are scored as one
//!    straight-line pass over dense per-scenario slices (shaped for the
//!    autovectorizer) and then reduced in the exact visit order, each
//!    element computing precisely one reference walk step.

use crate::predictor::ThroughputPredictor;
use crate::WarmSlot;
use sensei_qoe::Ksqi;
use sensei_sim::{AbrPolicy, BatchStates, Decision, PlayerState, SessionContext};
use sensei_telemetry as telemetry;
use sensei_trace::ThroughputTrace;

/// The paper's planning horizon ("We pick h = 5 since we observe that QoE
/// gains flatten beyond a horizon of 4 chunks").
pub const DEFAULT_HORIZON: usize = 5;

/// Reusable planning scratch: one allocation per policy instance instead
/// of several per decision. All tables are flat row-major arrays sized at
/// the start of each plan search.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanScratch {
    /// `(h + 1) × scenarios` rows of running walk state, indexed by depth.
    stack: Vec<ScenarioWalk>,
    /// Per-decision scenario `(probability, kbps)` pairs.
    rates: Vec<(f64, f64)>,
    /// `dt[depth·L·S + level·S + si]`: download time of `(chunk, level)`
    /// under scenario `si` — state-independent within one decision.
    dt: Vec<f64>,
    /// `sizes[depth·L + level]`: chunk size in bits.
    sizes: Vec<f64>,
    /// `vqs[depth·L + level]`: visual quality.
    vqs: Vec<f64>,
    /// `umax[depth·S + si]`: upper bound on the weighted quality any
    /// level can contribute at `depth` under scenario `si`, maximized
    /// over every (previous level, level) pair — switch penalty and
    /// stall lower bound included (branch-and-bound).
    umax: Vec<f64>,
    /// `ufirst[(depth·S + si)·L + lprev]`: the same bound conditioned on
    /// the *actual* previous level `lprev`, used for the first remaining
    /// step of a node (whose last chosen level the search knows).
    ufirst: Vec<f64>,
    /// `ufirst0[depth·L + lprev]`: the no-stall (buffer-independent)
    /// value of `ufirst`, filled lazily once per chunk step and shared by
    /// every lane and pause candidate of that step — valid because every
    /// `plan_prepared` call between two `fill_chunk_tables` calls uses
    /// the same vq tables, weights, and chunk duration. Rows of `ufirst`
    /// whose buffer cap proves no level can stall copy from here (the
    /// stall lower bound is exactly `0.0` there, so the copied values
    /// are bit-identical to recomputation).
    ufirst0: Vec<f64>,
    /// `umax0[depth]`: the no-stall value of `umax` (see `ufirst0`).
    umax0: Vec<f64>,
    /// `caps[depth·S + si]`: upper bound on scenario `si`'s buffer
    /// entering `depth`, accounting for the cheapest possible download
    /// at every prior depth (branch-and-bound).
    caps: Vec<f64>,
    /// `ord[depth·L + k]`: the levels of `depth` in descending
    /// estimated-score order — the exploration order of the pruned
    /// search. Any order yields identical results (see
    /// [`PlanSearch::descend`]); a good first guess raises `best_q`
    /// early so later subtrees prune at the root.
    ord: Vec<usize>,
    /// Per-level expected score accumulator used to build `ord`.
    scores: Vec<f64>,
    /// Scenario probabilities `rates[si].0`, densely packed for the
    /// straight-line leaf pass.
    probs: Vec<f64>,
    /// Dense per-scenario copy of the leaf-parent row's buffers.
    pbuf: Vec<f64>,
    /// Dense per-scenario copy of the leaf-parent row's running totals.
    ptot: Vec<f64>,
    /// Per-scenario expected-score terms of one sibling leaf.
    terms: Vec<f64>,
    /// `leaf_q[level]`: each sibling leaf's expected score at the last
    /// depth, produced by the block scorer and consumed in visit order.
    leaf_q: Vec<f64>,
    /// The DFS path (one level per depth) above the current node.
    cur_plan: Vec<usize>,
    /// The full winning plan of the last search (its first element is the
    /// returned `best_plan0`) — the next chunk step's warm-start seed.
    last_plan: Vec<usize>,
    /// Warm-start seed scratch (shifted suffix of the previous plan).
    seed: Vec<usize>,
}

/// The Fugu MPC policy.
#[derive(Debug, Clone)]
pub struct Fugu {
    predictor: ThroughputPredictor,
    qoe: Ksqi,
    horizon: usize,
    rtt_s: f64,
    max_buffer_s: f64,
    /// Multiplier on predicted stall time during planning. Deployed MPC
    /// controllers weight rebuffering far above its average-QoE cost
    /// because real raters judge sessions by their worst moment; planning
    /// risk-neutrally against a mean-additive model stalls too often.
    risk_aversion: f64,
    scratch: PlanScratch,
    /// Cross-chunk warm-start carry for the scalar lifecycle (the batched
    /// path swaps per-lane slots through here).
    warm: WarmSlot,
    /// Per-lane warm-start carries for [`AbrPolicy::select_batch`].
    lane_warm: Vec<WarmSlot>,
    /// When false, searches never seed from or commit to the carry slots
    /// — the "cold" reference mode the warm-vs-cold parity suite compares
    /// against.
    warm_start_enabled: bool,
}

impl Fugu {
    /// Builds Fugu with the default predictor and canonical KSQI.
    pub fn new() -> Self {
        Self {
            predictor: ThroughputPredictor::default(),
            qoe: Ksqi::canonical(),
            horizon: DEFAULT_HORIZON,
            rtt_s: 0.08,
            max_buffer_s: 24.0,
            risk_aversion: 3.0,
            scratch: PlanScratch::default(),
            warm: WarmSlot::default(),
            lane_warm: Vec::new(),
            warm_start_enabled: true,
        }
    }

    /// Toggles the cross-chunk warm start (on by default). Disabling it
    /// forces every search to start cold — bit-identical results, more
    /// nodes — which is exactly what the warm-vs-cold parity suite runs
    /// as its reference.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm_start_enabled = enabled;
        if !enabled {
            self.warm.invalidate();
            self.lane_warm.clear();
        }
        self
    }

    /// The full winning plan of the last [`Self::plan_prepared`] call.
    /// SENSEI-Fugu reads this per pause candidate to remember the winning
    /// candidate's plan.
    pub(crate) fn last_plan(&self) -> &[usize] {
        &self.scratch.last_plan
    }

    /// Commits the last search's winning plan as the warm-start carry for
    /// the chunk step after `next_chunk`. No-op in cold mode.
    pub(crate) fn commit_warm_from_last(&mut self, next_chunk: usize) {
        if self.warm_start_enabled {
            self.warm.commit(next_chunk, &self.scratch.last_plan);
        }
    }

    /// Commits an explicit winning plan (SENSEI-Fugu commits the winning
    /// pause candidate's plan, which is not necessarily the last plan
    /// searched). No-op in cold mode.
    pub(crate) fn commit_warm_plan(&mut self, next_chunk: usize, plan: &[usize]) {
        if self.warm_start_enabled {
            self.warm.commit(next_chunk, plan);
        }
    }

    /// The scalar-lifecycle warm slot — wrappers that keep per-lane carry
    /// state (SENSEI-Fugu) swap their lane slots through here around each
    /// prepared search, mirroring the pause-ledger swap.
    pub(crate) fn warm_slot_mut(&mut self) -> &mut WarmSlot {
        &mut self.warm
    }

    /// Overrides the stall risk-aversion multiplier used during planning.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not at least 1 (planning must never treat
    /// stalls as cheaper than the QoE model does).
    pub fn with_risk_aversion(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "risk aversion must be >= 1, got {factor}");
        self.risk_aversion = factor;
        self
    }

    /// The stall risk-aversion multiplier in effect.
    pub fn risk_aversion(&self) -> f64 {
        self.risk_aversion
    }

    /// Overrides the throughput predictor (window and scenario set).
    pub fn with_predictor(mut self, predictor: ThroughputPredictor) -> Self {
        self.predictor = predictor;
        self
    }

    /// The throughput predictor in effect.
    pub fn predictor(&self) -> &ThroughputPredictor {
        &self.predictor
    }

    /// Overrides the QoE model used as the objective (the paper fits KSQI
    /// for fairness across all algorithms).
    pub fn with_qoe(mut self, qoe: Ksqi) -> Self {
        self.qoe = qoe;
        self
    }

    /// Overrides the planning horizon.
    ///
    /// # Panics
    ///
    /// Panics when `horizon` is 0 (configuration bug).
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be at least 1");
        self.horizon = horizon;
        self
    }

    /// The effective horizon at `next_chunk` (truncated at the video end).
    fn effective_horizon(&self, next_chunk: usize, ctx: &SessionContext<'_>) -> usize {
        self.horizon.min(ctx.num_chunks() - next_chunk)
    }

    /// Fills the per-(depth, level) size/vq lookup tables for the horizon
    /// starting at `next_chunk`. These are pure manifest lookups shared by
    /// every lane of a batch at the same chunk step, so the batched entry
    /// point fills them once per chunk instead of once per lane.
    pub(crate) fn fill_chunk_tables(
        &mut self,
        next_chunk: usize,
        h: usize,
        ctx: &SessionContext<'_>,
    ) {
        let n_levels = ctx.num_levels();
        self.scratch.sizes.clear();
        self.scratch.vqs.clear();
        // The vq tables (and, at the callers' next step, the weight
        // window) change with the chunk position, so the hoisted no-stall
        // bound table is invalidated here and lazily refilled by the
        // first prunable search of the new step.
        self.scratch.ufirst0.clear();
        self.scratch.umax0.clear();
        for depth in 0..h {
            let chunk = next_chunk + depth;
            for level in 0..n_levels {
                self.scratch.sizes.push(
                    ctx.encoded
                        .size_bits(chunk, level)
                        .expect("plan stays in range"),
                );
                self.scratch.vqs.push(ctx.vq[chunk][level]);
            }
        }
    }

    /// Enumerates all plans over the effective horizon; returns the best
    /// plan's first action and its expected quality.
    ///
    /// The enumeration runs as a depth-first walk over the plan *tree*
    /// rather than a flat odometer over the `levels^h` plan list: the
    /// `levels^(j+1)` plans sharing a length-`j+1` prefix share that
    /// prefix's buffer walk, so each prefix is scored **once** instead of
    /// once per completion — `Σ_j levels^j ≈ levels^h · levels/(levels−1)`
    /// chunk evaluations instead of `levels^h · h`, an ~`h`-fold cut at
    /// the paper's horizon. Subtrees are explored in a guided order and
    /// skipped under the exact bound of [`PlanSearch::descend`], whose
    /// update rule reproduces the flat odometer's winner, score, and
    /// tie-breaks bit for bit (asserted against a reference odometer in
    /// this module's tests).
    pub(crate) fn best_plan(
        &mut self,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: Option<&[f64]>,
    ) -> (usize, f64) {
        let h = self.effective_horizon(state.next_chunk, ctx);
        if h == 0 {
            return (0, 0.0);
        }
        self.fill_chunk_tables(state.next_chunk, h, ctx);
        self.prepare_rates(state, ctx, h);
        let result = self.plan_prepared(state, ctx, weights, h);
        self.commit_warm_from_last(state.next_chunk);
        result
    }

    /// Fills the scenario `(probability, kbps)` pairs and the
    /// per-(chunk, level, scenario) download-time table for one decision.
    /// Both depend on the throughput history but **not** on the buffer,
    /// so SENSEI-Fugu's pause candidates — which perturb only the buffer
    /// — share one fill across all candidate searches.
    pub(crate) fn prepare_rates(
        &mut self,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        h: usize,
    ) {
        let n_levels = ctx.num_levels();
        let PlanScratch {
            rates, dt, sizes, ..
        } = &mut self.scratch;
        self.predictor.scenario_rates_into(state, rates);
        // Download time is a pure function of (chunk, level, scenario)
        // within one decision — hoist it out of the tree walk. The
        // expression is the exact one the walk used to evaluate per node.
        dt.clear();
        for depth in 0..h {
            for level in 0..n_levels {
                let size = sizes[depth * n_levels + level];
                for &(_, rate_kbps) in rates.iter() {
                    dt.push(self.rtt_s + size / (rate_kbps * 1000.0));
                }
            }
        }
    }

    /// The plan search proper, assuming [`Self::fill_chunk_tables`] and
    /// [`Self::prepare_rates`] have run for `(state.next_chunk, h)`.
    pub(crate) fn plan_prepared(
        &mut self,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: Option<&[f64]>,
        h: usize,
    ) -> (usize, f64) {
        let n_levels = ctx.num_levels();
        let d = ctx.chunk_duration_s;
        // Warm start: the shifted suffix of the previous chunk step's
        // winning plan, when this search is its immediate successor. The
        // seed is scored below with the exact leaf arithmetic before the
        // tree walk begins, so seeding is result-invariant (module docs,
        // optimization 4).
        let seeded = self.warm_start_enabled
            && self
                .warm
                .seed_into(state.next_chunk, h, n_levels, &mut self.scratch.seed);
        let PlanScratch {
            stack,
            rates,
            dt,
            sizes: _,
            vqs,
            umax,
            ufirst,
            ufirst0,
            umax0,
            caps,
            ord,
            scores,
            probs,
            pbuf,
            ptot,
            terms,
            leaf_q,
            cur_plan,
            last_plan,
            seed,
        } = &mut self.scratch;
        let s = rates.len();
        // Branch-and-bound is sound only when every bound step is
        // floating-point monotone: nonnegative plan weights, scenario
        // probabilities, and QoE penalties. Anything else disables
        // pruning (full enumeration) rather than risking a changed bit.
        let (_, b, c, _) = self.qoe.coefficients();
        let prunable = b >= 0.0
            && c >= 0.0
            && state.buffer_s >= 0.0
            && weights.is_none_or(|w| w.iter().all(|&x| x >= 0.0))
            && rates.iter().all(|r| r.0 >= 0.0);
        umax.clear();
        ufirst.clear();
        caps.clear();
        ord.clear();
        if prunable {
            // `caps[j·S + si]` dominates scenario `si`'s buffer entering
            // depth `j` for EVERY plan: the walk step is
            // `buf' = min(max(buf − dt, 0) + d, B)`, `dt` is bounded
            // below by the depth's cheapest level under that scenario,
            // and each operation in the chain (subtract a smaller value
            // from a larger one, `max`, add, `min`) is monotone under
            // IEEE-754 round-to-nearest — so the recurrence bounds all
            // plans at once *as floating point*. The root cap is the
            // caller's buffer itself (pause candidates may push it past
            // the clamp). A buffer upper bound gives a stall *lower*
            // bound, hence a per-(depth, scenario) quality upper bound;
            // charging the cheapest download per depth is what makes the
            // bound bite on constrained links instead of assuming a
            // magically refilling buffer.
            caps.resize(s, state.buffer_s);
            for depth in 1..h {
                for si in 0..s {
                    let mut dt_min = f64::INFINITY;
                    for level in 0..n_levels {
                        dt_min = dt_min.min(dt[((depth - 1) * n_levels + level) * s + si]);
                    }
                    let parent = caps[(depth - 1) * s + si];
                    caps.push(((parent - dt_min).max(0.0) + d).min(self.max_buffer_s));
                }
            }
            for depth in 0..h {
                scores.clear();
                scores.resize(n_levels, 0.0);
                for si in 0..s {
                    let cap = caps[depth * s + si];
                    let p = rates[si].0;
                    for level in 0..n_levels {
                        let stall_lb = (dt[(depth * n_levels + level) * s + si] - cap).max(0.0);
                        let q = self.qoe.chunk_quality(
                            vqs[depth * n_levels + level],
                            stall_lb * self.risk_aversion,
                            0.0,
                            d,
                        );
                        let term = weights.map_or(q, |w| w[depth] * q);
                        scores[level] += p * term;
                    }
                }
                // Guided order: most promising level (by expected
                // stall-bounded score) first. Purely a search-speed
                // heuristic — the update rule in `descend` makes the
                // search result order-invariant.
                let base = ord.len();
                ord.extend(0..n_levels);
                ord[base..].sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(core::cmp::Ordering::Equal)
                });
            }
            // Switch-aware per-depth bounds. `ufirst` conditions the
            // bound's *first* remaining step on the node's actual previous
            // level (the search knows it exactly, so the switch penalty is
            // the exact one the walk will charge); `umax` relaxes deeper
            // steps over every (previous level, level) pair. Each entry
            // dominates the walk's corresponding per-step term as floating
            // point: the stall lower bound comes from the buffer cap above,
            // and `chunk_quality` is FP-monotone in both penalties. Depth 0
            // rows stay at the placeholder (the bound is only evaluated at
            // depth ≥ 1, where the previous level is on the DFS path).
            if ufirst0.is_empty() {
                // The no-stall table is buffer-independent, so it serves
                // every lane and pause candidate of this chunk step
                // (`fill_chunk_tables` invalidates it when the vq tables
                // or weight window move).
                ufirst0.resize(h * n_levels, 0.0);
                umax0.resize(h, 0.0);
                for depth in 1..h {
                    let mut overall = f64::NEG_INFINITY;
                    for lprev in 0..n_levels {
                        let pvq = vqs[(depth - 1) * n_levels + lprev];
                        let mut best = f64::NEG_INFINITY;
                        for level in 0..n_levels {
                            let vq = vqs[depth * n_levels + level];
                            let switch = if level != lprev {
                                (vq - pvq).abs()
                            } else {
                                0.0
                            };
                            let q = self.qoe.chunk_quality(vq, 0.0, switch, d);
                            let term = weights.map_or(q, |w| w[depth] * q);
                            if term > best {
                                best = term;
                            }
                        }
                        ufirst0[depth * n_levels + lprev] = best;
                        if best > overall {
                            overall = best;
                        }
                    }
                    umax0[depth] = overall;
                }
            }
            ufirst.resize(h * s * n_levels, 0.0);
            umax.resize(h * s, 0.0);
            for depth in 1..h {
                for si in 0..s {
                    let cap = caps[depth * s + si];
                    let mut dt_max = f64::NEG_INFINITY;
                    for level in 0..n_levels {
                        dt_max = dt_max.max(dt[(depth * n_levels + level) * s + si]);
                    }
                    let row = (depth * s + si) * n_levels;
                    if dt_max <= cap {
                        // No level can stall under this scenario's cap:
                        // every `stall_lb` below would be exactly `0.0`,
                        // so the hoisted no-stall row IS this row.
                        ufirst[row..row + n_levels]
                            .copy_from_slice(&ufirst0[depth * n_levels..(depth + 1) * n_levels]);
                        umax[depth * s + si] = umax0[depth];
                        continue;
                    }
                    let mut overall = f64::NEG_INFINITY;
                    for lprev in 0..n_levels {
                        let pvq = vqs[(depth - 1) * n_levels + lprev];
                        let mut best = f64::NEG_INFINITY;
                        for level in 0..n_levels {
                            let vq = vqs[depth * n_levels + level];
                            let stall_lb = (dt[(depth * n_levels + level) * s + si] - cap).max(0.0);
                            let switch = if level != lprev {
                                (vq - pvq).abs()
                            } else {
                                0.0
                            };
                            let q = self.qoe.chunk_quality(
                                vq,
                                stall_lb * self.risk_aversion,
                                switch,
                                d,
                            );
                            let term = weights.map_or(q, |w| w[depth] * q);
                            if term > best {
                                best = term;
                            }
                        }
                        ufirst[row + lprev] = best;
                        if best > overall {
                            overall = best;
                        }
                    }
                    umax[depth * s + si] = overall;
                }
            }
        }
        let prev = state
            .last_level
            .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
        // One per-scenario running state per tree depth: row 0 is the
        // pre-plan state, row j+1 the state after the length-(j+1) prefix.
        stack.clear();
        stack.resize(
            (h + 1) * s,
            ScenarioWalk {
                buf: state.buffer_s,
                prev,
                total: 0.0,
            },
        );
        probs.clear();
        probs.extend(rates.iter().map(|r| r.0));
        pbuf.clear();
        pbuf.resize(s, 0.0);
        ptot.clear();
        ptot.resize(s, 0.0);
        terms.clear();
        terms.resize(s, 0.0);
        leaf_q.clear();
        leaf_q.resize(n_levels, 0.0);
        cur_plan.clear();
        cur_plan.resize(h, 0);
        let mut search = PlanSearch {
            risk_aversion: self.risk_aversion,
            max_buffer_s: self.max_buffer_s,
            qoe: &self.qoe,
            chunk_duration_s: d,
            weights,
            h,
            n_levels,
            rates,
            dt,
            vqs,
            umax,
            ufirst,
            ord,
            prunable,
            stack,
            probs,
            pbuf,
            ptot,
            terms,
            leaf_q,
            cur_plan,
            best_plan: last_plan,
            seeded,
            improved: false,
            seeded_prunes: 0,
            best_q: f64::NEG_INFINITY,
            best_plan0: 0,
            nodes: 0,
            pruned: 0,
        };
        if seeded {
            // Score the seed leaf exactly: the same per-depth walk and
            // scenario-order fold the tree search performs for any leaf,
            // so the seeded incumbent is indistinguishable from the
            // search having visited that leaf first.
            for (depth, &level) in seed.iter().enumerate() {
                search.nodes += 1;
                search.step(depth, level);
            }
            let mut q = 0.0;
            for si in 0..s {
                q += search.rates[si].0 * search.stack[h * s + si].total;
            }
            search.best_q = q;
            search.best_plan0 = seed[0];
            search.best_plan.clear();
            search.best_plan.extend_from_slice(seed);
        } else {
            search.best_plan.clear();
        }
        search.descend(0, 0);
        telemetry::count(telemetry::Counter::PlanNodes, search.nodes);
        telemetry::count(telemetry::Counter::PlanPrunes, search.pruned);
        telemetry::count(telemetry::Counter::WarmStartHits, u64::from(seeded));
        telemetry::count(telemetry::Counter::SeededPrunes, search.seeded_prunes);
        (search.best_plan0, search.best_q)
    }
}

/// Per-scenario running state of one plan prefix: the buffer walk's
/// position, the previous chunk's `(vq, level)` for switch penalties, and
/// the accumulated weighted quality.
#[derive(Debug, Clone, Copy)]
struct ScenarioWalk {
    buf: f64,
    prev: Option<(f64, usize)>,
    total: f64,
}

/// Depth-first plan enumeration state (see [`Fugu::best_plan`]).
struct PlanSearch<'a> {
    risk_aversion: f64,
    max_buffer_s: f64,
    qoe: &'a Ksqi,
    chunk_duration_s: f64,
    weights: Option<&'a [f64]>,
    h: usize,
    n_levels: usize,
    rates: &'a [(f64, f64)],
    dt: &'a [f64],
    vqs: &'a [f64],
    umax: &'a [f64],
    ufirst: &'a [f64],
    ord: &'a [usize],
    prunable: bool,
    /// `(h + 1) × scenarios` rows of running state, indexed by depth.
    stack: &'a mut [ScenarioWalk],
    /// Scenario probabilities, densely packed for the leaf block pass.
    probs: &'a mut Vec<f64>,
    /// Dense copies of the leaf-parent row's buffers / running totals.
    pbuf: &'a mut Vec<f64>,
    ptot: &'a mut Vec<f64>,
    /// Per-scenario expected-score terms of one sibling leaf.
    terms: &'a mut Vec<f64>,
    /// Each sibling leaf's expected score, by level (block leaf scoring).
    leaf_q: &'a mut Vec<f64>,
    /// The DFS path (one level per depth) above the current node.
    cur_plan: &'a mut Vec<usize>,
    /// The full winning plan — kept for the next step's warm start.
    best_plan: &'a mut Vec<usize>,
    /// Whether the incumbent was seeded from the previous chunk's plan.
    seeded: bool,
    /// Whether any leaf has improved on the (seeded) incumbent yet.
    improved: bool,
    /// Prunes taken against the still-unimproved seeded incumbent.
    seeded_prunes: u64,
    best_q: f64,
    best_plan0: usize,
    /// Telemetry tallies, flushed once per decision: `(depth, level)`
    /// expansions and bound-pruned subtrees. Plain local adds keep the
    /// hot loop free of thread-local traffic.
    nodes: u64,
    pruned: u64,
}

impl PlanSearch<'_> {
    /// Extends every scenario's walk at `depth` by `level`, writing the
    /// child row; identical arithmetic (and order) to one iteration of
    /// the flat plan scorer's buffer walk.
    fn step(&mut self, depth: usize, level: usize) {
        let s = self.rates.len();
        let d = self.chunk_duration_s;
        let vq = self.vqs[depth * self.n_levels + level];
        for si in 0..s {
            let parent = self.stack[depth * s + si];
            let dt = self.dt[(depth * self.n_levels + level) * s + si];
            let stall = (dt - parent.buf).max(0.0);
            let mut buf = (parent.buf - dt).max(0.0) + d;
            buf = buf.min(self.max_buffer_s);
            let switch = match parent.prev {
                Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                _ => 0.0,
            };
            let q = self
                .qoe
                .chunk_quality(vq, stall * self.risk_aversion, switch, d);
            self.stack[(depth + 1) * s + si] = ScenarioWalk {
                buf,
                prev: Some((vq, level)),
                total: parent.total + self.weights.map_or(q, |w| w[depth] * q),
            };
        }
    }

    /// Recursively enumerates levels at `depth`; `plan0` is the root
    /// level of the current subtree (the candidate first action).
    ///
    /// **Why any exploration order is exact.** A leaf's computed score
    /// depends only on its plan, and the only observables of the search
    /// are the best score and the winner's *first* action. The flat
    /// lexicographic reference with its strictly-greater update returns
    /// exactly `(max leaf score, min plan0 among max-attaining leaves)`
    /// — the root level is the odometer's most significant digit, so
    /// "first leaf attaining the max" and "smallest first action
    /// attaining the max" coincide. The update rule below maintains that
    /// pair directly (`>` wins outright, `==` wins only with a smaller
    /// `plan0`), which frees the search to visit subtrees in the guided
    /// `ord` order without touching a single result bit.
    ///
    /// **Why pruning is exact.** A subtree is skipped only when an upper
    /// bound on every leaf under it shows the subtree cannot change that
    /// pair: strictly below `best_q`, nothing inside can win or tie;
    /// equal to `best_q`, a tie inside matters only if it lowers the
    /// winning `plan0`. The bound extends each scenario's running total
    /// with the switch-aware per-depth terms — `ufirst` for the first
    /// remaining step (conditioned on the node's actual previous level,
    /// which is on the DFS path), `umax` for deeper steps — **through
    /// the same left-to-right fold the leaf reduction performs**; every
    /// operation in the chain (add, multiply by a nonnegative factor,
    /// `max`) is monotone under IEEE-754 round-to-nearest, so the bound
    /// dominates every leaf's computed value *as floating point*, not
    /// just in exact arithmetic.
    fn descend(&mut self, depth: usize, plan0: usize) {
        let s = self.rates.len();
        if self.prunable && depth > 0 {
            // `prev` is scenario-invariant and always `Some` at depth ≥ 1
            // (row `depth` was written by `step(depth − 1, …)`).
            let prev_level = self.stack[depth * s].prev.map_or(0, |(_, l)| l);
            let mut ub = 0.0;
            for si in 0..s {
                let mut bnd = self.stack[depth * s + si].total
                    + self.ufirst[(depth * s + si) * self.n_levels + prev_level];
                for j in depth + 1..self.h {
                    bnd += self.umax[j * s + si];
                }
                ub += self.rates[si].0 * bnd;
            }
            if ub < self.best_q || (ub == self.best_q && plan0 >= self.best_plan0) {
                self.pruned += 1;
                if self.seeded && !self.improved {
                    self.seeded_prunes += 1;
                }
                return;
            }
        }
        if depth + 1 == self.h {
            // The `n_levels` sibling leaves under this parent are scored
            // as one straight-line block pass, then consumed in the exact
            // visit order below (module docs, optimization 5).
            self.score_leaves(depth);
            for k in 0..self.n_levels {
                self.nodes += 1;
                let level = if self.prunable {
                    self.ord[depth * self.n_levels + k]
                } else {
                    k
                };
                let plan0 = if depth == 0 { level } else { plan0 };
                let q = self.leaf_q[level];
                if q > self.best_q || (q == self.best_q && plan0 < self.best_plan0) {
                    self.best_q = q;
                    self.best_plan0 = plan0;
                    self.improved = true;
                    self.best_plan.clear();
                    self.best_plan.extend_from_slice(&self.cur_plan[..depth]);
                    self.best_plan.push(level);
                }
            }
            return;
        }
        for k in 0..self.n_levels {
            self.nodes += 1;
            // `ord` is only filled when pruning is active; the unpruned
            // fallback keeps the reference's lexicographic order.
            let level = if self.prunable {
                self.ord[depth * self.n_levels + k]
            } else {
                k
            };
            let plan0 = if depth == 0 { level } else { plan0 };
            self.cur_plan[depth] = level;
            self.step(depth, level);
            self.descend(depth + 1, plan0);
        }
    }

    /// Scores every sibling leaf under the parent row at `depth` in one
    /// block: the per-scenario parent state is copied into dense slices
    /// once, then each level runs a straight-line pass of pure slice
    /// arithmetic (no struct-of-walks indirection, no branches beyond the
    /// clamp `max`) that the autovectorizer can turn into SIMD lanes.
    /// Every element computes **exactly** one step of the reference walk
    /// — `probs[si] · (parent.total + w·q)` with the identical stall,
    /// switch, and KSQI arithmetic — and the final reduction folds the
    /// terms in scenario order from 0.0, so each `leaf_q[level]` is
    /// bit-identical to what [`Self::step`] plus the scenario-order fold
    /// produced before this restructuring.
    fn score_leaves(&mut self, depth: usize) {
        let s = self.rates.len();
        let n_levels = self.n_levels;
        let d = self.chunk_duration_s;
        let risk = self.risk_aversion;
        // `prev` is scenario-invariant by construction: every stack row
        // is written with the same `(vq, level)` across scenarios.
        let prev = self.stack[depth * s].prev;
        let wd = self.weights.map(|w| w[depth]);
        for si in 0..s {
            let parent = self.stack[depth * s + si];
            self.pbuf[si] = parent.buf;
            self.ptot[si] = parent.total;
        }
        for level in 0..n_levels {
            let vq = self.vqs[depth * n_levels + level];
            let switch = match prev {
                Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                _ => 0.0,
            };
            let base = (depth * n_levels + level) * s;
            for si in 0..s {
                let stall = (self.dt[base + si] - self.pbuf[si]).max(0.0);
                let q = self.qoe.chunk_quality(vq, stall * risk, switch, d);
                let wq = match wd {
                    Some(w) => w * q,
                    None => q,
                };
                self.terms[si] = self.probs[si] * (self.ptot[si] + wq);
            }
            let mut acc = 0.0;
            for &term in self.terms.iter() {
                acc += term;
            }
            self.leaf_q[level] = acc;
        }
    }
}

impl Default for Fugu {
    fn default() -> Self {
        Self::new()
    }
}

impl AbrPolicy for Fugu {
    fn name(&self) -> &str {
        "Fugu"
    }

    fn decide(&mut self, state: &PlayerState<'_>, ctx: &SessionContext<'_>) -> Decision {
        Decision::level(self.best_plan(state, ctx, None).0)
    }

    /// Session-boundary hygiene: the warm-start carry never crosses a
    /// session, so a reused policy instance plans exactly like a fresh one.
    fn reset(&mut self) {
        self.warm.invalidate();
    }

    /// Trace-boundary hygiene: a rebound policy plans a different network,
    /// so every carry slot (scalar and per-lane) is dropped.
    fn rebind(&mut self, _trace: &ThroughputTrace) {
        self.warm.invalidate();
        for slot in &mut self.lane_warm {
            slot.invalidate();
        }
    }

    /// Batch-boundary hygiene: fresh per-lane carry slots for the new
    /// lane set, plus the scalar reset.
    fn begin_batch(&mut self, lanes: usize) {
        self.reset();
        self.lane_warm.clear();
        self.lane_warm.resize_with(lanes, WarmSlot::default);
    }

    /// Plans every lane of the batch in one pass. All lanes of a batch sit
    /// at the same chunk step, so the per-(chunk, level) size/vq manifest
    /// tables are filled once for the whole tile instead of once per lane;
    /// the per-lane search then runs over the same prepared tables the
    /// scalar path uses, so decisions are bit-identical to [`Self::decide`].
    /// Each lane's warm-start carry is swapped in around its search,
    /// exactly like SENSEI-Fugu's per-lane pause ledger.
    fn select_batch(
        &mut self,
        states: &BatchStates<'_>,
        ctx: &SessionContext<'_>,
        out: &mut [Decision],
    ) {
        let h = self.effective_horizon(states.next_chunk(), ctx);
        if h == 0 {
            for slot in out.iter_mut().take(states.len()) {
                *slot = Decision::level(0);
            }
            return;
        }
        self.fill_chunk_tables(states.next_chunk(), h, ctx);
        if self.lane_warm.len() < states.len() {
            self.lane_warm.resize_with(states.len(), WarmSlot::default);
        }
        for (i, slot) in out.iter_mut().enumerate().take(states.len()) {
            let state = states.state(i);
            std::mem::swap(&mut self.warm, &mut self.lane_warm[i]);
            self.prepare_rates(&state, ctx, h);
            let (level, _q) = self.plan_prepared(&state, ctx, None, h);
            self.commit_warm_from_last(state.next_chunk);
            std::mem::swap(&mut self.warm, &mut self.lane_warm[i]);
            *slot = Decision::level(level);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded, source};
    use sensei_sim::{simulate, PlayerConfig};
    use sensei_trace::ThroughputTrace;

    fn run(trace_kbps: f64) -> sensei_sim::SessionResult {
        let src = source();
        let enc = encoded(&src);
        let trace = ThroughputTrace::constant("t", trace_kbps, 600.0).unwrap();
        simulate(
            &src,
            &enc,
            &trace,
            &mut Fugu::new(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap()
    }

    #[test]
    fn high_bandwidth_reaches_top_rate_without_stalls() {
        let result = run(10_000.0);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 0.2, "stalls = {stalls}");
        // The tail of the session should run at the top bitrate.
        let tail: Vec<usize> = result.levels[10..].to_vec();
        assert!(tail.iter().all(|&l| l == 4), "tail = {tail:?}");
    }

    #[test]
    fn low_bandwidth_stays_low_and_avoids_stalls() {
        let result = run(700.0);
        let stalls = result.render.total_rebuffer_s() - result.render.startup_delay_s();
        assert!(stalls < 1.0, "stalls = {stalls}");
        assert!(result.render.avg_bitrate_kbps() < 1000.0);
    }

    #[test]
    fn beats_bba_on_variable_traces() {
        use crate::bba::Bba;
        let src = source();
        let enc = encoded(&src);
        let qoe = Ksqi::canonical();
        let mut fugu_total = 0.0;
        let mut bba_total = 0.0;
        for seed in 0..5 {
            let trace = sensei_trace::generate::fcc_like(1800.0, 600, seed);
            let config = PlayerConfig::default();
            let f = simulate(&src, &enc, &trace, &mut Fugu::new(), &config, None).unwrap();
            let b = simulate(&src, &enc, &trace, &mut Bba::paper_default(), &config, None).unwrap();
            fugu_total += sensei_qoe::QoeModel::predict(&qoe, &f.render).unwrap();
            bba_total += sensei_qoe::QoeModel::predict(&qoe, &b.render).unwrap();
        }
        assert!(
            fugu_total > bba_total,
            "Fugu {fugu_total:.3} should beat BBA {bba_total:.3} on its own objective"
        );
    }

    #[test]
    fn horizon_truncates_at_video_end() {
        // A 3-chunk video with horizon 5 must not panic.
        let src = sensei_video::SourceVideo::from_script(
            "short",
            sensei_video::Genre::Sports,
            &[sensei_video::content::SceneSpec::new(
                sensei_video::SceneKind::NormalPlay,
                3,
            )],
            1,
        )
        .unwrap();
        let enc = sensei_video::EncodedVideo::encode(
            &src,
            &sensei_video::BitrateLadder::default_paper(),
            1,
        );
        let trace = ThroughputTrace::constant("t", 3000.0, 600.0).unwrap();
        let result = simulate(
            &src,
            &enc,
            &trace,
            &mut Fugu::new(),
            &PlayerConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.levels.len(), 3);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_is_rejected() {
        let _ = Fugu::new().with_horizon(0);
    }

    /// The pre-refactor flat enumeration, kept as the reference the
    /// prefix-sharing, table-hoisting, branch-and-bound DFS must reproduce
    /// bit for bit: every plan scored from scratch by an independent
    /// buffer walk per scenario, plans visited in odometer (lexicographic)
    /// order, no pruning anywhere.
    fn reference_best_plan(
        fugu: &Fugu,
        state: &PlayerState<'_>,
        ctx: &SessionContext<'_>,
        weights: Option<&[f64]>,
    ) -> (usize, f64) {
        let plan_quality = |plan: &[usize], rate_kbps: f64| -> f64 {
            let d = ctx.chunk_duration_s;
            let mut buf = state.buffer_s;
            let mut prev: Option<(f64, usize)> = state
                .last_level
                .map(|l| (ctx.vq[state.next_chunk.saturating_sub(1)][l], l));
            let mut total = 0.0;
            for (j, &level) in plan.iter().enumerate() {
                let chunk = state.next_chunk + j;
                let size = ctx.encoded.size_bits(chunk, level).unwrap();
                let dt = 0.08 + size / (rate_kbps * 1000.0);
                let stall = (dt - buf).max(0.0);
                buf = (buf - dt).max(0.0) + d;
                buf = buf.min(24.0);
                let vq = ctx.vq[chunk][level];
                let switch = match prev {
                    Some((pvq, plevel)) if plevel != level => (vq - pvq).abs(),
                    _ => 0.0,
                };
                prev = Some((vq, level));
                let q =
                    Ksqi::canonical().chunk_quality(vq, stall * fugu.risk_aversion(), switch, d);
                total += weights.map_or(q, |w| w[j] * q);
            }
            total
        };
        let n_levels = ctx.num_levels();
        let h = DEFAULT_HORIZON.min(ctx.num_chunks() - state.next_chunk);
        let scenario_rates = fugu.predictor().scenario_rates(state);
        let mut plan = vec![0usize; h];
        let mut best_plan0 = 0usize;
        let mut best_q = f64::NEG_INFINITY;
        loop {
            let q: f64 = scenario_rates
                .iter()
                .map(|&(p, rate)| p * plan_quality(&plan, rate))
                .sum();
            if q > best_q {
                best_q = q;
                best_plan0 = plan[0];
            }
            let mut pos = h;
            loop {
                if pos == 0 {
                    return (best_plan0, best_q);
                }
                pos -= 1;
                plan[pos] += 1;
                if plan[pos] < n_levels {
                    break;
                }
                plan[pos] = 0;
            }
        }
    }

    #[test]
    fn dfs_enumeration_matches_the_flat_reference_bit_for_bit() {
        use sensei_sim::SessionContext;
        let src = source();
        let enc = encoded(&src);
        let ctx = SessionContext {
            encoded: &enc,
            vq: enc.vq_table(),
            weights: None,
            chunk_duration_s: src.chunk_duration_s(),
        };
        let mut fugu = Fugu::new();
        // Weight rows exercise every search mode: no weights (plain Fugu),
        // nonnegative weights (SENSEI-Fugu, pruning active including zero
        // weights), and a negative weight that must disable pruning and
        // fall back to the full enumeration.
        let weight_rows: [Option<Vec<f64>>; 4] = [
            None,
            Some(vec![1.4, 0.6, 1.0, 2.0, 0.8, 1.1, 0.9]),
            Some(vec![0.0, 1.5, 0.0, 2.0, 1.0, 0.3, 0.7]),
            Some(vec![-0.5, 1.0, 0.8, 1.2, 0.4, 1.0, 1.0]),
        ];
        // A spread of buffer levels, histories, and positions — including
        // the truncated-horizon video tail and near-tie states.
        let histories: [&[f64]; 3] = [
            &[1200.0, 900.0, 1500.0],
            &[400.0, 420.0, 380.0, 410.0, 395.0],
            &[5000.0; 6],
        ];
        for weights in &weight_rows {
            for hist in histories {
                for next_chunk in [0, 3, src.num_chunks() - 3, src.num_chunks() - 1] {
                    for buffer_s in [0.5, 4.0, 11.0, 23.0] {
                        let state = PlayerState {
                            next_chunk,
                            buffer_s,
                            last_level: Some(2),
                            throughput_history_kbps: hist,
                            download_time_history_s: &[1.0; 6][..hist.len()],
                            elapsed_s: 30.0,
                            playing: true,
                        };
                        let w = weights
                            .as_deref()
                            .map(|w| &w[..DEFAULT_HORIZON.min(src.num_chunks() - next_chunk)]);
                        let fast = fugu.best_plan(&state, &ctx, w);
                        let slow = reference_best_plan(&fugu, &state, &ctx, w);
                        assert_eq!(fast.0, slow.0, "chosen level at chunk {next_chunk}");
                        assert_eq!(
                            fast.1.to_bits(),
                            slow.1.to_bits(),
                            "plan score at chunk {next_chunk} (buffer {buffer_s})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_decisions_is_stateless() {
        // One long-lived instance planning many unrelated states must
        // produce exactly what a fresh instance produces per state: the
        // scratch tables are per-decision, never carried over.
        use sensei_sim::SessionContext;
        let src = source();
        let enc = encoded(&src);
        let ctx = SessionContext {
            encoded: &enc,
            vq: enc.vq_table(),
            weights: None,
            chunk_duration_s: src.chunk_duration_s(),
        };
        let mut warm = Fugu::new();
        for next_chunk in 0..src.num_chunks() {
            for buffer_s in [0.0, 6.5, 19.0] {
                let state = PlayerState {
                    next_chunk,
                    buffer_s,
                    last_level: Some(1),
                    throughput_history_kbps: &[900.0, 1100.0, 1000.0],
                    download_time_history_s: &[1.0; 3],
                    elapsed_s: 12.0,
                    playing: true,
                };
                let warm_plan = warm.best_plan(&state, &ctx, None);
                let cold_plan = Fugu::new().best_plan(&state, &ctx, None);
                assert_eq!(warm_plan.0, cold_plan.0);
                assert_eq!(warm_plan.1.to_bits(), cold_plan.1.to_bits());
            }
        }
    }
}
