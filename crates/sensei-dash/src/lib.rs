//! DASH manifest (MPD) support with SENSEI's per-chunk weight extension.
//!
//! §6: "We augment the DASH manifest file with per-chunk sensitivity
//! weights (by adding a new XML field under Representation) and change the
//! manifest file parser to parse the weights of the chunks." This crate
//! provides that integration surface: an MPD model, an XML writer, and a
//! tolerant parser for the dialect it writes — enough for a SENSEI-enabled
//! player to round-trip manifests, and for legacy players to ignore the
//! extension field entirely.
//!
//! Weights are serialized under a dedicated namespace as
//! `<sensei:weights>w1 w2 ...</sensei:weights>`, quantized to milli-units
//! ([`quantize_weight`]) the way a real deployment would cap manifest
//! bloat.

// Segment counts convert to f64 only for duration math; all far
// below 2^52.
#![allow(clippy::cast_precision_loss)]

pub mod manifest;
pub mod xml;

pub use manifest::{Manifest, Representation};

/// Errors produced by manifest construction and parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum DashError {
    /// The manifest would be structurally invalid.
    InvalidManifest(String),
    /// XML syntax error at a byte offset.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// A required element or attribute is missing.
    Missing(&'static str),
    /// A numeric field failed to parse.
    BadNumber(String),
}

impl std::fmt::Display for DashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DashError::InvalidManifest(msg) => write!(f, "invalid manifest: {msg}"),
            DashError::Syntax { offset, message } => {
                write!(f, "xml syntax error at byte {offset}: {message}")
            }
            DashError::Missing(what) => write!(f, "missing {what}"),
            DashError::BadNumber(s) => write!(f, "cannot parse number: {s}"),
        }
    }
}

impl std::error::Error for DashError {}

/// Quantizes a sensitivity weight to milli-units (3 decimal places),
/// clamped to `[0.001, 65.535]` — the range a `u16` milli-unit field can
/// carry.
pub fn quantize_weight(w: f64) -> f64 {
    (w.clamp(0.001, 65.535) * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_rounds_to_milli_units() {
        assert_eq!(quantize_weight(1.23456), 1.235);
        assert_eq!(quantize_weight(0.0), 0.001);
        assert_eq!(quantize_weight(100.0), 65.535);
        assert_eq!(quantize_weight(1.0), 1.0);
    }
}
