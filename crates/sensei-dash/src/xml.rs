//! A minimal XML reader/writer for the MPD dialect this crate emits.
//!
//! Deliberately small (per the guides' "simplicity and robustness" ethos):
//! elements, attributes, text content, self-closing tags, comments, and
//! XML declarations — no namespaces resolution (prefixes are kept verbatim,
//! which is how `sensei:weights` travels), no DTDs, no entities beyond the
//! five predefined ones.

use crate::DashError;

/// A parsed XML element tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Tag name including any prefix (e.g. `sensei:weights`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<Element>,
    /// Concatenated text content directly under this element.
    pub text: String,
}

impl Element {
    /// Creates an element with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Adds a child (builder style).
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Sets text content (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Looks up an attribute value.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given tag name.
    pub fn first(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given tag name.
    pub fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serializes the tree with 2-space indentation.
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write(out, depth + 1);
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Escapes the five predefined XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a document into its root element.
///
/// # Errors
///
/// Returns a [`DashError::Syntax`] with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Element, DashError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_prolog();
    let root = parser.parse_element()?;
    parser.skip_whitespace_and_comments();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing content after the root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> DashError {
        DashError::Syntax {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_whitespace_and_comments();
        if self.starts_with("<?") {
            if let Some(end) = find(self.bytes, self.pos, "?>") {
                self.pos = end + 2;
            }
        }
        self.skip_whitespace_and_comments();
    }

    fn parse_name(&mut self) -> Result<String, DashError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, DashError> {
        if self.peek() != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = Element::new(name.clone());
        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.error("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.error("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let quote = self.peek().ok_or_else(|| self.error("unexpected end"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.error("expected a quoted attribute value"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let value = unescape(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                    self.pos += 1;
                    element.attributes.push((key, value));
                }
                None => return Err(self.error("unexpected end inside a tag")),
            }
        }
        // Content.
        loop {
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.error("unterminated comment")),
                }
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.error("mismatched closing tag"));
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected '>' in closing tag"));
                }
                self.pos += 1;
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => element.children.push(self.parse_element()?),
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let text = unescape(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                    element.text.push_str(text.trim());
                }
                None => return Err(self.error("unterminated element")),
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &str) -> Option<usize> {
    let n = needle.as_bytes();
    haystack[from..]
        .windows(n.len())
        .position(|w| w == n)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_tree() {
        let doc = Element::new("MPD")
            .attr("minBufferTime", "PT4S")
            .child(
                Element::new("Representation")
                    .attr("bandwidth", "300000")
                    .child(Element::new("sensei:weights").with_text("1.000 0.500 2.000")),
            )
            .child(Element::new("Empty"));
        let xml = doc.to_xml();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_self_closing_and_comments() {
        let parsed = parse(
            "<?xml version=\"1.0\"?>\n<!-- header -->\n<A x=\"1\"><!-- inner --><B/><C y='2'/></A>",
        )
        .unwrap();
        assert_eq!(parsed.name, "A");
        assert_eq!(parsed.attribute("x"), Some("1"));
        assert_eq!(parsed.children.len(), 2);
        assert_eq!(parsed.children[1].attribute("y"), Some("2"));
    }

    #[test]
    fn escapes_and_unescapes_entities() {
        let doc = Element::new("T").attr("v", "a<b&\"c\"").with_text("x > y");
        let xml = doc.to_xml();
        assert!(xml.contains("&lt;"));
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed.attribute("v"), Some("a<b&\"c\""));
        assert_eq!(parsed.text, "x > y");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "<A>",
            "<A></B>",
            "<A x=1/>",
            "<A x=\"1/>",
            "<A/><B/>",
            "text only",
            "<A><B></A></B>",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn reports_error_offsets() {
        let err = parse("<A></B>").unwrap_err();
        match err {
            DashError::Syntax { offset, .. } => assert!(offset > 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let parsed = parse("<R><S id=\"1\"/><S id=\"2\"/><T/></R>").unwrap();
        assert_eq!(parsed.all("S").count(), 2);
        assert!(parsed.first("T").is_some());
        assert!(parsed.first("U").is_none());
    }
}
