//! The MPD manifest model with the SENSEI weight extension.
//!
//! The model covers what the SENSEI integration needs: one period, one
//! adaptation set, one `Representation` per ladder level with per-chunk
//! segment sizes, and — the paper's addition — per-chunk sensitivity
//! weights under the adaptation set (`<sensei:weights>`, §6). Players that
//! do not know the namespace skip the element, which is how SENSEI stays
//! backward compatible.

use crate::xml::Element;
use crate::{quantize_weight, DashError};

/// One representation (ladder level).
#[derive(Debug, Clone, PartialEq)]
pub struct Representation {
    /// Representation id (e.g. `"r2"`).
    pub id: String,
    /// Nominal bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Per-chunk segment sizes in bits.
    pub segment_sizes_bits: Vec<f64>,
}

/// A SENSEI-extended DASH manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Video title / source name.
    pub title: String,
    /// Chunk (segment) duration in seconds.
    pub chunk_duration_s: f64,
    /// Representations, lowest bandwidth first.
    pub representations: Vec<Representation>,
    /// Per-chunk sensitivity weights (the SENSEI extension); `None` for a
    /// legacy manifest.
    pub weights: Option<Vec<f64>>,
}

impl Manifest {
    /// Validates structural invariants: at least one representation, equal
    /// chunk counts everywhere, increasing bandwidths, weights matching the
    /// chunk count.
    ///
    /// # Errors
    ///
    /// Returns [`DashError::InvalidManifest`] describing the violation.
    pub fn validate(&self) -> Result<(), DashError> {
        if self.representations.is_empty() {
            return Err(DashError::InvalidManifest("no representations".into()));
        }
        if !(self.chunk_duration_s.is_finite() && self.chunk_duration_s > 0.0) {
            return Err(DashError::InvalidManifest(format!(
                "bad chunk duration {}",
                self.chunk_duration_s
            )));
        }
        let n = self.representations[0].segment_sizes_bits.len();
        if n == 0 {
            return Err(DashError::InvalidManifest("no segments".into()));
        }
        for r in &self.representations {
            if r.segment_sizes_bits.len() != n {
                return Err(DashError::InvalidManifest(format!(
                    "representation {} has {} segments, expected {n}",
                    r.id,
                    r.segment_sizes_bits.len()
                )));
            }
        }
        for w in self.representations.windows(2) {
            if w[0].bandwidth_bps >= w[1].bandwidth_bps {
                return Err(DashError::InvalidManifest(
                    "representations must have strictly increasing bandwidth".into(),
                ));
            }
        }
        if let Some(weights) = &self.weights {
            if weights.len() != n {
                return Err(DashError::InvalidManifest(format!(
                    "{} weights for {n} segments",
                    weights.len()
                )));
            }
            if weights.iter().any(|&w| !w.is_finite() || w <= 0.0) {
                return Err(DashError::InvalidManifest(
                    "weights must be positive and finite".into(),
                ));
            }
        }
        Ok(())
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.representations
            .first()
            .map_or(0, |r| r.segment_sizes_bits.len())
    }

    /// Serializes to MPD XML.
    ///
    /// # Errors
    ///
    /// Returns an error when the manifest is invalid.
    // Segment sizes serialize as whole bits; `round()` before the cast
    // is the wire format, and sizes are far below 2^53.
    #[allow(clippy::cast_possible_truncation)]
    pub fn to_xml(&self) -> Result<String, DashError> {
        self.validate()?;
        let total = self.num_chunks() as f64 * self.chunk_duration_s;
        let mut adaptation = Element::new("AdaptationSet")
            .attr("contentType", "video")
            .attr("segmentAlignment", "true");
        if let Some(weights) = &self.weights {
            let text = weights
                .iter()
                .map(|&w| format!("{:.3}", quantize_weight(w)))
                .collect::<Vec<_>>()
                .join(" ");
            adaptation = adaptation.child(Element::new("sensei:weights").with_text(text));
        }
        for r in &self.representations {
            let sizes = r
                .segment_sizes_bits
                .iter()
                .map(|s| format!("{}", s.round() as u64))
                .collect::<Vec<_>>()
                .join(" ");
            adaptation = adaptation.child(
                Element::new("Representation")
                    .attr("id", &r.id)
                    .attr("bandwidth", r.bandwidth_bps.to_string())
                    .attr("mimeType", "video/mp4")
                    .child(Element::new("sensei:segmentSizes").with_text(sizes)),
            );
        }
        let mpd = Element::new("MPD")
            .attr("xmlns", "urn:mpeg:dash:schema:mpd:2011")
            .attr("xmlns:sensei", "urn:sensei:weights:2021")
            .attr("type", "static")
            .attr("mediaPresentationDuration", format!("PT{total:.1}S"))
            .attr(
                "maxSegmentDuration",
                format!("PT{:.1}S", self.chunk_duration_s),
            )
            .child(
                Element::new("ProgramInformation")
                    .child(Element::new("Title").with_text(&self.title)),
            )
            .child(
                Element::new("Period")
                    .attr("start", "PT0S")
                    .child(adaptation),
            );
        Ok(mpd.to_xml())
    }

    /// Parses an MPD produced by [`Manifest::to_xml`] (tolerating unknown
    /// elements and a missing weight extension).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed XML or missing required structure.
    pub fn parse(input: &str) -> Result<Self, DashError> {
        let root = crate::xml::parse(input)?;
        if root.name != "MPD" {
            return Err(DashError::Missing("MPD root element"));
        }
        let period = root.first("Period").ok_or(DashError::Missing("Period"))?;
        let adaptation = period
            .first("AdaptationSet")
            .ok_or(DashError::Missing("AdaptationSet"))?;
        let title = root
            .first("ProgramInformation")
            .and_then(|p| p.first("Title"))
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let chunk_duration_s = root
            .attribute("maxSegmentDuration")
            .and_then(parse_duration)
            .ok_or(DashError::Missing("maxSegmentDuration"))?;
        let weights = match adaptation.first("sensei:weights") {
            Some(w) => Some(parse_numbers(&w.text)?),
            None => None,
        };
        let mut representations = Vec::new();
        for rep in adaptation.all("Representation") {
            let id = rep
                .attribute("id")
                .ok_or(DashError::Missing("Representation id"))?
                .to_string();
            let bandwidth_bps = rep
                .attribute("bandwidth")
                .ok_or(DashError::Missing("Representation bandwidth"))?
                .parse::<u64>()
                .map_err(|_| {
                    DashError::BadNumber(rep.attribute("bandwidth").unwrap_or("").to_string())
                })?;
            let sizes = rep
                .first("sensei:segmentSizes")
                .ok_or(DashError::Missing("sensei:segmentSizes"))?;
            representations.push(Representation {
                id,
                bandwidth_bps,
                segment_sizes_bits: parse_numbers(&sizes.text)?,
            });
        }
        let manifest = Self {
            title,
            chunk_duration_s,
            representations,
            weights,
        };
        manifest.validate()?;
        Ok(manifest)
    }
}

fn parse_numbers(text: &str) -> Result<Vec<f64>, DashError> {
    text.split_whitespace()
        .map(|tok| {
            tok.parse::<f64>()
                .map_err(|_| DashError::BadNumber(tok.to_string()))
        })
        .collect()
}

/// Parses the `PT<seconds>S` ISO-8601 duration subset this crate writes.
fn parse_duration(s: &str) -> Option<f64> {
    s.strip_prefix("PT")?.strip_suffix('S')?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(with_weights: bool) -> Manifest {
        Manifest {
            title: "Soccer1".to_string(),
            chunk_duration_s: 4.0,
            representations: vec![
                Representation {
                    id: "r0".into(),
                    bandwidth_bps: 300_000,
                    segment_sizes_bits: vec![1.2e6, 1.3e6, 1.1e6],
                },
                Representation {
                    id: "r1".into(),
                    bandwidth_bps: 750_000,
                    segment_sizes_bits: vec![3.0e6, 3.2e6, 2.9e6],
                },
            ],
            weights: with_weights.then(|| vec![0.8, 1.6, 0.6]),
        }
    }

    #[test]
    fn round_trips_with_weights() {
        let m = manifest(true);
        let xml = m.to_xml().unwrap();
        assert!(xml.contains("sensei:weights"));
        assert!(xml.contains("urn:sensei:weights:2021"));
        let parsed = Manifest::parse(&xml).unwrap();
        assert_eq!(parsed.title, "Soccer1");
        assert_eq!(parsed.chunk_duration_s, 4.0);
        assert_eq!(parsed.num_chunks(), 3);
        let w = parsed.weights.as_ref().unwrap();
        for (a, b) in w.iter().zip(&[0.8, 1.6, 0.6]) {
            assert!((a - b).abs() < 1e-3);
        }
        assert_eq!(parsed.representations[1].bandwidth_bps, 750_000);
    }

    #[test]
    fn round_trips_without_weights() {
        let m = manifest(false);
        let xml = m.to_xml().unwrap();
        assert!(!xml.contains("<sensei:weights"));
        let parsed = Manifest::parse(&xml).unwrap();
        assert!(parsed.weights.is_none());
    }

    #[test]
    fn validation_catches_structural_errors() {
        let mut m = manifest(true);
        m.weights = Some(vec![1.0]);
        assert!(matches!(m.validate(), Err(DashError::InvalidManifest(_))));

        let mut m = manifest(true);
        m.representations[1].segment_sizes_bits.pop();
        assert!(m.validate().is_err());

        let mut m = manifest(true);
        m.representations[1].bandwidth_bps = 100;
        assert!(m.validate().is_err());

        let mut m = manifest(true);
        m.representations.clear();
        assert!(m.validate().is_err());

        let mut m = manifest(true);
        m.chunk_duration_s = 0.0;
        assert!(m.validate().is_err());

        let mut m = manifest(true);
        m.weights = Some(vec![1.0, -1.0, 1.0]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn weights_are_quantized_in_the_wire_format() {
        let mut m = manifest(true);
        m.weights = Some(vec![1.23456789, 0.999999, 2.0]);
        let parsed = Manifest::parse(&m.to_xml().unwrap()).unwrap();
        let w = parsed.weights.unwrap();
        assert_eq!(w[0], 1.235);
        assert_eq!(w[1], 1.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Manifest::parse("<MPD></MPD>").is_err());
        assert!(Manifest::parse("not xml").is_err());
        let m = manifest(true);
        let xml = m.to_xml().unwrap().replace("750000", "not-a-number");
        assert!(matches!(
            Manifest::parse(&xml).unwrap_err(),
            DashError::BadNumber(_)
        ));
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration("PT4.0S"), Some(4.0));
        assert_eq!(parse_duration("PT12S"), Some(12.0));
        assert_eq!(parse_duration("4.0"), None);
        assert_eq!(parse_duration("PT4.0"), None);
    }
}
