//! Rendered videos: a source video as actually streamed.
//!
//! A *rendered video* is the paper's unit of rating: "multiple renderings of
//! the same video, where each rendering involves some degradation in
//! quality" (§1). Renderings arise two ways in this repository — synthesized
//! by the crowdsourcing pipeline (a pristine stream plus injected incidents,
//! §4.3) or produced by the streaming simulator under an ABR algorithm.
//! Both yield the same [`RenderedVideo`] structure.
//!
//! Renders deliberately do **not** carry the latent chunk sensitivity: QoE
//! models may only see what a real system would observe (bitrates, stalls,
//! visual quality, motion statistics). The hidden sensitivity stays inside
//! [`crate::content::SourceVideo`] and is consulted only by the simulated
//! rater population in `sensei-crowd`.

use crate::content::SourceVideo;
use crate::encode::BitrateLadder;
use crate::quality::visual_quality;
use crate::VideoError;

/// One chunk of a rendered video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderedChunk {
    /// Bitrate this chunk was streamed at, in kbps.
    pub bitrate_kbps: f64,
    /// Perceptual visual quality of the encoded chunk, in `(0, 1)`.
    pub vq: f64,
    /// Stall time immediately before this chunk played, in seconds
    /// (buffer-empty rebuffering).
    pub rebuffer_s: f64,
    /// Portion of `rebuffer_s` that the player initiated deliberately
    /// (SENSEI's new adaptation action, §5.1). Always `<= rebuffer_s`.
    pub intentional_rebuffer_s: f64,
    /// Scene motion carried over from the source content (observable by
    /// QoE models via frame differencing).
    pub motion: f64,
    /// Spatial complexity carried over from the source content.
    pub complexity: f64,
}

/// A fully rendered (streamed) video.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedVideo {
    source_name: String,
    chunk_duration_s: f64,
    startup_delay_s: f64,
    chunks: Vec<RenderedChunk>,
}

/// A low-quality incident to inject into a pristine rendering (§2.3, §4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Incident {
    /// A stall of `duration_s` seconds immediately before `chunk` plays.
    Rebuffer {
        /// Chunk index the stall precedes.
        chunk: usize,
        /// Stall length in seconds.
        duration_s: f64,
    },
    /// `len_chunks` chunks starting at `chunk` streamed at ladder `level`
    /// instead of the top level.
    BitrateDrop {
        /// First affected chunk.
        chunk: usize,
        /// Number of affected chunks.
        len_chunks: usize,
        /// Ladder level to drop to (0 = lowest).
        level: usize,
    },
}

impl RenderedVideo {
    /// Builds a rendered video from explicit chunks.
    ///
    /// # Errors
    ///
    /// Returns an error when there are no chunks or any chunk carries
    /// negative/non-finite times, or `intentional_rebuffer_s > rebuffer_s`.
    pub fn new(
        source_name: impl Into<String>,
        chunk_duration_s: f64,
        startup_delay_s: f64,
        chunks: Vec<RenderedChunk>,
    ) -> Result<Self, VideoError> {
        if chunks.is_empty() {
            return Err(VideoError::NoChunks);
        }
        if !(startup_delay_s.is_finite() && startup_delay_s >= 0.0) {
            return Err(VideoError::InvalidContent {
                field: "startup_delay_s",
                value: startup_delay_s,
            });
        }
        for c in &chunks {
            if !(c.rebuffer_s.is_finite() && c.rebuffer_s >= 0.0) {
                return Err(VideoError::InvalidContent {
                    field: "rebuffer_s",
                    value: c.rebuffer_s,
                });
            }
            if c.intentional_rebuffer_s > c.rebuffer_s + 1e-9 {
                return Err(VideoError::InvalidContent {
                    field: "intentional_rebuffer_s",
                    value: c.intentional_rebuffer_s,
                });
            }
            if !(c.vq.is_finite() && (0.0..=1.0).contains(&c.vq)) {
                return Err(VideoError::InvalidContent {
                    field: "vq",
                    value: c.vq,
                });
            }
        }
        Ok(Self {
            source_name: source_name.into(),
            chunk_duration_s,
            startup_delay_s,
            chunks,
        })
    }

    /// The pristine rendering: every chunk at the ladder's top bitrate, no
    /// stalls. This is the survey's reference video (§B).
    pub fn pristine(source: &SourceVideo, ladder: &BitrateLadder) -> Self {
        let top = ladder.max_kbps();
        let chunks = source
            .chunks()
            .iter()
            .map(|c| RenderedChunk {
                bitrate_kbps: top,
                vq: visual_quality(top, c.complexity),
                rebuffer_s: 0.0,
                intentional_rebuffer_s: 0.0,
                motion: c.motion,
                complexity: c.complexity,
            })
            .collect();
        Self {
            source_name: source.name().to_string(),
            chunk_duration_s: source.chunk_duration_s(),
            startup_delay_s: 0.0,
            chunks,
        }
    }

    /// A pristine rendering with `incidents` injected — the §4.3 rendered
    /// videos the crowd rates.
    ///
    /// # Errors
    ///
    /// Returns an error when an incident references a chunk or ladder level
    /// out of range, or a non-positive stall duration.
    pub fn with_incidents(
        source: &SourceVideo,
        ladder: &BitrateLadder,
        incidents: &[Incident],
    ) -> Result<Self, VideoError> {
        let mut render = Self::pristine(source, ladder);
        let n = render.chunks.len();
        for &incident in incidents {
            match incident {
                Incident::Rebuffer { chunk, duration_s } => {
                    if chunk >= n {
                        return Err(VideoError::ChunkOutOfRange {
                            index: chunk,
                            len: n,
                        });
                    }
                    if !(duration_s.is_finite() && duration_s > 0.0) {
                        return Err(VideoError::InvalidContent {
                            field: "rebuffer duration",
                            value: duration_s,
                        });
                    }
                    render.chunks[chunk].rebuffer_s += duration_s;
                }
                Incident::BitrateDrop {
                    chunk,
                    len_chunks,
                    level,
                } => {
                    if chunk >= n || chunk + len_chunks > n {
                        return Err(VideoError::ChunkOutOfRange {
                            index: chunk + len_chunks,
                            len: n,
                        });
                    }
                    let kbps = ladder.kbps(level)?;
                    for i in chunk..chunk + len_chunks {
                        let complexity = render.chunks[i].complexity;
                        render.chunks[i].bitrate_kbps = kbps;
                        render.chunks[i].vq = visual_quality(kbps, complexity);
                    }
                }
            }
        }
        Ok(render)
    }

    /// Name of the source video.
    pub fn source_name(&self) -> &str {
        &self.source_name
    }

    /// Decomposes the render into its owned `(source_name, chunks)` buffers
    /// so hot paths (the simulator's session scratch) can recycle the
    /// allocations across sessions instead of dropping and re-allocating.
    pub fn into_parts(self) -> (String, Vec<RenderedChunk>) {
        (self.source_name, self.chunks)
    }

    /// Chunk duration in seconds.
    pub fn chunk_duration_s(&self) -> f64 {
        self.chunk_duration_s
    }

    /// Startup delay before the first chunk played, in seconds.
    pub fn startup_delay_s(&self) -> f64 {
        self.startup_delay_s
    }

    /// The rendered chunks, in playback order.
    pub fn chunks(&self) -> &[RenderedChunk] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Content duration (excluding stalls), in seconds.
    pub fn content_duration_s(&self) -> f64 {
        self.chunks.len() as f64 * self.chunk_duration_s
    }

    /// Total stall time including startup delay, in seconds.
    pub fn total_rebuffer_s(&self) -> f64 {
        self.startup_delay_s + self.chunks.iter().map(|c| c.rebuffer_s).sum::<f64>()
    }

    /// Rebuffering ratio: stall time over total watch time.
    pub fn rebuffer_ratio(&self) -> f64 {
        let stall = self.total_rebuffer_s();
        stall / (stall + self.content_duration_s())
    }

    /// Mean streamed bitrate in kbps.
    pub fn avg_bitrate_kbps(&self) -> f64 {
        self.chunks.iter().map(|c| c.bitrate_kbps).sum::<f64>() / self.chunks.len() as f64
    }

    /// Mean visual quality across chunks.
    pub fn avg_vq(&self) -> f64 {
        self.chunks.iter().map(|c| c.vq).sum::<f64>() / self.chunks.len() as f64
    }

    /// Number of chunk boundaries where the bitrate changed.
    pub fn num_switches(&self) -> usize {
        self.chunks
            .windows(2)
            .filter(|w| (w[0].bitrate_kbps - w[1].bitrate_kbps).abs() > 1e-9)
            .count()
    }

    /// Sum of |Δvq| across chunk boundaries where the bitrate actually
    /// changed — the quality-switch magnitude KSQI-style models penalize.
    /// Content-driven vq fluctuation at constant bitrate is not an
    /// adaptation artifact and is not counted.
    pub fn switch_magnitude(&self) -> f64 {
        self.chunks
            .windows(2)
            .filter(|w| (w[0].bitrate_kbps - w[1].bitrate_kbps).abs() > 1e-9)
            .map(|w| (w[0].vq - w[1].vq).abs())
            .sum()
    }

    /// Total bits delivered (bitrate × chunk duration summed), a proxy for
    /// bandwidth usage in the Fig. 12b accounting.
    pub fn delivered_bits(&self) -> f64 {
        self.chunks
            .iter()
            .map(|c| c.bitrate_kbps * 1000.0 * self.chunk_duration_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{Genre, SceneKind, SceneSpec, SourceVideo};

    fn source() -> SourceVideo {
        SourceVideo::from_script(
            "t",
            Genre::Sports,
            &[
                SceneSpec::new(SceneKind::NormalPlay, 4),
                SceneSpec::new(SceneKind::KeyMoment, 2),
            ],
            1,
        )
        .unwrap()
    }

    fn ladder() -> BitrateLadder {
        BitrateLadder::default_paper()
    }

    #[test]
    fn pristine_has_top_bitrate_everywhere() {
        let r = RenderedVideo::pristine(&source(), &ladder());
        assert_eq!(r.num_chunks(), 6);
        assert!(r.chunks().iter().all(|c| c.bitrate_kbps == 2850.0));
        assert_eq!(r.total_rebuffer_s(), 0.0);
        assert_eq!(r.num_switches(), 0);
        assert_eq!(r.rebuffer_ratio(), 0.0);
    }

    #[test]
    fn rebuffer_incident_lands_on_chunk() {
        let r = RenderedVideo::with_incidents(
            &source(),
            &ladder(),
            &[Incident::Rebuffer {
                chunk: 2,
                duration_s: 1.0,
            }],
        )
        .unwrap();
        assert_eq!(r.chunks()[2].rebuffer_s, 1.0);
        assert_eq!(r.total_rebuffer_s(), 1.0);
        // 1 s stall over 24 s content.
        assert!((r.rebuffer_ratio() - 1.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn bitrate_drop_recomputes_vq_and_switches() {
        let r = RenderedVideo::with_incidents(
            &source(),
            &ladder(),
            &[Incident::BitrateDrop {
                chunk: 1,
                len_chunks: 2,
                level: 0,
            }],
        )
        .unwrap();
        assert_eq!(r.chunks()[1].bitrate_kbps, 300.0);
        assert_eq!(r.chunks()[2].bitrate_kbps, 300.0);
        assert!(r.chunks()[1].vq < r.chunks()[0].vq);
        // Two switches: down at 0->1, up at 2->3.
        assert_eq!(r.num_switches(), 2);
        assert!(r.switch_magnitude() > 0.0);
        assert!(r.avg_bitrate_kbps() < 2850.0);
    }

    #[test]
    fn incident_bounds_are_validated() {
        let s = source();
        let l = ladder();
        assert!(RenderedVideo::with_incidents(
            &s,
            &l,
            &[Incident::Rebuffer {
                chunk: 6,
                duration_s: 1.0
            }]
        )
        .is_err());
        assert!(RenderedVideo::with_incidents(
            &s,
            &l,
            &[Incident::Rebuffer {
                chunk: 0,
                duration_s: 0.0
            }]
        )
        .is_err());
        assert!(RenderedVideo::with_incidents(
            &s,
            &l,
            &[Incident::BitrateDrop {
                chunk: 5,
                len_chunks: 2,
                level: 0
            }]
        )
        .is_err());
        assert!(RenderedVideo::with_incidents(
            &s,
            &l,
            &[Incident::BitrateDrop {
                chunk: 0,
                len_chunks: 1,
                level: 9
            }]
        )
        .is_err());
    }

    #[test]
    fn construction_validates_chunks() {
        let good = RenderedChunk {
            bitrate_kbps: 300.0,
            vq: 0.5,
            rebuffer_s: 0.0,
            intentional_rebuffer_s: 0.0,
            motion: 0.5,
            complexity: 0.5,
        };
        assert!(RenderedVideo::new("t", 4.0, 0.0, vec![good]).is_ok());
        assert!(RenderedVideo::new("t", 4.0, 0.0, vec![]).is_err());
        assert!(RenderedVideo::new("t", 4.0, -1.0, vec![good]).is_err());
        let bad_stall = RenderedChunk {
            rebuffer_s: -1.0,
            ..good
        };
        assert!(RenderedVideo::new("t", 4.0, 0.0, vec![bad_stall]).is_err());
        let bad_intent = RenderedChunk {
            rebuffer_s: 1.0,
            intentional_rebuffer_s: 2.0,
            ..good
        };
        assert!(RenderedVideo::new("t", 4.0, 0.0, vec![bad_intent]).is_err());
        let bad_vq = RenderedChunk { vq: 1.5, ..good };
        assert!(RenderedVideo::new("t", 4.0, 0.0, vec![bad_vq]).is_err());
    }

    #[test]
    fn startup_delay_counts_as_rebuffering() {
        let r = RenderedVideo::new(
            "t",
            4.0,
            2.0,
            vec![RenderedChunk {
                bitrate_kbps: 300.0,
                vq: 0.5,
                rebuffer_s: 0.0,
                intentional_rebuffer_s: 0.0,
                motion: 0.5,
                complexity: 0.5,
            }],
        )
        .unwrap();
        assert_eq!(r.total_rebuffer_s(), 2.0);
        assert!((r.rebuffer_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn delivered_bits_accounting() {
        let r = RenderedVideo::pristine(&source(), &ladder());
        let expected = 2850.0 * 1000.0 * 4.0 * 6.0;
        assert!((r.delivered_bits() - expected).abs() < 1.0);
    }
}
