//! Genres, scene kinds, and the per-chunk content model.
//!
//! §2.3 of the paper identifies three archetypes of attention shifts: key
//! moments in a storyline (goal in Soccer1, the trap in BigBuckBunny),
//! information-delivery moments (scoreboard in Soccer2, looting in FPS2),
//! and low-attention transitions (the universe background in Space). The
//! paper also documents two *confounders* that break heuristic QoE models:
//! highly dynamic but unimportant content (ads, quick scans of players)
//! fools motion-based models like LSTM-QoE, and object-rich but unimportant
//! content (crowd shots) fools CV highlight detectors (Appendix D).
//!
//! [`SceneKind`] encodes those archetypes; each carries a canonical profile
//! of (sensitivity, motion, complexity, object-richness) from which chunks
//! are sampled with seeded jitter.

use crate::VideoError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Content genre, matching Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Genre {
    /// Live sports: basketball, soccer, discus, wrestling, motor racing.
    Sports,
    /// Gaming footage: tank battles, first-person shooters.
    Gaming,
    /// Nature and scenery: mountains, animals, space.
    Nature,
    /// Animated content.
    Animation,
}

impl Genre {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Genre::Sports => "Sports",
            Genre::Gaming => "Gaming",
            Genre::Nature => "Nature",
            Genre::Animation => "Animation",
        }
    }
}

/// Scene archetype; determines the latent content profile of its chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// Baseline content: normal gameplay, dialogue, routine action.
    NormalPlay,
    /// Storyline climax where tension has built up (goal, buzzer beater,
    /// trap springing). Highest quality sensitivity.
    KeyMoment,
    /// Information delivery the viewer must not miss (scoreboard change,
    /// item pickup). High sensitivity, low motion.
    Informational,
    /// Celebrations, replays, crowd shots. Moderate sensitivity but very
    /// object-rich — the CV-baseline confounder of Appendix D.
    Replay,
    /// Scenic transitions and backgrounds. Lowest sensitivity.
    Scenic,
    /// Ads and rapid camera scans: highly dynamic yet unimportant — the
    /// motion-heuristic confounder of §2.3.
    AdBreak,
}

impl SceneKind {
    /// All scene kinds, for enumeration in tests and generators.
    pub const ALL: [SceneKind; 6] = [
        SceneKind::NormalPlay,
        SceneKind::KeyMoment,
        SceneKind::Informational,
        SceneKind::Replay,
        SceneKind::Scenic,
        SceneKind::AdBreak,
    ];

    /// Canonical content profile `(sensitivity, motion, complexity, objects)`
    /// for this scene kind. Sensitivity is a positive multiplier (corpus mean
    /// near 1); the other three live in `[0, 1]`.
    pub fn profile(self) -> (f64, f64, f64, f64) {
        match self {
            SceneKind::NormalPlay => (0.90, 0.70, 0.60, 0.50),
            SceneKind::KeyMoment => (1.95, 0.80, 0.65, 0.60),
            SceneKind::Informational => (1.45, 0.30, 0.40, 0.40),
            SceneKind::Replay => (1.05, 0.60, 0.60, 0.90),
            SceneKind::Scenic => (0.55, 0.15, 0.30, 0.15),
            SceneKind::AdBreak => (0.60, 0.88, 0.70, 0.70),
        }
    }

    /// Jitter scale applied to the sensitivity component when sampling.
    fn sensitivity_jitter(self) -> f64 {
        match self {
            SceneKind::KeyMoment => 0.12,
            SceneKind::Informational => 0.10,
            _ => 0.07,
        }
    }
}

/// Latent per-chunk content profile.
///
/// `sensitivity` is the ground-truth quantity the paper crowdsources;
/// `motion` is what dynamics-based QoE heuristics observe; `complexity`
/// drives encoding difficulty and the rate–quality curve; `objects` is the
/// object-richness channel CV highlight detectors key on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkContent {
    /// Scene archetype this chunk belongs to.
    pub scene: SceneKind,
    /// Latent quality sensitivity, positive, corpus mean near 1.
    pub sensitivity: f64,
    /// Apparent motion / scene dynamics in `[0, 1]`.
    pub motion: f64,
    /// Spatial encoding complexity in `[0, 1]`.
    pub complexity: f64,
    /// Object richness in `[0, 1]`.
    pub objects: f64,
}

impl ChunkContent {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns an error when sensitivity is not positive-finite or when any
    /// of the `[0, 1]` fields fall outside their range.
    pub fn validate(&self) -> Result<(), VideoError> {
        if !(self.sensitivity.is_finite() && self.sensitivity > 0.0) {
            return Err(VideoError::InvalidContent {
                field: "sensitivity",
                value: self.sensitivity,
            });
        }
        for (field, value) in [
            ("motion", self.motion),
            ("complexity", self.complexity),
            ("objects", self.objects),
        ] {
            if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                return Err(VideoError::InvalidContent { field, value });
            }
        }
        Ok(())
    }
}

/// A scripted scene: `len_chunks` chunks of the given kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneSpec {
    /// Scene archetype.
    pub kind: SceneKind,
    /// Scene length in chunks.
    pub len_chunks: usize,
}

impl SceneSpec {
    /// Shorthand constructor.
    pub fn new(kind: SceneKind, len_chunks: usize) -> Self {
        Self { kind, len_chunks }
    }
}

/// A source video: an ordered list of chunk content profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceVideo {
    name: String,
    genre: Genre,
    chunk_duration_s: f64,
    chunks: Vec<ChunkContent>,
}

impl SourceVideo {
    /// Builds a video from explicit chunk profiles.
    ///
    /// # Errors
    ///
    /// Returns an error when the chunk list is empty or any profile is
    /// invalid.
    pub fn new(
        name: impl Into<String>,
        genre: Genre,
        chunk_duration_s: f64,
        chunks: Vec<ChunkContent>,
    ) -> Result<Self, VideoError> {
        if chunks.is_empty() {
            return Err(VideoError::NoChunks);
        }
        for c in &chunks {
            c.validate()?;
        }
        Ok(Self {
            name: name.into(),
            genre,
            chunk_duration_s,
            chunks,
        })
    }

    /// Builds a video by sampling chunks from a scene script, with seeded
    /// jitter around each scene kind's canonical profile.
    ///
    /// # Errors
    ///
    /// Returns an error when the script contains no chunks.
    pub fn from_script(
        name: impl Into<String>,
        genre: Genre,
        script: &[SceneSpec],
        seed: u64,
    ) -> Result<Self, VideoError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chunks = Vec::new();
        for spec in script {
            for _ in 0..spec.len_chunks {
                chunks.push(sample_chunk(spec.kind, &mut rng));
            }
        }
        Self::new(name, genre, crate::CHUNK_DURATION_S, chunks)
    }

    /// Video name (Table-1 identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Content genre.
    pub fn genre(&self) -> Genre {
        self.genre
    }

    /// Chunk duration in seconds (4 s throughout the paper).
    pub fn chunk_duration_s(&self) -> f64 {
        self.chunk_duration_s
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.chunks.len() as f64 * self.chunk_duration_s
    }

    /// All chunk profiles in order.
    pub fn chunks(&self) -> &[ChunkContent] {
        &self.chunks
    }

    /// One chunk profile.
    ///
    /// # Errors
    ///
    /// Returns an error when `index` is out of range.
    pub fn chunk(&self, index: usize) -> Result<&ChunkContent, VideoError> {
        self.chunks.get(index).ok_or(VideoError::ChunkOutOfRange {
            index,
            len: self.chunks.len(),
        })
    }

    /// The latent sensitivity vector (ground truth the crowd pipeline tries
    /// to recover). Normalized to mean 1 so videos are comparable.
    pub fn true_sensitivity(&self) -> Vec<f64> {
        let raw: Vec<f64> = self.chunks.iter().map(|c| c.sensitivity).collect();
        let mean = raw.iter().sum::<f64>() / raw.len() as f64;
        raw.iter().map(|&s| s / mean).collect()
    }
}

/// Samples one chunk for a scene kind with seeded jitter.
fn sample_chunk<R: rand::Rng>(kind: SceneKind, rng: &mut R) -> ChunkContent {
    let (s, m, c, o) = kind.profile();
    let jitter = |rng: &mut R, scale: f64| sensei_gaussian(rng) * scale;
    ChunkContent {
        scene: kind,
        sensitivity: (s + jitter(rng, kind.sensitivity_jitter())).max(0.05),
        motion: (m + jitter(rng, 0.06)).clamp(0.0, 1.0),
        complexity: (c + jitter(rng, 0.06)).clamp(0.0, 1.0),
        objects: (o + jitter(rng, 0.06)).clamp(0.0, 1.0),
    }
}

/// Standard-normal draw (Box–Muller); local copy to avoid a dependency
/// cycle with `sensei-trace`.
fn sensei_gaussian<R: rand::Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_profiles_encode_paper_confounders() {
        // Key moments are the most sensitive content.
        let key = SceneKind::KeyMoment.profile().0;
        for kind in SceneKind::ALL {
            assert!(kind.profile().0 <= key);
        }
        // Ads are more dynamic than key moments but far less sensitive
        // (the LSTM-QoE confounder).
        let (ad_s, ad_m, _, _) = SceneKind::AdBreak.profile();
        let (key_s, key_m, _, _) = SceneKind::KeyMoment.profile();
        assert!(ad_m > key_m && ad_s < 0.5 * key_s);
        // Replays are the most object-rich but not the most sensitive
        // (the CV-baseline confounder).
        let (rep_s, _, _, rep_o) = SceneKind::Replay.profile();
        for kind in SceneKind::ALL {
            assert!(kind.profile().3 <= rep_o);
        }
        assert!(rep_s < key_s);
    }

    #[test]
    fn from_script_produces_expected_layout() {
        let script = [
            SceneSpec::new(SceneKind::NormalPlay, 3),
            SceneSpec::new(SceneKind::KeyMoment, 2),
        ];
        let v = SourceVideo::from_script("t", Genre::Sports, &script, 1).unwrap();
        assert_eq!(v.num_chunks(), 5);
        assert_eq!(v.chunks()[0].scene, SceneKind::NormalPlay);
        assert_eq!(v.chunks()[4].scene, SceneKind::KeyMoment);
        assert_eq!(v.duration_s(), 20.0);
        // Key moments sampled more sensitive than normal play.
        assert!(v.chunks()[3].sensitivity > v.chunks()[0].sensitivity);
    }

    #[test]
    fn from_script_is_deterministic() {
        let script = [SceneSpec::new(SceneKind::NormalPlay, 10)];
        let a = SourceVideo::from_script("t", Genre::Sports, &script, 5).unwrap();
        let b = SourceVideo::from_script("t", Genre::Sports, &script, 5).unwrap();
        assert_eq!(a, b);
        let c = SourceVideo::from_script("t", Genre::Sports, &script, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn empty_script_is_rejected() {
        assert_eq!(
            SourceVideo::from_script("t", Genre::Sports, &[], 0).unwrap_err(),
            VideoError::NoChunks
        );
    }

    #[test]
    fn invalid_content_is_rejected() {
        let mut c = ChunkContent {
            scene: SceneKind::NormalPlay,
            sensitivity: 1.0,
            motion: 0.5,
            complexity: 0.5,
            objects: 0.5,
        };
        assert!(c.validate().is_ok());
        c.sensitivity = 0.0;
        assert!(c.validate().is_err());
        c.sensitivity = 1.0;
        c.motion = 1.5;
        assert!(matches!(
            c.validate().unwrap_err(),
            VideoError::InvalidContent {
                field: "motion",
                ..
            }
        ));
    }

    #[test]
    fn true_sensitivity_is_mean_one() {
        let script = [
            SceneSpec::new(SceneKind::Scenic, 5),
            SceneSpec::new(SceneKind::KeyMoment, 5),
        ];
        let v = SourceVideo::from_script("t", Genre::Nature, &script, 3).unwrap();
        let s = v.true_sensitivity();
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        // Ordering preserved: key moments above scenic chunks.
        assert!(s[7] > s[2]);
    }

    #[test]
    fn chunk_accessor_bounds() {
        let script = [SceneSpec::new(SceneKind::NormalPlay, 2)];
        let v = SourceVideo::from_script("t", Genre::Sports, &script, 0).unwrap();
        assert!(v.chunk(1).is_ok());
        assert!(matches!(
            v.chunk(2).unwrap_err(),
            VideoError::ChunkOutOfRange { index: 2, len: 2 }
        ));
    }
}
