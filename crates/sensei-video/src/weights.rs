//! Per-chunk sensitivity weights — the paper's key abstraction (§3).
//!
//! "The enabler behind SENSEI is the abstraction of video chunk-level
//! weights that describe the inherent quality sensitivity of different parts
//! of a video." A [`SensitivityWeights`] vector has one positive entry per
//! chunk, normalized to mean 1 so that a weight of 2 means "twice as
//! sensitive as the video's average chunk".

use crate::content::SourceVideo;
use crate::VideoError;

/// A per-chunk quality-sensitivity weight vector.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityWeights {
    w: Vec<f64>,
}

impl SensitivityWeights {
    /// Builds a weight vector, normalizing to mean 1.
    ///
    /// # Errors
    ///
    /// Returns an error when the vector is empty or any entry is
    /// non-positive or non-finite.
    pub fn new(raw: Vec<f64>) -> Result<Self, VideoError> {
        if raw.is_empty() {
            return Err(VideoError::InvalidWeights("empty weight vector".into()));
        }
        for (i, &v) in raw.iter().enumerate() {
            if !v.is_finite() || v <= 0.0 {
                return Err(VideoError::InvalidWeights(format!(
                    "weight {i} is {v}; weights must be positive and finite"
                )));
            }
        }
        let mean = raw.iter().sum::<f64>() / raw.len() as f64;
        Ok(Self {
            w: raw.iter().map(|&v| v / mean).collect(),
        })
    }

    /// The uniform (sensitivity-unaware) weight vector: every chunk 1.0.
    /// This is what every pre-SENSEI QoE model implicitly assumes.
    pub fn uniform(num_chunks: usize) -> Result<Self, VideoError> {
        Self::new(vec![1.0; num_chunks])
    }

    /// The ground-truth weights of a source video (the vector the crowd
    /// pipeline tries to recover). Only test/oracle code should use this.
    pub fn ground_truth(source: &SourceVideo) -> Self {
        Self {
            w: source.true_sensitivity(),
        }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the vector is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// The normalized weights.
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }

    /// Weight of one chunk.
    ///
    /// # Errors
    ///
    /// Returns an error when `index` is out of range.
    pub fn get(&self, index: usize) -> Result<f64, VideoError> {
        self.w
            .get(index)
            .copied()
            .ok_or(VideoError::ChunkOutOfRange {
                index,
                len: self.w.len(),
            })
    }

    /// Weights of the next `horizon` chunks starting at `from`, truncated at
    /// the video end — the ABR lookahead input of §5.1.
    pub fn window(&self, from: usize, horizon: usize) -> &[f64] {
        let start = from.min(self.w.len());
        let end = (from + horizon).min(self.w.len());
        &self.w[start..end]
    }

    /// Max/min weight ratio — a spread measure used for corpus calibration.
    pub fn spread(&self) -> f64 {
        let max = self.w.iter().cloned().fold(0.0, f64::max);
        let min = self.w.iter().cloned().fold(f64::INFINITY, f64::min);
        max / min
    }

    /// Mean absolute error against another weight vector of the same length
    /// — used to validate crowd inference against ground truth.
    ///
    /// # Errors
    ///
    /// Returns an error when the lengths differ.
    pub fn mae(&self, other: &SensitivityWeights) -> Result<f64, VideoError> {
        if self.len() != other.len() {
            return Err(VideoError::InvalidWeights(format!(
                "length mismatch: {} vs {}",
                self.len(),
                other.len()
            )));
        }
        Ok(self
            .w
            .iter()
            .zip(&other.w)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / self.w.len() as f64)
    }

    /// Indices of chunks whose weight deviates from 1.0 by more than
    /// `alpha` (e.g. 0.06 = 6%) — the α-outlier selection of the two-step
    /// scheduler (§4.3).
    pub fn outliers(&self, alpha: f64) -> Vec<usize> {
        self.w
            .iter()
            .enumerate()
            .filter(|(_, &w)| (w - 1.0).abs() > alpha)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{Genre, SceneKind, SceneSpec};

    #[test]
    fn normalizes_to_mean_one() {
        let w = SensitivityWeights::new(vec![2.0, 4.0, 6.0]).unwrap();
        let mean = w.as_slice().iter().sum::<f64>() / 3.0;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!((w.get(2).unwrap() / w.get(0).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(SensitivityWeights::new(vec![]).is_err());
        assert!(SensitivityWeights::new(vec![1.0, 0.0]).is_err());
        assert!(SensitivityWeights::new(vec![1.0, -2.0]).is_err());
        assert!(SensitivityWeights::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn uniform_is_all_ones() {
        let w = SensitivityWeights::uniform(4).unwrap();
        assert_eq!(w.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(w.spread(), 1.0);
        assert!(SensitivityWeights::uniform(0).is_err());
    }

    #[test]
    fn window_truncates_at_end() {
        let w = SensitivityWeights::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(w.window(0, 2).len(), 2);
        assert_eq!(w.window(3, 5).len(), 1);
        assert_eq!(w.window(4, 5).len(), 0);
        assert_eq!(w.window(9, 5).len(), 0);
    }

    #[test]
    fn ground_truth_matches_source() {
        let v = SourceVideo::from_script(
            "t",
            Genre::Sports,
            &[
                SceneSpec::new(SceneKind::Scenic, 3),
                SceneSpec::new(SceneKind::KeyMoment, 3),
            ],
            2,
        )
        .unwrap();
        let w = SensitivityWeights::ground_truth(&v);
        assert_eq!(w.len(), 6);
        assert!(w.get(5).unwrap() > w.get(0).unwrap());
    }

    #[test]
    fn mae_and_length_check() {
        let a = SensitivityWeights::new(vec![1.0, 1.0]).unwrap();
        let b = SensitivityWeights::new(vec![1.0, 3.0]).unwrap();
        assert!(a.mae(&b).unwrap() > 0.0);
        assert_eq!(a.mae(&a).unwrap(), 0.0);
        let c = SensitivityWeights::new(vec![1.0]).unwrap();
        assert!(a.mae(&c).is_err());
    }

    #[test]
    fn outlier_selection() {
        let w = SensitivityWeights::new(vec![1.0, 1.0, 1.0, 2.0, 0.4]).unwrap();
        let out = w.outliers(0.06);
        // After normalization the extreme chunks deviate; flat ones may not.
        assert!(out.contains(&3));
        assert!(out.contains(&4));
        assert!(!out.is_empty());
        // Everything is an outlier at alpha = 0.
        assert_eq!(w.outliers(0.0).len(), 5);
    }
}
