//! Video-content substrate for the SENSEI reproduction.
//!
//! The paper's experiments run over 16 real source videos (Table 1) drawn
//! from LIVE-MOBILE, LIVE-NFLX-II, YouTube-UGC and WaterlooSQOE-III. Real
//! pixels are not required by any experiment — what matters is each chunk's
//! *content profile*: how sensitive users are to quality incidents in it
//! (the paper's latent quantity), how "dynamic" it looks to motion-based QoE
//! heuristics, how hard it is to encode, and how object-rich it appears to
//! computer-vision highlight detectors. This crate models videos at exactly
//! that granularity:
//!
//! * [`content`] — genres, scene kinds, per-chunk [`content::ChunkContent`],
//!   and [`content::SourceVideo`] built from scripted scene graphs.
//! * [`corpus`] — the 16-video Table-1 test set with per-video scene scripts
//!   (the goal in Soccer1, the scoreboard in Soccer2, the scenic lulls in
//!   Space, the bully-trap in BigBuckBunny, ...), plus
//!   [`corpus::generate_family`]: procedurally composed scene scripts that
//!   scale the corpus to hundreds of distinct deterministic videos for
//!   fleet evaluation.
//! * [`encode`] — the {300, 750, 1200, 1850, 2850} kbps ladder and a VBR
//!   chunk-size model.
//! * [`quality`] — the `vq(bitrate, complexity)` perceptual-quality curve
//!   standing in for VMAF.
//! * [`render`] — [`render::RenderedVideo`]: a video as actually streamed
//!   (bitrates, stalls, startup delay), plus quality-incident injection used
//!   by the crowdsourcing pipeline.
//! * [`weights`] — [`weights::SensitivityWeights`], the paper's per-chunk
//!   weight abstraction (§3).

// Chunk counts and bit sizes are far below 2^52, and the one
// float→int site (procedural corpus sizing) rounds a small clamped
// value.
#![allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]

pub mod content;
pub mod corpus;
pub mod encode;
pub mod quality;
pub mod render;
pub mod weights;

pub use content::{ChunkContent, Genre, SceneKind, SourceVideo};
pub use corpus::{generate_family, CorpusEntry, GenreMix};
pub use encode::{BitrateLadder, EncodedVideo};
pub use quality::visual_quality;
pub use render::{Incident, RenderedChunk, RenderedVideo};
pub use weights::SensitivityWeights;

/// Canonical chunk duration used throughout the paper (§2.4, §7.1).
pub const CHUNK_DURATION_S: f64 = 4.0;

/// Errors produced by the video substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum VideoError {
    /// A video must contain at least one chunk.
    NoChunks,
    /// A chunk index is out of range.
    ChunkOutOfRange {
        /// Requested chunk index.
        index: usize,
        /// Number of chunks in the video.
        len: usize,
    },
    /// A content field (sensitivity, motion, complexity, objects) is invalid.
    InvalidContent {
        /// Name of the offending field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A bitrate ladder must be non-empty, positive, and strictly increasing.
    InvalidLadder,
    /// A bitrate is not present in the ladder.
    UnknownBitrate(f64),
    /// Weight vectors must be positive, finite, and match the chunk count.
    InvalidWeights(String),
    /// A procedural genre mix must have non-negative finite weights with a
    /// positive sum.
    InvalidGenreMix(String),
}

impl std::fmt::Display for VideoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VideoError::NoChunks => write!(f, "video has no chunks"),
            VideoError::ChunkOutOfRange { index, len } => {
                write!(f, "chunk {index} out of range for {len}-chunk video")
            }
            VideoError::InvalidContent { field, value } => {
                write!(f, "invalid content field {field}: {value}")
            }
            VideoError::InvalidLadder => write!(
                f,
                "bitrate ladder must be non-empty, positive, strictly increasing"
            ),
            VideoError::UnknownBitrate(b) => write!(f, "bitrate {b} kbps is not in the ladder"),
            VideoError::InvalidWeights(msg) => write!(f, "invalid sensitivity weights: {msg}"),
            VideoError::InvalidGenreMix(msg) => write!(f, "invalid genre mix: {msg}"),
        }
    }
}

impl std::error::Error for VideoError {}
