//! The perceptual visual-quality curve standing in for VMAF.
//!
//! Pixel-based visual-quality assessment (PSNR, SSIM, VMAF) maps an encoded
//! chunk to a quality score. The two properties every experiment in the
//! paper relies on are (1) concave diminishing returns in bitrate and
//! (2) complexity dependence: at equal bitrate, visually complex content
//! scores lower. We model both with a saturating (Michaelis–Menten) curve:
//!
//! ```text
//! vq(b, c) = b / (b + h(c)),   h(c) = 250 + 900·c   (kbps)
//! ```
//!
//! where `b` is the bitrate in kbps and `c ∈ [0, 1]` the chunk's spatial
//! complexity. `h(c)` is the half-saturation bitrate: content at complexity
//! 0.5 reaches quality 0.5 at 700 kbps. On the paper's ladder this yields
//! quality roughly 0.30 → 0.80 from 300 kbps to 2850 kbps at mid complexity,
//! mirroring normalized VMAF's range over 240p–1080p encodes.

/// Perceptual visual quality of a chunk encoded at `bitrate_kbps` with
/// spatial complexity `complexity ∈ [0, 1]`. Output is in `(0, 1)`,
/// monotonically increasing and strictly concave in bitrate.
///
/// # Panics
///
/// Panics when the bitrate is not positive-finite or complexity is outside
/// `[0, 1]` — both indicate a bug in the caller, not a data condition.
pub fn visual_quality(bitrate_kbps: f64, complexity: f64) -> f64 {
    assert!(
        bitrate_kbps.is_finite() && bitrate_kbps > 0.0,
        "bitrate must be positive, got {bitrate_kbps}"
    );
    assert!(
        (0.0..=1.0).contains(&complexity),
        "complexity must be in [0, 1], got {complexity}"
    );
    let half_sat = 250.0 + 900.0 * complexity;
    bitrate_kbps / (bitrate_kbps + half_sat)
}

/// Half-saturation bitrate (kbps) for a complexity level; exposed for tests
/// and documentation.
pub fn half_saturation_kbps(complexity: f64) -> f64 {
    250.0 + 900.0 * complexity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::DEFAULT_LADDER_KBPS;

    #[test]
    fn quality_is_monotone_in_bitrate() {
        for c in [0.0, 0.3, 0.7, 1.0] {
            let mut prev = 0.0;
            for &b in &DEFAULT_LADDER_KBPS {
                let q = visual_quality(b, c);
                assert!(q > prev);
                prev = q;
            }
        }
    }

    #[test]
    fn quality_is_decreasing_in_complexity() {
        for &b in &DEFAULT_LADDER_KBPS {
            assert!(visual_quality(b, 0.2) > visual_quality(b, 0.8));
        }
    }

    #[test]
    fn quality_is_concave_in_bitrate() {
        // Second differences over the ladder must be negative.
        let c = 0.5;
        let q: Vec<f64> = [300.0, 600.0, 900.0, 1200.0]
            .iter()
            .map(|&b| visual_quality(b, c))
            .collect();
        for w in q.windows(3) {
            assert!(w[2] - w[1] < w[1] - w[0]);
        }
    }

    #[test]
    fn quality_range_is_sane() {
        // Mid-complexity content spans roughly 0.3 to 0.8 over the ladder.
        let low = visual_quality(300.0, 0.5);
        let high = visual_quality(2850.0, 0.5);
        assert!((0.25..0.35).contains(&low), "low = {low}");
        assert!((0.75..0.85).contains(&high), "high = {high}");
    }

    #[test]
    fn half_saturation_hits_half_quality() {
        for c in [0.0, 0.5, 1.0] {
            let h = half_saturation_kbps(c);
            assert!((visual_quality(h, c) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "bitrate")]
    fn rejects_zero_bitrate() {
        let _ = visual_quality(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "complexity")]
    fn rejects_bad_complexity() {
        let _ = visual_quality(300.0, 1.5);
    }
}
