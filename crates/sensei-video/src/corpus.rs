//! The 16-video test corpus of Table 1.
//!
//! Each video reproduces the paper's name, genre, and length, and carries a
//! scripted scene graph matching the content description in Fig. 19 of the
//! appendix (e.g. Soccer1 is "a goal after a failed shoot", Soccer2
//! "presenting the scoreboard after a goal", Space "a satellite taking
//! pictures of Earth", BigBuckBunny "a rabbit dealing with three tiny
//! bullies"). Chunk-level profiles are sampled from the scripts with seeded
//! jitter, so the corpus is deterministic given a seed.

use crate::content::{Genre, SceneKind, SceneSpec, SourceVideo};
use crate::VideoError;

use SceneKind::{AdBreak, Informational, KeyMoment, NormalPlay, Replay, Scenic};

/// One corpus entry: a source video plus its (simulated) dataset of origin.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The scripted source video.
    pub video: SourceVideo,
    /// Name of the public dataset the paper drew this video from.
    pub source_dataset: &'static str,
}

impl CorpusEntry {
    /// Length formatted `m:ss` as in Table 1.
    pub fn length_label(&self) -> String {
        let secs = self.video.duration_s().round() as u64;
        format!("{}:{:02}", secs / 60, secs % 60)
    }
}

/// Scene script and metadata for one Table-1 video.
struct Spec {
    name: &'static str,
    genre: Genre,
    dataset: &'static str,
    script: &'static [SceneSpec],
}

const fn s(kind: SceneKind, len: usize) -> SceneSpec {
    SceneSpec {
        kind,
        len_chunks: len,
    }
}

/// Table 1 in script form. Chunk counts × 4 s reproduce the paper lengths:
/// 55 chunks = 3:40, 50 = 3:20, 21 = 1:24, 149 = 9:56.
const SPECS: [Spec; 16] = [
    Spec {
        name: "Basket1",
        genre: Genre::Sports,
        dataset: "LIVE-MOBILE",
        // A buzzer beater at the end of a basketball game.
        script: &[
            s(NormalPlay, 10),
            s(AdBreak, 3),
            s(NormalPlay, 8),
            s(Replay, 3),
            s(NormalPlay, 9),
            s(Informational, 2),
            s(NormalPlay, 10),
            s(KeyMoment, 4),
            s(Replay, 4),
            s(Informational, 2),
        ],
    },
    Spec {
        name: "Soccer1",
        genre: Genre::Sports,
        dataset: "LIVE-NFLX-II",
        // A goal after a failed shoot (the Fig. 1 video).
        script: &[
            s(NormalPlay, 12),
            s(AdBreak, 4),
            s(NormalPlay, 10),
            s(KeyMoment, 4),
            s(Replay, 4),
            s(Informational, 2),
            s(NormalPlay, 10),
            s(Scenic, 4),
        ],
    },
    Spec {
        name: "Basket2",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // A free throw followed by a one-on-one defense.
        script: &[
            s(NormalPlay, 8),
            s(Informational, 3),
            s(NormalPlay, 12),
            s(KeyMoment, 3),
            s(Replay, 3),
            s(NormalPlay, 10),
            s(AdBreak, 4),
            s(NormalPlay, 9),
            s(Informational, 3),
        ],
    },
    Spec {
        name: "Soccer2",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // Presenting the scoreboard after a goal.
        script: &[
            s(NormalPlay, 14),
            s(KeyMoment, 3),
            s(Informational, 4),
            s(Replay, 3),
            s(NormalPlay, 12),
            s(AdBreak, 4),
            s(NormalPlay, 11),
            s(Informational, 4),
        ],
    },
    Spec {
        name: "Discus",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // A man throwing a discus.
        script: &[
            s(NormalPlay, 10),
            s(Scenic, 4),
            s(NormalPlay, 8),
            s(KeyMoment, 3),
            s(Replay, 4),
            s(NormalPlay, 10),
            s(Informational, 3),
            s(NormalPlay, 9),
            s(Scenic, 4),
        ],
    },
    Spec {
        name: "Wrestling",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // Two wrestling players.
        script: &[
            s(NormalPlay, 12),
            s(KeyMoment, 4),
            s(Replay, 3),
            s(NormalPlay, 10),
            s(AdBreak, 4),
            s(NormalPlay, 10),
            s(KeyMoment, 3),
            s(Replay, 3),
            s(Informational, 3),
            s(Scenic, 3),
        ],
    },
    Spec {
        name: "Motor",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // Motor racing.
        script: &[
            s(NormalPlay, 14),
            s(AdBreak, 4),
            s(NormalPlay, 10),
            s(KeyMoment, 3),
            s(Replay, 4),
            s(NormalPlay, 12),
            s(Scenic, 5),
            s(Informational, 3),
        ],
    },
    Spec {
        name: "Tank",
        genre: Genre::Gaming,
        dataset: "YouTube-UGC",
        // A tank attacking a house.
        script: &[
            s(NormalPlay, 12),
            s(KeyMoment, 4),
            s(Replay, 2),
            s(NormalPlay, 10),
            s(Informational, 3),
            s(NormalPlay, 12),
            s(KeyMoment, 3),
            s(Scenic, 5),
            s(NormalPlay, 4),
        ],
    },
    Spec {
        name: "FPS1",
        genre: Genre::Gaming,
        dataset: "YouTube-UGC",
        // A first-person shooting game.
        script: &[
            s(NormalPlay, 10),
            s(KeyMoment, 4),
            s(Informational, 2),
            s(NormalPlay, 12),
            s(KeyMoment, 3),
            s(NormalPlay, 10),
            s(Scenic, 4),
            s(NormalPlay, 10),
        ],
    },
    Spec {
        name: "FPS2",
        genre: Genre::Gaming,
        dataset: "YouTube-UGC",
        // A player robbing supplies after killing an enemy (§2.3).
        script: &[
            s(NormalPlay, 10),
            s(KeyMoment, 3),
            s(Informational, 4),
            s(NormalPlay, 12),
            s(KeyMoment, 3),
            s(Informational, 3),
            s(NormalPlay, 12),
            s(Scenic, 4),
            s(NormalPlay, 4),
        ],
    },
    Spec {
        name: "Mountain",
        genre: Genre::Nature,
        dataset: "LIVE-MOBILE",
        // Mountain scenery (1:24).
        script: &[
            s(Scenic, 8),
            s(NormalPlay, 4),
            s(Informational, 2),
            s(Scenic, 7),
        ],
    },
    Spec {
        name: "Animal",
        genre: Genre::Nature,
        dataset: "YouTube-UGC",
        // Warthogs bathing and grooming.
        script: &[
            s(Scenic, 10),
            s(NormalPlay, 8),
            s(KeyMoment, 2),
            s(Scenic, 12),
            s(NormalPlay, 8),
            s(Informational, 2),
            s(Scenic, 13),
        ],
    },
    Spec {
        name: "Space",
        genre: Genre::Nature,
        dataset: "YouTube-UGC",
        // A satellite photographing Earth; the universe background is the
        // paper's example of a low-attention transition (§2.3).
        script: &[
            s(Scenic, 16),
            s(Informational, 3),
            s(Scenic, 12),
            s(NormalPlay, 5),
            s(Scenic, 14),
            s(Informational, 2),
            s(Scenic, 3),
        ],
    },
    Spec {
        name: "Girl",
        genre: Genre::Animation,
        dataset: "YouTube-UGC",
        // A girl falling off a cliff.
        script: &[
            s(NormalPlay, 12),
            s(Scenic, 5),
            s(KeyMoment, 4),
            s(NormalPlay, 10),
            s(Informational, 3),
            s(NormalPlay, 10),
            s(Replay, 3),
            s(Scenic, 8),
        ],
    },
    Spec {
        name: "Lava",
        genre: Genre::Animation,
        dataset: "LIVE-NFLX-II",
        // A lava creature waking up.
        script: &[
            s(Scenic, 12),
            s(NormalPlay, 10),
            s(KeyMoment, 4),
            s(NormalPlay, 8),
            s(Scenic, 8),
            s(KeyMoment, 3),
            s(Replay, 3),
            s(Scenic, 7),
        ],
    },
    Spec {
        name: "BigBuckBunny",
        genre: Genre::Animation,
        dataset: "WaterlooSQOE-III",
        // The rabbit dealing with three tiny bullies; the trap scene is the
        // paper's storyline key-moment example (9:56).
        script: &[
            s(Scenic, 15),
            s(NormalPlay, 20),
            s(Informational, 4),
            s(NormalPlay, 18),
            s(KeyMoment, 5),
            s(Replay, 4),
            s(NormalPlay, 20),
            s(Scenic, 10),
            s(NormalPlay, 18),
            s(KeyMoment, 4),
            s(Replay, 4),
            s(NormalPlay, 15),
            s(Scenic, 12),
        ],
    },
];

/// Builds the full 16-video Table-1 corpus with the given seed.
pub fn table1(seed: u64) -> Vec<CorpusEntry> {
    SPECS
        .iter()
        .enumerate()
        .map(|(i, spec)| CorpusEntry {
            video: SourceVideo::from_script(
                spec.name,
                spec.genre,
                spec.script,
                seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
            .expect("corpus scripts are non-empty"),
            source_dataset: spec.dataset,
        })
        .collect()
}

/// Fetches a single corpus video by its Table-1 name.
///
/// # Errors
///
/// Returns [`VideoError::NoChunks`] when the name is unknown (no such video
/// exists in the corpus).
pub fn by_name(name: &str, seed: u64) -> Result<CorpusEntry, VideoError> {
    table1(seed)
        .into_iter()
        .find(|e| e.video.name() == name)
        .ok_or(VideoError::NoChunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_sixteen_videos_with_table1_names() {
        let corpus = table1(2021);
        assert_eq!(corpus.len(), 16);
        let names: Vec<&str> = corpus.iter().map(|e| e.video.name()).collect();
        for expected in [
            "Basket1",
            "Soccer1",
            "Basket2",
            "Soccer2",
            "Discus",
            "Wrestling",
            "Motor",
            "Tank",
            "FPS1",
            "FPS2",
            "Mountain",
            "Animal",
            "Space",
            "Girl",
            "Lava",
            "BigBuckBunny",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lengths_match_table1() {
        for e in table1(7) {
            let expected = match e.video.name() {
                "Soccer1" => "3:20",
                "Mountain" => "1:24",
                "BigBuckBunny" => "9:56",
                _ => "3:40",
            };
            assert_eq!(
                e.length_label(),
                expected,
                "video {} has wrong length",
                e.video.name()
            );
        }
    }

    #[test]
    fn genres_match_table1() {
        let corpus = table1(7);
        let genre_of = |n: &str| {
            corpus
                .iter()
                .find(|e| e.video.name() == n)
                .unwrap()
                .video
                .genre()
        };
        assert_eq!(genre_of("Wrestling"), Genre::Sports);
        assert_eq!(genre_of("FPS2"), Genre::Gaming);
        assert_eq!(genre_of("Space"), Genre::Nature);
        assert_eq!(genre_of("BigBuckBunny"), Genre::Animation);
    }

    #[test]
    fn datasets_match_table1() {
        let corpus = table1(7);
        let ds_of = |n: &str| {
            corpus
                .iter()
                .find(|e| e.video.name() == n)
                .unwrap()
                .source_dataset
        };
        assert_eq!(ds_of("Basket1"), "LIVE-MOBILE");
        assert_eq!(ds_of("Soccer1"), "LIVE-NFLX-II");
        assert_eq!(ds_of("Basket2"), "YouTube-UGC");
        assert_eq!(ds_of("BigBuckBunny"), "WaterlooSQOE-III");
    }

    #[test]
    fn sports_videos_have_high_sensitivity_variance() {
        // §2.3: quality sensitivity varies substantially within videos; key
        // moments must clearly dominate scenic/ad chunks.
        let soccer = by_name("Soccer1", 7).unwrap().video;
        let s = soccer.true_sensitivity();
        let max = s.iter().cloned().fold(0.0, f64::max);
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 2.0, "max/min = {}", max / min);
    }

    #[test]
    fn nature_videos_are_flatter_than_sports() {
        let space = by_name("Space", 7).unwrap().video;
        let soccer = by_name("Soccer1", 7).unwrap().video;
        let spread = |v: &SourceVideo| {
            let s = v.true_sensitivity();
            let max = s.iter().cloned().fold(0.0, f64::max);
            let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
            max / min
        };
        assert!(spread(&space) < spread(&soccer));
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("NotAVideo", 7).is_err());
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = table1(11);
        let b = table1(11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.video, y.video);
        }
        let c = table1(12);
        assert_ne!(a[0].video, c[0].video);
    }

    #[test]
    fn soccer1_goal_is_late_in_video() {
        // Fig. 1: the key moment sits past the midpoint of Soccer1.
        let soccer = by_name("Soccer1", 7).unwrap().video;
        let s = soccer.true_sensitivity();
        let peak = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            peak >= soccer.num_chunks() / 2,
            "goal at chunk {peak} of {}",
            soccer.num_chunks()
        );
    }
}
