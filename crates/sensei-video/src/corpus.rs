//! The 16-video test corpus of Table 1.
//!
//! Each video reproduces the paper's name, genre, and length, and carries a
//! scripted scene graph matching the content description in Fig. 19 of the
//! appendix (e.g. Soccer1 is "a goal after a failed shoot", Soccer2
//! "presenting the scoreboard after a goal", Space "a satellite taking
//! pictures of Earth", BigBuckBunny "a rabbit dealing with three tiny
//! bullies"). Chunk-level profiles are sampled from the scripts with seeded
//! jitter, so the corpus is deterministic given a seed.
//!
//! Beyond Table 1, [`generate_family`] composes scene scripts
//! *procedurally* — genre-specific key-moment density, ad-break placement,
//! and the §2.3/Appendix-D confounder scenes — so fleet-scale evaluation
//! can run hundreds to thousands of distinct, deterministic videos instead
//! of the fixed sixteen.

use crate::content::{Genre, SceneKind, SceneSpec, SourceVideo};
use crate::VideoError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use SceneKind::{AdBreak, Informational, KeyMoment, NormalPlay, Replay, Scenic};

/// One corpus entry: a source video plus its (simulated) dataset of origin.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The scripted source video.
    pub video: SourceVideo,
    /// Name of the public dataset the paper drew this video from.
    pub source_dataset: &'static str,
}

impl CorpusEntry {
    /// Length formatted `m:ss` as in Table 1.
    pub fn length_label(&self) -> String {
        let secs = self.video.duration_s().round() as u64;
        format!("{}:{:02}", secs / 60, secs % 60)
    }
}

/// Scene script and metadata for one Table-1 video.
struct Spec {
    name: &'static str,
    genre: Genre,
    dataset: &'static str,
    script: &'static [SceneSpec],
}

const fn s(kind: SceneKind, len: usize) -> SceneSpec {
    SceneSpec {
        kind,
        len_chunks: len,
    }
}

/// Table 1 in script form. Chunk counts × 4 s reproduce the paper lengths:
/// 55 chunks = 3:40, 50 = 3:20, 21 = 1:24, 149 = 9:56.
const SPECS: [Spec; 16] = [
    Spec {
        name: "Basket1",
        genre: Genre::Sports,
        dataset: "LIVE-MOBILE",
        // A buzzer beater at the end of a basketball game.
        script: &[
            s(NormalPlay, 10),
            s(AdBreak, 3),
            s(NormalPlay, 8),
            s(Replay, 3),
            s(NormalPlay, 9),
            s(Informational, 2),
            s(NormalPlay, 10),
            s(KeyMoment, 4),
            s(Replay, 4),
            s(Informational, 2),
        ],
    },
    Spec {
        name: "Soccer1",
        genre: Genre::Sports,
        dataset: "LIVE-NFLX-II",
        // A goal after a failed shoot (the Fig. 1 video).
        script: &[
            s(NormalPlay, 12),
            s(AdBreak, 4),
            s(NormalPlay, 10),
            s(KeyMoment, 4),
            s(Replay, 4),
            s(Informational, 2),
            s(NormalPlay, 10),
            s(Scenic, 4),
        ],
    },
    Spec {
        name: "Basket2",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // A free throw followed by a one-on-one defense.
        script: &[
            s(NormalPlay, 8),
            s(Informational, 3),
            s(NormalPlay, 12),
            s(KeyMoment, 3),
            s(Replay, 3),
            s(NormalPlay, 10),
            s(AdBreak, 4),
            s(NormalPlay, 9),
            s(Informational, 3),
        ],
    },
    Spec {
        name: "Soccer2",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // Presenting the scoreboard after a goal.
        script: &[
            s(NormalPlay, 14),
            s(KeyMoment, 3),
            s(Informational, 4),
            s(Replay, 3),
            s(NormalPlay, 12),
            s(AdBreak, 4),
            s(NormalPlay, 11),
            s(Informational, 4),
        ],
    },
    Spec {
        name: "Discus",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // A man throwing a discus.
        script: &[
            s(NormalPlay, 10),
            s(Scenic, 4),
            s(NormalPlay, 8),
            s(KeyMoment, 3),
            s(Replay, 4),
            s(NormalPlay, 10),
            s(Informational, 3),
            s(NormalPlay, 9),
            s(Scenic, 4),
        ],
    },
    Spec {
        name: "Wrestling",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // Two wrestling players.
        script: &[
            s(NormalPlay, 12),
            s(KeyMoment, 4),
            s(Replay, 3),
            s(NormalPlay, 10),
            s(AdBreak, 4),
            s(NormalPlay, 10),
            s(KeyMoment, 3),
            s(Replay, 3),
            s(Informational, 3),
            s(Scenic, 3),
        ],
    },
    Spec {
        name: "Motor",
        genre: Genre::Sports,
        dataset: "YouTube-UGC",
        // Motor racing.
        script: &[
            s(NormalPlay, 14),
            s(AdBreak, 4),
            s(NormalPlay, 10),
            s(KeyMoment, 3),
            s(Replay, 4),
            s(NormalPlay, 12),
            s(Scenic, 5),
            s(Informational, 3),
        ],
    },
    Spec {
        name: "Tank",
        genre: Genre::Gaming,
        dataset: "YouTube-UGC",
        // A tank attacking a house.
        script: &[
            s(NormalPlay, 12),
            s(KeyMoment, 4),
            s(Replay, 2),
            s(NormalPlay, 10),
            s(Informational, 3),
            s(NormalPlay, 12),
            s(KeyMoment, 3),
            s(Scenic, 5),
            s(NormalPlay, 4),
        ],
    },
    Spec {
        name: "FPS1",
        genre: Genre::Gaming,
        dataset: "YouTube-UGC",
        // A first-person shooting game.
        script: &[
            s(NormalPlay, 10),
            s(KeyMoment, 4),
            s(Informational, 2),
            s(NormalPlay, 12),
            s(KeyMoment, 3),
            s(NormalPlay, 10),
            s(Scenic, 4),
            s(NormalPlay, 10),
        ],
    },
    Spec {
        name: "FPS2",
        genre: Genre::Gaming,
        dataset: "YouTube-UGC",
        // A player robbing supplies after killing an enemy (§2.3).
        script: &[
            s(NormalPlay, 10),
            s(KeyMoment, 3),
            s(Informational, 4),
            s(NormalPlay, 12),
            s(KeyMoment, 3),
            s(Informational, 3),
            s(NormalPlay, 12),
            s(Scenic, 4),
            s(NormalPlay, 4),
        ],
    },
    Spec {
        name: "Mountain",
        genre: Genre::Nature,
        dataset: "LIVE-MOBILE",
        // Mountain scenery (1:24).
        script: &[
            s(Scenic, 8),
            s(NormalPlay, 4),
            s(Informational, 2),
            s(Scenic, 7),
        ],
    },
    Spec {
        name: "Animal",
        genre: Genre::Nature,
        dataset: "YouTube-UGC",
        // Warthogs bathing and grooming.
        script: &[
            s(Scenic, 10),
            s(NormalPlay, 8),
            s(KeyMoment, 2),
            s(Scenic, 12),
            s(NormalPlay, 8),
            s(Informational, 2),
            s(Scenic, 13),
        ],
    },
    Spec {
        name: "Space",
        genre: Genre::Nature,
        dataset: "YouTube-UGC",
        // A satellite photographing Earth; the universe background is the
        // paper's example of a low-attention transition (§2.3).
        script: &[
            s(Scenic, 16),
            s(Informational, 3),
            s(Scenic, 12),
            s(NormalPlay, 5),
            s(Scenic, 14),
            s(Informational, 2),
            s(Scenic, 3),
        ],
    },
    Spec {
        name: "Girl",
        genre: Genre::Animation,
        dataset: "YouTube-UGC",
        // A girl falling off a cliff.
        script: &[
            s(NormalPlay, 12),
            s(Scenic, 5),
            s(KeyMoment, 4),
            s(NormalPlay, 10),
            s(Informational, 3),
            s(NormalPlay, 10),
            s(Replay, 3),
            s(Scenic, 8),
        ],
    },
    Spec {
        name: "Lava",
        genre: Genre::Animation,
        dataset: "LIVE-NFLX-II",
        // A lava creature waking up.
        script: &[
            s(Scenic, 12),
            s(NormalPlay, 10),
            s(KeyMoment, 4),
            s(NormalPlay, 8),
            s(Scenic, 8),
            s(KeyMoment, 3),
            s(Replay, 3),
            s(Scenic, 7),
        ],
    },
    Spec {
        name: "BigBuckBunny",
        genre: Genre::Animation,
        dataset: "WaterlooSQOE-III",
        // The rabbit dealing with three tiny bullies; the trap scene is the
        // paper's storyline key-moment example (9:56).
        script: &[
            s(Scenic, 15),
            s(NormalPlay, 20),
            s(Informational, 4),
            s(NormalPlay, 18),
            s(KeyMoment, 5),
            s(Replay, 4),
            s(NormalPlay, 20),
            s(Scenic, 10),
            s(NormalPlay, 18),
            s(KeyMoment, 4),
            s(Replay, 4),
            s(NormalPlay, 15),
            s(Scenic, 12),
        ],
    },
];

/// Builds the full 16-video Table-1 corpus with the given seed.
pub fn table1(seed: u64) -> Vec<CorpusEntry> {
    SPECS
        .iter()
        .enumerate()
        .map(|(i, spec)| CorpusEntry {
            video: SourceVideo::from_script(
                spec.name,
                spec.genre,
                spec.script,
                seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
            .expect("corpus scripts are non-empty"),
            source_dataset: spec.dataset,
        })
        .collect()
}

/// Fetches a single corpus video by its Table-1 name.
///
/// # Errors
///
/// Returns [`VideoError::NoChunks`] when the name is unknown (no such video
/// exists in the corpus).
pub fn by_name(name: &str, seed: u64) -> Result<CorpusEntry, VideoError> {
    table1(seed)
        .into_iter()
        .find(|e| e.video.name() == name)
        .ok_or(VideoError::NoChunks)
}

/// Relative genre weights for procedural corpus generation. Weights need
/// not sum to 1; only their ratios matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenreMix {
    /// Weight of [`Genre::Sports`].
    pub sports: f64,
    /// Weight of [`Genre::Gaming`].
    pub gaming: f64,
    /// Weight of [`Genre::Nature`].
    pub nature: f64,
    /// Weight of [`Genre::Animation`].
    pub animation: f64,
}

impl GenreMix {
    /// Equal weight for all four genres.
    #[must_use]
    pub fn uniform() -> Self {
        Self {
            sports: 1.0,
            gaming: 1.0,
            nature: 1.0,
            animation: 1.0,
        }
    }

    /// The Table-1 genre proportions (7 sports : 3 gaming : 3 nature :
    /// 3 animation).
    #[must_use]
    pub fn table1() -> Self {
        Self {
            sports: 7.0,
            gaming: 3.0,
            nature: 3.0,
            animation: 3.0,
        }
    }

    /// Validates that the weights are non-negative, finite, and not all
    /// zero.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::InvalidGenreMix`] otherwise.
    pub fn validate(&self) -> Result<(), VideoError> {
        let weights = [self.sports, self.gaming, self.nature, self.animation];
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(VideoError::InvalidGenreMix(format!(
                "weights must be non-negative and finite, got {weights:?}"
            )));
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(VideoError::InvalidGenreMix(
                "weights must not all be zero".to_string(),
            ));
        }
        Ok(())
    }

    /// Draws one genre proportionally to the weights.
    fn sample<R: Rng>(&self, rng: &mut R) -> Genre {
        let total = self.sports + self.gaming + self.nature + self.animation;
        let mut x = rng.gen_range(0.0..total);
        for (weight, genre) in [
            (self.sports, Genre::Sports),
            (self.gaming, Genre::Gaming),
            (self.nature, Genre::Nature),
            (self.animation, Genre::Animation),
        ] {
            if x < weight {
                return genre;
            }
            x -= weight;
        }
        // Floating-point edge: `x` landed exactly on `total`.
        Genre::Animation
    }
}

/// Composes one procedural scene script for a genre. The knobs mirror
/// what the Table-1 scripts encode by hand: how often the storyline
/// climaxes (key-moment density), where ad breaks land, and which
/// confounder follows a climax — sports replay the goal (the object-rich
/// CV confounder of Appendix D) and cut to the scoreboard, gaming loots
/// the kill (§2.3's information-delivery moment), nature/animation fall
/// back to scenery.
fn compose_script<R: Rng>(genre: Genre, rng: &mut R) -> Vec<SceneSpec> {
    // (target chunk range, key-moment density, ad spacing, scenic share).
    type Knobs = ((usize, usize), f64, Option<(usize, usize)>, f64);
    let (target_range, key_prob, ad_spacing, scenic_prob): Knobs = match genre {
        Genre::Sports => ((40, 68), 0.40, Some((16, 26)), 0.10),
        Genre::Gaming => ((40, 68), 0.45, None, 0.15),
        Genre::Nature => ((34, 64), 0.10, Some((24, 34)), 0.65),
        Genre::Animation => ((44, 75), 0.30, Some((20, 30)), 0.35),
    };
    let target = rng.gen_range(target_range.0..=target_range.1);
    let mut next_ad = ad_spacing.map(|(lo, hi)| rng.gen_range(lo..=hi));
    let mut script: Vec<SceneSpec> = Vec::new();
    let mut total = 0usize;
    let push = |script: &mut Vec<SceneSpec>, total: &mut usize, kind, len: usize| {
        script.push(SceneSpec::new(kind, len));
        *total += len;
    };
    while total < target {
        // Ad-break placement: fires once the scheduled position passes.
        if let (Some(at), Some((lo, hi))) = (next_ad, ad_spacing) {
            if total >= at {
                let len = rng.gen_range(3..=4);
                push(&mut script, &mut total, AdBreak, len);
                next_ad = Some(total + rng.gen_range(lo..=hi));
                continue;
            }
        }
        // Baseline block: normal play or a scenic transition.
        let baseline = if rng.gen_bool(scenic_prob) {
            Scenic
        } else {
            NormalPlay
        };
        let len = rng.gen_range(5..=12);
        push(&mut script, &mut total, baseline, len);
        // Climax cluster: a key moment plus its genre-typical tail.
        if rng.gen_bool(key_prob) {
            let key = rng.gen_range(2..=4);
            push(&mut script, &mut total, KeyMoment, key);
            match genre {
                Genre::Sports => {
                    let rep = rng.gen_range(2..=4);
                    push(&mut script, &mut total, Replay, rep);
                    if rng.gen_bool(0.7) {
                        let info = rng.gen_range(2..=3);
                        push(&mut script, &mut total, Informational, info);
                    }
                }
                Genre::Gaming => {
                    let info = rng.gen_range(2..=4);
                    push(&mut script, &mut total, Informational, info);
                }
                Genre::Nature => {
                    let sc = rng.gen_range(3..=6);
                    push(&mut script, &mut total, Scenic, sc);
                }
                Genre::Animation => {
                    if rng.gen_bool(0.5) {
                        let rep = rng.gen_range(2..=3);
                        push(&mut script, &mut total, Replay, rep);
                    }
                }
            }
        }
    }
    script
}

/// Generates a procedural video family: `count` videos with genres drawn
/// from `genre_mix`, each with a procedurally composed scene script and
/// seeded chunk jitter. Fully deterministic in `seed` — the same
/// `(genre_mix, count, seed)` triple always produces byte-identical
/// videos, on any machine, which is what lets fleet runs treat a family
/// spec as a reproducible corpus identifier.
///
/// Entries are named `proc-{genre}-{index:04}` and carry
/// `source_dataset: "procedural"`.
///
/// # Errors
///
/// Returns [`VideoError::InvalidGenreMix`] when the mix weights are
/// negative, non-finite, or all zero.
pub fn generate_family(
    genre_mix: &GenreMix,
    count: usize,
    seed: u64,
) -> Result<Vec<CorpusEntry>, VideoError> {
    genre_mix.validate()?;
    // One family-level stream for genre and script draws; per-video chunk
    // jitter gets its own derived seed (same scheme as `table1`) so a
    // video's profile depends only on (seed, index), not on how many
    // siblings preceded it in sampling.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9_FA417);
    (0..count)
        .map(|i| {
            let genre = genre_mix.sample(&mut rng);
            let script = compose_script(genre, &mut rng);
            let name = format!("proc-{}-{i:04}", genre.label().to_lowercase());
            let video = SourceVideo::from_script(
                name,
                genre,
                &script,
                seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )?;
            Ok(CorpusEntry {
                video,
                source_dataset: "procedural",
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_sixteen_videos_with_table1_names() {
        let corpus = table1(2021);
        assert_eq!(corpus.len(), 16);
        let names: Vec<&str> = corpus.iter().map(|e| e.video.name()).collect();
        for expected in [
            "Basket1",
            "Soccer1",
            "Basket2",
            "Soccer2",
            "Discus",
            "Wrestling",
            "Motor",
            "Tank",
            "FPS1",
            "FPS2",
            "Mountain",
            "Animal",
            "Space",
            "Girl",
            "Lava",
            "BigBuckBunny",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lengths_match_table1() {
        for e in table1(7) {
            let expected = match e.video.name() {
                "Soccer1" => "3:20",
                "Mountain" => "1:24",
                "BigBuckBunny" => "9:56",
                _ => "3:40",
            };
            assert_eq!(
                e.length_label(),
                expected,
                "video {} has wrong length",
                e.video.name()
            );
        }
    }

    #[test]
    fn genres_match_table1() {
        let corpus = table1(7);
        let genre_of = |n: &str| {
            corpus
                .iter()
                .find(|e| e.video.name() == n)
                .unwrap()
                .video
                .genre()
        };
        assert_eq!(genre_of("Wrestling"), Genre::Sports);
        assert_eq!(genre_of("FPS2"), Genre::Gaming);
        assert_eq!(genre_of("Space"), Genre::Nature);
        assert_eq!(genre_of("BigBuckBunny"), Genre::Animation);
    }

    #[test]
    fn datasets_match_table1() {
        let corpus = table1(7);
        let ds_of = |n: &str| {
            corpus
                .iter()
                .find(|e| e.video.name() == n)
                .unwrap()
                .source_dataset
        };
        assert_eq!(ds_of("Basket1"), "LIVE-MOBILE");
        assert_eq!(ds_of("Soccer1"), "LIVE-NFLX-II");
        assert_eq!(ds_of("Basket2"), "YouTube-UGC");
        assert_eq!(ds_of("BigBuckBunny"), "WaterlooSQOE-III");
    }

    #[test]
    fn sports_videos_have_high_sensitivity_variance() {
        // §2.3: quality sensitivity varies substantially within videos; key
        // moments must clearly dominate scenic/ad chunks.
        let soccer = by_name("Soccer1", 7).unwrap().video;
        let s = soccer.true_sensitivity();
        let max = s.iter().cloned().fold(0.0, f64::max);
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 2.0, "max/min = {}", max / min);
    }

    #[test]
    fn nature_videos_are_flatter_than_sports() {
        let space = by_name("Space", 7).unwrap().video;
        let soccer = by_name("Soccer1", 7).unwrap().video;
        let spread = |v: &SourceVideo| {
            let s = v.true_sensitivity();
            let max = s.iter().cloned().fold(0.0, f64::max);
            let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
            max / min
        };
        assert!(spread(&space) < spread(&soccer));
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("NotAVideo", 7).is_err());
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = table1(11);
        let b = table1(11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.video, y.video);
        }
        let c = table1(12);
        assert_ne!(a[0].video, c[0].video);
    }

    #[test]
    fn generated_family_is_deterministic_and_labeled() {
        let mix = GenreMix::uniform();
        let a = generate_family(&mix, 12, 99).unwrap();
        let b = generate_family(&mix, 12, 99).unwrap();
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.video, y.video);
            assert_eq!(x.source_dataset, "procedural");
        }
        let c = generate_family(&mix, 12, 100).unwrap();
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.video != y.video),
            "different seeds must differ"
        );
        // Names are stable identifiers.
        assert!(a[0].video.name().starts_with("proc-"));
        assert!(a[0].video.name().ends_with("0000"));
    }

    #[test]
    fn genre_mix_weights_steer_the_family() {
        let sports_only = GenreMix {
            sports: 1.0,
            gaming: 0.0,
            nature: 0.0,
            animation: 0.0,
        };
        for e in generate_family(&sports_only, 10, 3).unwrap() {
            assert_eq!(e.video.genre(), Genre::Sports);
        }
        let mixed = generate_family(&GenreMix::uniform(), 64, 3).unwrap();
        let genres: std::collections::BTreeSet<_> = mixed.iter().map(|e| e.video.genre()).collect();
        assert_eq!(genres.len(), 4, "64 uniform draws should hit all genres");
    }

    #[test]
    fn generated_scripts_encode_the_paper_structure() {
        // Sports videos must contain the §2.3 archetypes: key moments,
        // the object-rich replay confounder, and ad breaks (the motion
        // confounder) — and every video is non-trivially long.
        let sports_only = GenreMix {
            sports: 1.0,
            gaming: 0.0,
            nature: 0.0,
            animation: 0.0,
        };
        let family = generate_family(&sports_only, 16, 21).unwrap();
        let mut saw = (false, false, false);
        for e in &family {
            assert!(e.video.num_chunks() >= 34, "{}", e.video.name());
            for c in e.video.chunks() {
                match c.scene {
                    SceneKind::KeyMoment => saw.0 = true,
                    SceneKind::Replay => saw.1 = true,
                    SceneKind::AdBreak => saw.2 = true,
                    _ => {}
                }
            }
        }
        assert!(saw.0 && saw.1 && saw.2, "archetypes missing: {saw:?}");
        // Nature families skew scenic (flatter sensitivity than sports).
        let nature_only = GenreMix {
            sports: 0.0,
            gaming: 0.0,
            nature: 1.0,
            animation: 0.0,
        };
        let nature = generate_family(&nature_only, 8, 21).unwrap();
        let scenic_share = |entries: &[CorpusEntry]| {
            let (mut scenic, mut total) = (0usize, 0usize);
            for e in entries {
                total += e.video.num_chunks();
                scenic += e
                    .video
                    .chunks()
                    .iter()
                    .filter(|c| c.scene == SceneKind::Scenic)
                    .count();
            }
            scenic as f64 / total as f64
        };
        assert!(scenic_share(&nature) > 2.0 * scenic_share(&family));
    }

    #[test]
    fn invalid_genre_mixes_are_rejected() {
        let zero = GenreMix {
            sports: 0.0,
            gaming: 0.0,
            nature: 0.0,
            animation: 0.0,
        };
        assert!(matches!(
            generate_family(&zero, 1, 0),
            Err(VideoError::InvalidGenreMix(_))
        ));
        let negative = GenreMix {
            sports: -1.0,
            ..GenreMix::uniform()
        };
        assert!(matches!(
            generate_family(&negative, 1, 0),
            Err(VideoError::InvalidGenreMix(_))
        ));
        assert!(GenreMix::table1().validate().is_ok());
    }

    #[test]
    fn soccer1_goal_is_late_in_video() {
        // Fig. 1: the key moment sits past the midpoint of Soccer1.
        let soccer = by_name("Soccer1", 7).unwrap().video;
        let s = soccer.true_sensitivity();
        let peak = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            peak >= soccer.num_chunks() / 2,
            "goal at chunk {peak} of {}",
            soccer.num_chunks()
        );
    }
}
