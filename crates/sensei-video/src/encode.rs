//! Bitrate ladders and the VBR chunk-size model.
//!
//! The paper encodes every chunk with H.264/AVC at five bitrate levels,
//! {300, 750, 1200, 1850, 2850} kbps, corresponding to 240p–1080p on
//! YouTube (§7.1). Real encoders are variable-bitrate: a chunk's actual size
//! deviates from `bitrate × duration` depending on content complexity. The
//! [`EncodedVideo`] model reproduces that: complex chunks come out slightly
//! larger, simple chunks slightly smaller, with seeded per-chunk jitter.

use crate::content::SourceVideo;
use crate::quality::visual_quality;
use crate::VideoError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's five-level bitrate ladder in kbps.
pub const DEFAULT_LADDER_KBPS: [f64; 5] = [300.0, 750.0, 1200.0, 1850.0, 2850.0];

/// An ordered set of available encoding bitrates.
#[derive(Debug, Clone, PartialEq)]
pub struct BitrateLadder {
    kbps: Vec<f64>,
}

impl BitrateLadder {
    /// Builds a ladder from bitrates in kbps.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::InvalidLadder`] unless the list is non-empty,
    /// positive, finite, and strictly increasing.
    pub fn new(kbps: Vec<f64>) -> Result<Self, VideoError> {
        if kbps.is_empty() {
            return Err(VideoError::InvalidLadder);
        }
        for w in kbps.windows(2) {
            if w[0] >= w[1] {
                return Err(VideoError::InvalidLadder);
            }
        }
        if kbps.iter().any(|&b| !b.is_finite() || b <= 0.0) {
            return Err(VideoError::InvalidLadder);
        }
        Ok(Self { kbps })
    }

    /// The paper's default {300, 750, 1200, 1850, 2850} kbps ladder.
    pub fn default_paper() -> Self {
        Self::new(DEFAULT_LADDER_KBPS.to_vec()).expect("the default ladder is valid")
    }

    /// All levels in kbps, lowest first.
    pub fn levels(&self) -> &[f64] {
        &self.kbps
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.kbps.len()
    }

    /// Whether the ladder has no levels (never true for a constructed ladder).
    pub fn is_empty(&self) -> bool {
        self.kbps.is_empty()
    }

    /// Bitrate of a level.
    ///
    /// # Errors
    ///
    /// Returns an error when `level` is out of range.
    pub fn kbps(&self, level: usize) -> Result<f64, VideoError> {
        self.kbps
            .get(level)
            .copied()
            .ok_or(VideoError::UnknownBitrate(level as f64))
    }

    /// Lowest bitrate in kbps.
    pub fn min_kbps(&self) -> f64 {
        self.kbps[0]
    }

    /// Highest bitrate in kbps.
    pub fn max_kbps(&self) -> f64 {
        *self.kbps.last().expect("ladder is non-empty")
    }

    /// Index of an exact bitrate value.
    ///
    /// # Errors
    ///
    /// Returns an error when the bitrate is not a ladder level.
    pub fn index_of(&self, kbps: f64) -> Result<usize, VideoError> {
        self.kbps
            .iter()
            .position(|&b| (b - kbps).abs() < 1e-9)
            .ok_or(VideoError::UnknownBitrate(kbps))
    }

    /// Highest level whose bitrate does not exceed `kbps` (level 0 if all
    /// exceed it).
    pub fn highest_at_most(&self, kbps: f64) -> usize {
        self.kbps.iter().rposition(|&b| b <= kbps).unwrap_or(0)
    }
}

/// A source video encoded at every ladder level, with per-chunk VBR sizes
/// and per-chunk, per-level visual quality (the manifest metadata a real
/// system ships — Puffer carries per-chunk SSIM the same way).
#[derive(Debug, Clone)]
pub struct EncodedVideo {
    ladder: BitrateLadder,
    chunk_duration_s: f64,
    /// `sizes_bits[chunk][level]`.
    sizes_bits: Vec<Vec<f64>>,
    /// `vq[chunk][level]`, precomputed at encode time so the session hot
    /// path never recomputes the perceptual-quality curve.
    vq: Vec<Vec<f64>>,
}

impl EncodedVideo {
    /// Encodes `source` at every level of `ladder`.
    ///
    /// The VBR factor is `0.92 + 0.16·complexity + ε`, ε ~ N(0, 0.03),
    /// clamped to `[0.8, 1.25]` — complex chunks overshoot their target
    /// bitrate, simple chunks undershoot, mirroring real H.264 encodes.
    pub fn encode(source: &SourceVideo, ladder: &BitrateLadder, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = source.chunk_duration_s();
        let sizes_bits = source
            .chunks()
            .iter()
            .map(|c| {
                // One VBR factor per chunk: all levels share the content.
                let eps: f64 = {
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * 0.03
                };
                let factor = (0.92 + 0.16 * c.complexity + eps).clamp(0.8, 1.25);
                ladder
                    .levels()
                    .iter()
                    .map(|&b| b * 1000.0 * d * factor)
                    .collect()
            })
            .collect();
        let vq = source
            .chunks()
            .iter()
            .map(|c| {
                ladder
                    .levels()
                    .iter()
                    .map(|&b| visual_quality(b, c.complexity))
                    .collect()
            })
            .collect();
        Self {
            ladder: ladder.clone(),
            chunk_duration_s: d,
            sizes_bits,
            vq,
        }
    }

    /// Per-chunk, per-level visual quality (`vq[chunk][level]`) — encode
    /// artifacts, computed once here rather than per session.
    pub fn vq_table(&self) -> &[Vec<f64>] {
        &self.vq
    }

    /// The ladder this video was encoded with.
    pub fn ladder(&self) -> &BitrateLadder {
        &self.ladder
    }

    /// Chunk duration in seconds.
    pub fn chunk_duration_s(&self) -> f64 {
        self.chunk_duration_s
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.sizes_bits.len()
    }

    /// Size in bits of one chunk at one level.
    ///
    /// # Errors
    ///
    /// Returns an error when the chunk or level is out of range.
    pub fn size_bits(&self, chunk: usize, level: usize) -> Result<f64, VideoError> {
        let row = self
            .sizes_bits
            .get(chunk)
            .ok_or(VideoError::ChunkOutOfRange {
                index: chunk,
                len: self.sizes_bits.len(),
            })?;
        row.get(level)
            .copied()
            .ok_or(VideoError::UnknownBitrate(level as f64))
    }

    /// Sizes of one chunk across all levels.
    ///
    /// # Errors
    ///
    /// Returns an error when the chunk is out of range.
    pub fn chunk_sizes(&self, chunk: usize) -> Result<&[f64], VideoError> {
        self.sizes_bits
            .get(chunk)
            .map(Vec::as_slice)
            .ok_or(VideoError::ChunkOutOfRange {
                index: chunk,
                len: self.sizes_bits.len(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{Genre, SceneKind, SceneSpec};

    fn video() -> SourceVideo {
        SourceVideo::from_script(
            "t",
            Genre::Sports,
            &[
                SceneSpec::new(SceneKind::Scenic, 4),
                SceneSpec::new(SceneKind::KeyMoment, 4),
            ],
            1,
        )
        .unwrap()
    }

    #[test]
    fn ladder_validation() {
        assert!(BitrateLadder::new(vec![]).is_err());
        assert!(BitrateLadder::new(vec![300.0, 300.0]).is_err());
        assert!(BitrateLadder::new(vec![750.0, 300.0]).is_err());
        assert!(BitrateLadder::new(vec![-1.0, 300.0]).is_err());
        assert!(BitrateLadder::new(vec![300.0, f64::NAN]).is_err());
        assert!(BitrateLadder::new(vec![300.0, 750.0]).is_ok());
    }

    #[test]
    fn default_ladder_matches_paper() {
        let l = BitrateLadder::default_paper();
        assert_eq!(l.levels(), &[300.0, 750.0, 1200.0, 1850.0, 2850.0]);
        assert_eq!(l.min_kbps(), 300.0);
        assert_eq!(l.max_kbps(), 2850.0);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn ladder_lookups() {
        let l = BitrateLadder::default_paper();
        assert_eq!(l.index_of(1200.0).unwrap(), 2);
        assert!(l.index_of(1000.0).is_err());
        assert_eq!(l.highest_at_most(1000.0), 1);
        assert_eq!(l.highest_at_most(100.0), 0);
        assert_eq!(l.highest_at_most(9999.0), 4);
        assert!(l.kbps(5).is_err());
        assert_eq!(l.kbps(0).unwrap(), 300.0);
    }

    #[test]
    fn encode_sizes_near_nominal() {
        let v = video();
        let l = BitrateLadder::default_paper();
        let e = EncodedVideo::encode(&v, &l, 3);
        assert_eq!(e.num_chunks(), 8);
        for chunk in 0..8 {
            for (level, &b) in l.levels().iter().enumerate() {
                let nominal = b * 1000.0 * 4.0;
                let actual = e.size_bits(chunk, level).unwrap();
                let ratio = actual / nominal;
                assert!((0.8..=1.25).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    #[test]
    fn complex_chunks_are_larger() {
        let v = video();
        let l = BitrateLadder::default_paper();
        let e = EncodedVideo::encode(&v, &l, 3);
        // Chunks 0-3 are scenic (low complexity), 4-7 key moments (high).
        let scenic: f64 = (0..4).map(|c| e.size_bits(c, 4).unwrap()).sum();
        let key: f64 = (4..8).map(|c| e.size_bits(c, 4).unwrap()).sum();
        assert!(key > scenic, "key {key} vs scenic {scenic}");
    }

    #[test]
    fn encode_is_deterministic() {
        let v = video();
        let l = BitrateLadder::default_paper();
        let a = EncodedVideo::encode(&v, &l, 9);
        let b = EncodedVideo::encode(&v, &l, 9);
        assert_eq!(a.size_bits(3, 2).unwrap(), b.size_bits(3, 2).unwrap());
    }

    #[test]
    fn out_of_range_lookups_error() {
        let v = video();
        let l = BitrateLadder::default_paper();
        let e = EncodedVideo::encode(&v, &l, 3);
        assert!(e.size_bits(8, 0).is_err());
        assert!(e.size_bits(0, 5).is_err());
        assert!(e.chunk_sizes(8).is_err());
        assert_eq!(e.chunk_sizes(0).unwrap().len(), 5);
    }
}
