//! DAS-IP vs OracleMpc QoE parity on the Table-1 grid.
//!
//! The index policy exists to make MPC-quality control affordable at
//! fleet scale (`O(levels)` per decision instead of a horizon
//! enumeration), so the claim that matters is a *quality* one: across the
//! Table-1 evaluation grid, DAS-IP must track the sensitivity-unaware
//! oracle MPC — a controller that plans over a 6-chunk horizon with the
//! entire future throughput trace in hand — within a small, documented
//! true-QoE tolerance, while beating the planning-free buffer-based
//! baseline it is priced like.

use sensei_core::experiment::mean_qoe;
use sensei_core::{Experiment, ExperimentConfig, PolicyKind};

/// Mean true-QoE (0..1 scale) slack allowed between DAS-IP and the
/// unaware oracle across the grid. The oracle sees the exact future
/// throughput; DAS-IP sees only the hedged harmonic-mean estimate, so
/// some gap is structural — what the tolerance bounds is the *index
/// approximation* staying in the planner's neighbourhood rather than
/// collapsing to buffer-threshold quality.
const ORACLE_TOLERANCE: f64 = 0.05;

#[test]
fn das_ip_tracks_the_unaware_oracle_on_the_table1_grid() {
    let env = Experiment::build(&ExperimentConfig::quick(2021)).unwrap();
    let kinds = [
        PolicyKind::Bba,
        PolicyKind::DasIp,
        PolicyKind::OracleUnaware,
    ];
    let results = env.run_grid(&kinds).unwrap();
    let das = mean_qoe(&results, "DAS-IP");
    let oracle = mean_qoe(&results, "Dynamic-sensitivity-unaware ABR");
    let bba = mean_qoe(&results, "BBA");
    assert!(
        das >= oracle - ORACLE_TOLERANCE,
        "DAS-IP mean QoE {das:.4} trails the unaware oracle {oracle:.4} \
         by more than {ORACLE_TOLERANCE}"
    );
    // The cheap index must not give back the MPC family's edge over the
    // planning-free baseline.
    assert!(
        das >= bba - 0.01,
        "DAS-IP mean QoE {das:.4} fell below BBA {bba:.4}"
    );
}
