//! The policy-reuse soundness contract the session runtime rests on.
//!
//! `SessionRuntime` builds one policy instance per `PolicyKind` and reuses
//! it (reset + rebound) across every session a worker runs. That is only a
//! pure optimization if a reused instance is indistinguishable from fresh
//! per-session construction — which this test asserts for **every**
//! `PolicyKind`, including the trained RL policies and the trace-bound
//! oracles, across a 3-video × 3-trace block.

use sensei_core::{Experiment, ExperimentConfig, PolicyKind, SessionRuntime};
use sensei_sim::{simulate_in, PlayerState, SessionContext, SessionScratch};

/// Quick 3-video environment with *tiny* RL training so `Pensieve` and
/// `SenseiPensieve` are constructible. The episode count only has to make
/// training terminate — the reuse contract is about determinism, not
/// policy quality.
fn env_with_rl() -> Experiment {
    let mut cfg = ExperimentConfig::quick(17);
    cfg.train_rl = true;
    cfg.rl_episodes = 12;
    Experiment::build(&cfg).unwrap()
}

#[test]
fn reused_policy_matches_fresh_construction_for_every_kind() {
    let env = env_with_rl();
    assert_eq!(env.assets.len(), 3, "block needs three videos");
    let traces = &env.traces[..3];
    for kind in PolicyKind::ALL {
        // One runtime for the whole block: the same policy instance (and
        // the same scratch buffers) serves all nine sessions.
        let mut runtime = SessionRuntime::new();
        for asset in &env.assets {
            for trace in traces {
                let fresh = env
                    .run_session_with(asset, trace, kind, &env.player)
                    .unwrap();
                let reused = env
                    .run_session_in(&mut runtime, asset, trace, kind, &env.player)
                    .unwrap();
                assert_eq!(
                    fresh,
                    reused,
                    "{kind:?} diverged on ({}, {}) when reused",
                    asset.name,
                    trace.name()
                );
            }
        }
    }
}

#[test]
fn stale_warm_start_state_never_leaks_into_the_next_session() {
    // The MPC family carries each chunk step's winning plan in a
    // warm-start slot so the next step's search starts from a seeded
    // incumbent. Abandon a session mid-stream — the slot then holds a
    // committed plan for a chunk step that will never come — and reuse
    // the instance for a full session on a *different* trace through the
    // production entry path (rebind + the simulator's own reset). The
    // result must match a fresh instance bit for bit.
    let env = Experiment::build(&ExperimentConfig::quick(17)).unwrap();
    let mpc_kinds = [
        PolicyKind::Fugu,
        PolicyKind::SenseiFugu,
        PolicyKind::SenseiFuguNoPause,
        PolicyKind::OracleAware,
        PolicyKind::OracleUnaware,
    ];
    let asset = &env.assets[0];
    let stale_trace = &env.traces[0];
    let next_trace = &env.traces[1];
    for kind in mpc_kinds {
        let weights = kind.uses_weights().then_some(&asset.weights);
        let ctx = SessionContext {
            encoded: &asset.encoded,
            vq: asset.encoded.vq_table(),
            weights,
            chunk_duration_s: asset.source.chunk_duration_s(),
        };
        let mut reused = env.policy(kind, stale_trace).unwrap();
        // A few real consecutive decisions populate the warm slot (and,
        // for SENSEI-Fugu, spend pause budget) — then the session is
        // abandoned.
        let hist = [1100.0, 1500.0, 900.0];
        let dts = [1.3, 1.0, 1.6];
        let mut last_level = None;
        for (chunk, step) in [0.0f64, 1.0, 2.0, 3.0].into_iter().enumerate() {
            let state = PlayerState {
                next_chunk: chunk,
                buffer_s: 3.0 + step,
                last_level,
                throughput_history_kbps: &hist,
                download_time_history_s: &dts,
                elapsed_s: 4.0 * step,
                playing: chunk > 0,
            };
            last_level = Some(reused.decide(&state, &ctx).level);
        }
        // Production reuse protocol: rebind to the next session's trace;
        // `simulate_in` itself resets the policy.
        reused.rebind(next_trace);
        let mut scratch = SessionScratch::new();
        let got = simulate_in(
            &mut scratch,
            &asset.source,
            &asset.encoded,
            next_trace,
            &mut reused,
            &env.player,
            weights,
        )
        .unwrap();
        let mut fresh = env.policy(kind, next_trace).unwrap();
        let want = simulate_in(
            &mut scratch,
            &asset.source,
            &asset.encoded,
            next_trace,
            &mut fresh,
            &env.player,
            weights,
        )
        .unwrap();
        assert_eq!(got.levels, want.levels, "{kind:?} levels diverged");
        assert_eq!(
            got.wall_time_s.to_bits(),
            want.wall_time_s.to_bits(),
            "{kind:?} wall time diverged"
        );
        assert_eq!(
            got.render.total_rebuffer_s().to_bits(),
            want.render.total_rebuffer_s().to_bits(),
            "{kind:?} rebuffer diverged"
        );
    }
}

#[test]
fn one_runtime_serves_interleaved_kinds() {
    // Fleet workers interleave kinds cell by cell (policy is the innermost
    // axis); the table must keep per-kind instances independent.
    let env = Experiment::build(&ExperimentConfig::quick(17)).unwrap();
    let kinds = [PolicyKind::Bba, PolicyKind::SenseiFugu, PolicyKind::Bba];
    let mut runtime = SessionRuntime::new();
    let asset = &env.assets[0];
    let trace = &env.traces[0];
    let mut cells = Vec::new();
    for kind in kinds {
        cells.push(
            env.run_session_in(&mut runtime, asset, trace, kind, &env.player)
                .unwrap(),
        );
    }
    // The two BBA sessions bracket a SENSEI session and must agree.
    assert_eq!(cells[0], cells[2]);
    assert_ne!(cells[0].policy, cells[1].policy);
}
