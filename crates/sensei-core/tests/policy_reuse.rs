//! The policy-reuse soundness contract the session runtime rests on.
//!
//! `SessionRuntime` builds one policy instance per `PolicyKind` and reuses
//! it (reset + rebound) across every session a worker runs. That is only a
//! pure optimization if a reused instance is indistinguishable from fresh
//! per-session construction — which this test asserts for **every**
//! `PolicyKind`, including the trained RL policies and the trace-bound
//! oracles, across a 3-video × 3-trace block.

use sensei_core::{Experiment, ExperimentConfig, PolicyKind, SessionRuntime};

/// Quick 3-video environment with *tiny* RL training so `Pensieve` and
/// `SenseiPensieve` are constructible. The episode count only has to make
/// training terminate — the reuse contract is about determinism, not
/// policy quality.
fn env_with_rl() -> Experiment {
    let mut cfg = ExperimentConfig::quick(17);
    cfg.train_rl = true;
    cfg.rl_episodes = 12;
    Experiment::build(&cfg).unwrap()
}

#[test]
fn reused_policy_matches_fresh_construction_for_every_kind() {
    let env = env_with_rl();
    assert_eq!(env.assets.len(), 3, "block needs three videos");
    let traces = &env.traces[..3];
    for kind in PolicyKind::ALL {
        // One runtime for the whole block: the same policy instance (and
        // the same scratch buffers) serves all nine sessions.
        let mut runtime = SessionRuntime::new();
        for asset in &env.assets {
            for trace in traces {
                let fresh = env
                    .run_session_with(asset, trace, kind, &env.player)
                    .unwrap();
                let reused = env
                    .run_session_in(&mut runtime, asset, trace, kind, &env.player)
                    .unwrap();
                assert_eq!(
                    fresh,
                    reused,
                    "{kind:?} diverged on ({}, {}) when reused",
                    asset.name,
                    trace.name()
                );
            }
        }
    }
}

#[test]
fn one_runtime_serves_interleaved_kinds() {
    // Fleet workers interleave kinds cell by cell (policy is the innermost
    // axis); the table must keep per-kind instances independent.
    let env = Experiment::build(&ExperimentConfig::quick(17)).unwrap();
    let kinds = [PolicyKind::Bba, PolicyKind::SenseiFugu, PolicyKind::Bba];
    let mut runtime = SessionRuntime::new();
    let asset = &env.assets[0];
    let trace = &env.traces[0];
    let mut cells = Vec::new();
    for kind in kinds {
        cells.push(
            env.run_session_in(&mut runtime, asset, trace, kind, &env.player)
                .unwrap(),
        );
    }
    // The two BBA sessions bracket a SENSEI session and must agree.
    assert_eq!(cells[0], cells[2]);
    assert_ne!(cells[0].policy, cells[1].policy);
}
