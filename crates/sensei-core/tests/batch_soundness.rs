//! The batch==scalar soundness contract the batch-first engine rests on.
//!
//! `Experiment::run_batch_in` runs N lanes through the structure-of-arrays
//! session batch; that is only a pure optimization if every lane's cell is
//! **byte-identical** to an independent scalar reference built directly on
//! `sensei_sim::simulate_in` with a fresh policy. This asserts exactly
//! that for every `PolicyKind` (trained RL policies and trace-bound
//! oracles included) and for every batch width in {1, 3, 8, 64} — width 1
//! being the degenerate scalar case `run_session_in` delegates to.

use sensei_core::experiment::VideoAsset;
use sensei_core::{CellResult, Experiment, ExperimentConfig, PolicyKind, SessionRuntime};
use sensei_sim::{simulate_in, PlayerConfig, SessionScratch};
use sensei_trace::ThroughputTrace;
use std::sync::Arc;

/// Quick 3-video environment with *tiny* RL training so `Pensieve` and
/// `SenseiPensieve` are constructible (the contract is determinism, not
/// policy quality).
fn env_with_rl() -> Experiment {
    let mut cfg = ExperimentConfig::quick(17);
    cfg.train_rl = true;
    cfg.rl_episodes = 12;
    Experiment::build(&cfg).unwrap()
}

/// The scalar reference: a fresh policy straight from the environment,
/// one `simulate_in` session, oracle scoring — no batch engine anywhere.
fn scalar_reference(
    env: &Experiment,
    asset: &VideoAsset,
    trace: &ThroughputTrace,
    kind: PolicyKind,
    player: &PlayerConfig,
) -> CellResult {
    let mut policy = env.policy(kind, trace).unwrap();
    let weights = kind.uses_weights().then_some(&asset.weights);
    let mut scratch = SessionScratch::new();
    let result = simulate_in(
        &mut scratch,
        &asset.source,
        &asset.encoded,
        trace,
        &mut policy,
        player,
        weights,
    )
    .unwrap();
    CellResult {
        video: Arc::clone(&asset.name),
        genre: asset.genre,
        trace: trace.name_handle(),
        trace_mean_kbps: trace.mean_kbps(),
        policy: kind.label(),
        qoe01: env.oracle.qoe01(&asset.source, &result.render).unwrap(),
        avg_bitrate_kbps: result.render.avg_bitrate_kbps(),
        rebuffer_ratio: result.render.rebuffer_ratio(),
        delivered_bits: result.render.delivered_bits(),
        intentional_stall_s: result
            .render
            .chunks()
            .iter()
            .map(|c| c.intentional_rebuffer_s)
            .sum(),
        bitrate_switches: result.levels.windows(2).filter(|w| w[0] != w[1]).count(),
    }
}

/// Byte-level comparison of the float-valued cell fields — `assert_eq!`
/// on the struct would accept `-0.0 == 0.0`; the soundness bar is bits.
fn assert_cells_identical(got: &CellResult, want: &CellResult, what: &str) {
    assert_eq!(got, want, "{what}");
    assert_eq!(got.qoe01.to_bits(), want.qoe01.to_bits(), "{what} qoe bits");
    assert_eq!(
        got.avg_bitrate_kbps.to_bits(),
        want.avg_bitrate_kbps.to_bits(),
        "{what} bitrate bits"
    );
    assert_eq!(
        got.rebuffer_ratio.to_bits(),
        want.rebuffer_ratio.to_bits(),
        "{what} rebuffer bits"
    );
    assert_eq!(
        got.intentional_stall_s.to_bits(),
        want.intentional_stall_s.to_bits(),
        "{what} stall bits"
    );
}

#[test]
fn every_kind_and_width_is_byte_identical_to_simulate_in() {
    let env = env_with_rl();
    let players: [PlayerConfig; 3] = [
        PlayerConfig::default(),
        PlayerConfig {
            max_buffer_s: 12.0,
            ..PlayerConfig::default()
        },
        PlayerConfig {
            rtt_s: 0.15,
            ..PlayerConfig::default()
        },
    ];
    // Lanes cycle kinds × players so every width exercises mixed policy
    // groups (and, at width 64, repeated lanes of the same group). Every
    // kind in `ALL` — including the batched MPC family and DAS-IP — gets
    // at least one lane per player variant.
    let n_kinds = PolicyKind::ALL.len();
    let lane_specs: Vec<(PolicyKind, PlayerConfig)> = (0..64)
        .map(|i| (PolicyKind::ALL[i % n_kinds], players[(i / n_kinds) % 3]))
        .collect();
    let asset = &env.assets[0];
    let trace = &env.traces[2];
    let references: Vec<CellResult> = lane_specs
        .iter()
        .map(|(kind, player)| scalar_reference(&env, asset, trace, *kind, player))
        .collect();
    for width in [1usize, 3, 8, 64] {
        // One runtime across all sub-batches of this width, as a fleet
        // worker would hold it.
        let mut runtime = SessionRuntime::new();
        let mut cells = Vec::new();
        for chunk in lane_specs.chunks(width) {
            env.run_batch_in(&mut runtime, asset, trace, chunk, &mut cells)
                .unwrap();
        }
        assert_eq!(cells.len(), references.len());
        for (lane, (got, want)) in cells.iter().zip(&references).enumerate() {
            assert_cells_identical(got, want, &format!("width {width}, lane {lane}"));
        }
    }
}

#[test]
fn batches_across_videos_and_traces_stay_identical() {
    // The same runtime serves batches of different (video, trace) tiles
    // back to back — trace-bound policies must rebind cleanly and the
    // stateful pause budgets must reset per batch.
    let env = Experiment::build(&ExperimentConfig::quick(17)).unwrap();
    let kinds = [
        PolicyKind::Bba,
        PolicyKind::SenseiFugu,
        PolicyKind::OracleAware,
        PolicyKind::SenseiFuguNoPause,
    ];
    let lanes: Vec<(PolicyKind, PlayerConfig)> = kinds
        .iter()
        .map(|&k| (k, PlayerConfig::default()))
        .collect();
    let mut runtime = SessionRuntime::new();
    for asset in &env.assets {
        for trace in &env.traces[..4] {
            let mut cells = Vec::new();
            env.run_batch_in(&mut runtime, asset, trace, &lanes, &mut cells)
                .unwrap();
            for (lane, (kind, player)) in lanes.iter().enumerate() {
                let want = scalar_reference(&env, asset, trace, *kind, player);
                assert_cells_identical(
                    &cells[lane],
                    &want,
                    &format!("({}, {}) lane {lane}", asset.name, trace.name()),
                );
            }
        }
    }
}

#[test]
fn warm_started_planning_is_byte_identical_to_cold_at_every_width() {
    // Two environments identical but for `mpc_warm_start`: the warm one
    // carries each lane's winning plan across chunk steps and seeds the
    // next search's incumbent; the cold one searches from scratch every
    // step. Seeding is result-invariant by construction, so every cell —
    // across the whole MPC family, every batch width, and repeated
    // lanes — must match bit for bit.
    let warm_env = Experiment::build(&ExperimentConfig::quick(17)).unwrap();
    let mut cold_cfg = ExperimentConfig::quick(17);
    cold_cfg.mpc_warm_start = false;
    let cold_env = Experiment::build(&cold_cfg).unwrap();
    let mpc_kinds = [
        PolicyKind::Fugu,
        PolicyKind::SenseiFugu,
        PolicyKind::SenseiFuguNoPause,
        PolicyKind::OracleAware,
        PolicyKind::OracleUnaware,
    ];
    let lane_specs: Vec<(PolicyKind, PlayerConfig)> = (0..64)
        .map(|i| (mpc_kinds[i % mpc_kinds.len()], PlayerConfig::default()))
        .collect();
    let asset = &warm_env.assets[0];
    let trace = &warm_env.traces[1];
    // Cold scalar references anchor both engines to fresh-per-step truth.
    let references: Vec<CellResult> = lane_specs
        .iter()
        .map(|(kind, player)| scalar_reference(&cold_env, asset, trace, *kind, player))
        .collect();
    for width in [1usize, 3, 8, 64] {
        let mut warm_runtime = SessionRuntime::new();
        let mut cold_runtime = SessionRuntime::new();
        let mut warm_cells = Vec::new();
        let mut cold_cells = Vec::new();
        for chunk in lane_specs.chunks(width) {
            warm_env
                .run_batch_in(&mut warm_runtime, asset, trace, chunk, &mut warm_cells)
                .unwrap();
            cold_env
                .run_batch_in(&mut cold_runtime, asset, trace, chunk, &mut cold_cells)
                .unwrap();
        }
        assert_eq!(warm_cells.len(), references.len());
        for (lane, (warm, (cold, want))) in warm_cells
            .iter()
            .zip(cold_cells.iter().zip(&references))
            .enumerate()
        {
            assert_cells_identical(
                warm,
                cold,
                &format!("warm vs cold, width {width}, lane {lane}"),
            );
            assert_cells_identical(
                warm,
                want,
                &format!("warm vs scalar, width {width}, lane {lane}"),
            );
        }
    }
}

#[test]
fn lane_order_is_preserved_across_policy_regrouping() {
    // Input lanes deliberately interleave kinds so the engine's
    // group-then-scatter path is exercised: cells must come back in the
    // caller's lane order, not group order.
    let env = Experiment::build(&ExperimentConfig::quick(17)).unwrap();
    let lanes = [
        (PolicyKind::SenseiFugu, PlayerConfig::default()),
        (PolicyKind::Bba, PlayerConfig::default()),
        (
            PolicyKind::Bba,
            PlayerConfig {
                max_buffer_s: 10.0,
                ..PlayerConfig::default()
            },
        ),
        (PolicyKind::Fugu, PlayerConfig::default()),
        (PolicyKind::SenseiFugu, PlayerConfig::default()),
    ];
    let mut runtime = SessionRuntime::new();
    let mut cells = Vec::new();
    env.run_batch_in(
        &mut runtime,
        &env.assets[0],
        &env.traces[0],
        &lanes,
        &mut cells,
    )
    .unwrap();
    let labels: Vec<&str> = cells.iter().map(|c| c.policy).collect();
    assert_eq!(labels, vec!["SENSEI", "BBA", "BBA", "Fugu", "SENSEI"]);
    // Identical lanes produce identical cells; different players differ.
    assert_eq!(cells[0], cells[4]);
    assert_ne!(cells[1], cells[2]);
}
