//! Per-video onboarding: the Fig. 7/8 pipeline.
//!
//! Given a source video and a crowdsourcing budget configuration, SENSEI
//! (1) encodes the video on the ladder, (2) runs the two-step crowdsourcing
//! scheduler to profile per-chunk sensitivity, (3) writes the weights into
//! the DASH manifest, and (4) derives the reweighted QoE model. The output
//! is everything a CDN + player deployment needs.

use crate::CoreError;
use sensei_crowd::{ProfilerConfig, RaterPool, WeightProfile, WeightProfiler};
use sensei_dash::{Manifest, Representation};
use sensei_qoe::{Ksqi, SenseiQoe};
use sensei_video::{BitrateLadder, EncodedVideo, SensitivityWeights, SourceVideo};

/// The SENSEI onboarding system.
#[derive(Debug, Clone)]
pub struct Sensei {
    ladder: BitrateLadder,
    profiler: WeightProfiler,
}

/// Everything produced by onboarding one video.
#[derive(Debug, Clone)]
pub struct OnboardedVideo {
    /// The encoded ladder representation.
    pub encoded: EncodedVideo,
    /// Crowdsourced per-chunk sensitivity weights.
    pub weights: SensitivityWeights,
    /// The weight-extended DASH manifest.
    pub manifest: Manifest,
    /// Profiling accounting (cost, delay, renders).
    pub profile: WeightProfile,
    /// The video's reweighted QoE model (canonical KSQI base).
    pub qoe: SenseiQoe,
}

impl Sensei {
    /// Builds the system with the paper-default ladder, scheduler, and a
    /// master-worker rater pool.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            ladder: BitrateLadder::default_paper(),
            profiler: WeightProfiler::paper_default(seed),
        }
    }

    /// Builds the system with explicit components.
    pub fn new(ladder: BitrateLadder, pool: RaterPool, config: ProfilerConfig) -> Self {
        Self {
            ladder,
            profiler: WeightProfiler::new(pool, config),
        }
    }

    /// The bitrate ladder in use.
    pub fn ladder(&self) -> &BitrateLadder {
        &self.ladder
    }

    /// Onboards one source video end to end.
    ///
    /// # Errors
    ///
    /// Returns an error when crowdsourcing or manifest construction fails.
    pub fn onboard(&self, source: &SourceVideo, seed: u64) -> Result<OnboardedVideo, CoreError> {
        let encoded = EncodedVideo::encode(source, &self.ladder, seed);
        let profile = self.profiler.profile(source, &self.ladder, seed)?;
        let manifest = build_manifest(source, &encoded, Some(&profile.weights))?;
        let qoe = SenseiQoe::new(Ksqi::canonical(), profile.weights.clone());
        Ok(OnboardedVideo {
            encoded,
            weights: profile.weights.clone(),
            manifest,
            profile,
            qoe,
        })
    }
}

/// Builds a (optionally weight-extended) manifest from an encoded video.
///
/// # Errors
///
/// Returns an error when the manifest would be structurally invalid.
// DASH `bandwidth` is an integer bps field; ladder kbps values are
// small whole numbers, so kbps*1000 is exact and far below 2^53.
#[allow(clippy::cast_possible_truncation)]
pub fn build_manifest(
    source: &SourceVideo,
    encoded: &EncodedVideo,
    weights: Option<&SensitivityWeights>,
) -> Result<Manifest, CoreError> {
    let representations = encoded
        .ladder()
        .levels()
        .iter()
        .enumerate()
        .map(|(level, &kbps)| {
            let segment_sizes_bits = (0..encoded.num_chunks())
                .map(|c| encoded.size_bits(c, level))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Representation {
                id: format!("r{level}"),
                bandwidth_bps: (kbps * 1000.0) as u64,
                segment_sizes_bits,
            })
        })
        .collect::<Result<Vec<_>, sensei_video::VideoError>>()?;
    let manifest = Manifest {
        title: source.name().to_string(),
        chunk_duration_s: source.chunk_duration_s(),
        representations,
        weights: weights.map(|w| w.as_slice().to_vec()),
    };
    manifest.validate()?;
    Ok(manifest)
}

/// Recovers the sensitivity weights a manifest carries (what a SENSEI
/// player does after parsing the MPD).
///
/// # Errors
///
/// Returns an error when the manifest has no weight extension or the
/// weights are invalid.
pub fn weights_from_manifest(manifest: &Manifest) -> Result<SensitivityWeights, CoreError> {
    let raw = manifest
        .weights
        .as_ref()
        .ok_or_else(|| CoreError::BadConfig("manifest carries no sensei:weights".to_string()))?;
    Ok(SensitivityWeights::new(raw.clone())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensei_video::corpus;

    #[test]
    fn onboarding_produces_consistent_artifacts() {
        let entry = corpus::by_name("Soccer1", 7).unwrap();
        let sensei = Sensei::paper_default(3);
        let onboarded = sensei.onboard(&entry.video, 5).unwrap();
        let n = entry.video.num_chunks();
        assert_eq!(onboarded.weights.len(), n);
        assert_eq!(onboarded.manifest.num_chunks(), n);
        assert_eq!(onboarded.encoded.num_chunks(), n);
        assert!(onboarded.profile.cost_usd > 0.0);
        // Manifest round-trips through XML with the weights intact.
        let xml = onboarded.manifest.to_xml().unwrap();
        let parsed = Manifest::parse(&xml).unwrap();
        let recovered = weights_from_manifest(&parsed).unwrap();
        for (a, b) in recovered
            .as_slice()
            .iter()
            .zip(onboarded.weights.as_slice())
        {
            assert!((a - b).abs() < 2e-3, "weight drifted: {a} vs {b}");
        }
    }

    #[test]
    fn onboarded_weights_follow_content() {
        // The Soccer1 manifest should mark the goal region as sensitive.
        let entry = corpus::by_name("Soccer1", 7).unwrap();
        let sensei = Sensei::paper_default(11);
        let onboarded = sensei.onboard(&entry.video, 13).unwrap();
        let truth = SensitivityWeights::ground_truth(&entry.video);
        let srcc =
            sensei_ml::stats::spearman(onboarded.weights.as_slice(), truth.as_slice()).unwrap();
        assert!(srcc > 0.5, "crowd weights vs truth SRCC = {srcc:.2}");
    }

    #[test]
    fn weights_from_manifest_requires_extension() {
        let entry = corpus::by_name("Mountain", 7).unwrap();
        let encoded = EncodedVideo::encode(&entry.video, &BitrateLadder::default_paper(), 1);
        let manifest = build_manifest(&entry.video, &encoded, None).unwrap();
        assert!(matches!(
            weights_from_manifest(&manifest),
            Err(CoreError::BadConfig(_))
        ));
    }
}
